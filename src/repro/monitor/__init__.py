"""The paper's X-Y zoning monitor (Figs. 2-4, Table I).

* :mod:`repro.monitor.comparator` -- analytic current-balance boundary
* :mod:`repro.monitor.configurations` -- Table I rows and the Fig. 4 bank
* :mod:`repro.monitor.transistor_level` -- Fig. 2 netlist on the MNA engine
* :mod:`repro.monitor.boundary_extract` -- locus extraction (Fig. 4)
* :mod:`repro.monitor.montecarlo` -- process/mismatch envelopes
* :mod:`repro.monitor.second_signature` -- candidate banks for the
  ambiguity-splitting second signature channel
"""

from repro.monitor.comparator import (
    Hookup,
    MonitorBoundary,
    MonitorConfig,
)
from repro.monitor.configurations import (
    TABLE1_ROWS,
    table1_bank,
    table1_config,
    table1_encoder,
    table1_monitor,
)
from repro.monitor.transistor_level import TransistorMonitor
from repro.monitor.boundary_extract import (
    BoundaryCharacterization,
    characterize,
    diagonal_deviation,
    extract_locus,
    locus_rms_difference,
)
from repro.monitor.montecarlo import (
    BoundarySpread,
    bank_samples,
    boundary_spread,
    encoder_samples,
)
from repro.monitor.placement import (
    BiasPlacementOptimizer,
    PlacementResult,
    apply_biases,
    distinct_bias_values,
)
from repro.monitor.second_signature import (
    SecondBankCandidate,
    candidate_by_name,
    default_candidates,
    level_detector,
    second_signature_bank,
)

__all__ = [
    "Hookup",
    "MonitorBoundary",
    "MonitorConfig",
    "TABLE1_ROWS",
    "table1_bank",
    "table1_config",
    "table1_encoder",
    "table1_monitor",
    "TransistorMonitor",
    "BoundaryCharacterization",
    "characterize",
    "diagonal_deviation",
    "extract_locus",
    "locus_rms_difference",
    "BoundarySpread",
    "bank_samples",
    "boundary_spread",
    "encoder_samples",
    "BiasPlacementOptimizer",
    "PlacementResult",
    "apply_biases",
    "distinct_bias_values",
    "SecondBankCandidate",
    "candidate_by_name",
    "default_candidates",
    "level_detector",
    "second_signature_bank",
]
