"""Boundary placement optimization.

"Zone boundaries can be adjusted by changing the biasing voltages
and/or the aspect ratio of the input transistors." (paper, Section V)

This module turns that observation into a design tool: given the
stimulus and the golden CUT, optimize the DC bias voltages of the
monitor bank to maximize the NDF response at a target deviation --
i.e. make the test *as sensitive as possible* where the tolerance
boundary lies, using only knobs the fabricated monitor exposes.

The search uses scipy's Nelder-Mead on the bias vector (one value per
DC-biased input, shared within a monitor where the paper shares them),
with a penalty keeping boundaries inside the signal window so the
signature does not degenerate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

import numpy as np
from scipy import optimize as _optimize

from repro.core.testflow import SignatureTester
from repro.core.zones import ZoneEncoder
from repro.monitor.comparator import MonitorBoundary, MonitorConfig


def bias_parameters(config: MonitorConfig) -> List[int]:
    """Indices of the hookups that are DC biases (tunable knobs).

    Inputs wired to x/y are not knobs; equal DC biases on one monitor
    (rows 3-5 of Table I share V3 = V4) are treated as one knob by
    :func:`apply_biases`.
    """
    return [i for i, h in enumerate(config.hookups)
            if not isinstance(h, str)]


def distinct_bias_values(config: MonitorConfig) -> List[float]:
    """The monitor's distinct DC bias values, in first-appearance order."""
    seen: List[float] = []
    for i in bias_parameters(config):
        value = float(config.hookups[i])
        if not any(abs(value - s) < 1e-12 for s in seen):
            seen.append(value)
    return seen


def apply_biases(config: MonitorConfig,
                 new_values: Sequence[float]) -> MonitorConfig:
    """Config with its distinct bias values replaced positionally.

    Inputs sharing a bias value keep sharing it (the paper's symmetric
    rows stay symmetric).
    """
    originals = distinct_bias_values(config)
    if len(new_values) != len(originals):
        raise ValueError(
            f"{config.name}: expected {len(originals)} bias values, "
            f"got {len(new_values)}")
    mapping = dict(zip(map(float, originals), map(float, new_values)))
    hookups = tuple(
        h if isinstance(h, str) else mapping[float(h)]
        for h in config.hookups)
    return MonitorConfig(config.widths_nm, hookups, config.length_nm,
                         config.name, config.reference_point)


@dataclass
class PlacementResult:
    """Outcome of a bias optimization run."""

    configs: List[MonitorConfig]
    encoder: ZoneEncoder
    initial_objective: float
    optimized_objective: float
    iterations: int

    @property
    def improvement(self) -> float:
        """Relative objective gain over the starting bank."""
        if self.initial_objective == 0.0:
            return float("inf")
        return (self.optimized_objective / self.initial_objective) - 1.0


class BiasPlacementOptimizer:
    """Optimizes monitor bias voltages for NDF sensitivity.

    Parameters
    ----------
    configs:
        The monitor bank's configurations (Table I order).
    tester_factory:
        Maps a :class:`ZoneEncoder` to a ready
        :class:`SignatureTester` (stimulus + golden CUT inside).
    target_cut_factory:
        Maps a deviation to the CUT the objective measures.
    target_deviation:
        Deviation where sensitivity is maximized (e.g. the tolerance).
    bias_bounds:
        Allowed bias range in volts (stay inside the signal window).
    """

    def __init__(self, configs: Sequence[MonitorConfig],
                 tester_factory: Callable[[ZoneEncoder], SignatureTester],
                 target_cut_factory: Callable[[float], object],
                 target_deviation: float = 0.05,
                 bias_bounds: Tuple[float, float] = (0.1, 0.9)) -> None:
        self.configs = list(configs)
        self.tester_factory = tester_factory
        self.target_cut_factory = target_cut_factory
        self.target_deviation = float(target_deviation)
        self.bias_bounds = bias_bounds
        self._layout = [len(distinct_bias_values(c)) for c in self.configs]

    # ------------------------------------------------------------------
    def _unpack(self, vector: np.ndarray) -> List[MonitorConfig]:
        configs = []
        cursor = 0
        for config, count in zip(self.configs, self._layout):
            values = vector[cursor:cursor + count]
            cursor += count
            configs.append(apply_biases(config, values))
        return configs

    def initial_vector(self) -> np.ndarray:
        """The bank's current bias values as the optimization start."""
        values: List[float] = []
        for config in self.configs:
            values.extend(distinct_bias_values(config))
        return np.asarray(values)

    def objective(self, vector: np.ndarray) -> float:
        """NDF at the target deviation for a candidate bias vector.

        Returns 0 for out-of-bounds candidates (the optimizer treats
        them as worthless rather than crashing the solve).
        """
        lo, hi = self.bias_bounds
        if np.any(vector < lo) or np.any(vector > hi):
            return 0.0
        encoder = ZoneEncoder(
            [MonitorBoundary(c) for c in self._unpack(vector)])
        tester = self.tester_factory(encoder)
        both = (tester.ndf_of(self.target_cut_factory(
                    self.target_deviation))
                + tester.ndf_of(self.target_cut_factory(
                    -self.target_deviation)))
        return both / 2.0

    def optimize(self, max_iterations: int = 40) -> PlacementResult:
        """Run Nelder-Mead from the current bank."""
        x0 = self.initial_vector()
        initial = self.objective(x0)
        result = _optimize.minimize(
            lambda v: -self.objective(v), x0, method="Nelder-Mead",
            options={"maxiter": max_iterations, "xatol": 5e-3,
                     "fatol": 1e-4})
        best = result.x if -result.fun >= initial else x0
        configs = self._unpack(np.asarray(best))
        encoder = ZoneEncoder([MonitorBoundary(c) for c in configs])
        return PlacementResult(configs, encoder, initial,
                               max(initial, -result.fun),
                               int(result.nit))
