"""Boundary locus extraction and characterization (paper Fig. 4).

The paper reports the six control curves measured on silicon; here the
equivalent artifact is the numerically extracted zero locus of each
monitor's decision function on the 0-1 V window, plus scalar shape
descriptors (slope sign, axis crossings, curvature) used by the Table I
and Fig. 4 benchmarks to assert the qualitative claims:

* curves 1 and 2: "segments of positive slope";
* curves 3-5: "segments of negative slope" ordered by DC bias;
* curve 6: "a straight line cutting the plane at 45 degrees" with
  subthreshold distortion at small inputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.core.boundaries import Boundary


@dataclass
class BoundaryCharacterization:
    """Scalar descriptors of one extracted boundary locus.

    Attributes
    ----------
    xs, ys:
        The extracted locus (y as a function of the swept x where the
        curve crosses the window; NaN elsewhere).
    coverage:
        Fraction of the sweep where the boundary lies inside the window.
    mean_slope:
        Mean dy/dx along the locus.
    slope_sign:
        +1 / -1 when the slope keeps one sign over the locus, 0 mixed.
    curvature_rms:
        RMS of the second difference -- 0 for straight lines.
    """

    xs: np.ndarray
    ys: np.ndarray
    coverage: float
    mean_slope: float
    slope_sign: int
    curvature_rms: float

    def crossing_at(self, x: float) -> float:
        """Interpolated boundary height at a given x."""
        valid = ~np.isnan(self.ys)
        if not np.any(valid):
            return float("nan")
        return float(np.interp(x, self.xs[valid], self.ys[valid],
                               left=np.nan, right=np.nan))


def extract_locus(boundary: Boundary,
                  window: Tuple[float, float] = (0.0, 1.0),
                  points: int = 201) -> Tuple[np.ndarray, np.ndarray]:
    """Trace y(x) of the zero locus across the window by bisection."""
    lo, hi = window
    xs = np.linspace(lo, hi, points)
    ys = boundary.locus_points(xs, sweep="x", window=window)
    return xs, ys


def characterize(boundary: Boundary,
                 window: Tuple[float, float] = (0.0, 1.0),
                 points: int = 201) -> BoundaryCharacterization:
    """Extract the locus and compute its shape descriptors."""
    xs, ys = extract_locus(boundary, window, points)
    valid = ~np.isnan(ys)
    coverage = float(np.mean(valid))
    if np.count_nonzero(valid) < 3:
        return BoundaryCharacterization(xs, ys, coverage, float("nan"),
                                        0, float("nan"))
    xv = xs[valid]
    yv = ys[valid]
    slopes = np.diff(yv) / np.diff(xv)
    mean_slope = float(np.mean(slopes))
    # Ignore near-zero slopes when judging the sign (flat tails of the
    # subthreshold-limited arcs).
    significant = slopes[np.abs(slopes) > 1e-3]
    if significant.size and np.all(significant > 0):
        slope_sign = 1
    elif significant.size and np.all(significant < 0):
        slope_sign = -1
    else:
        slope_sign = 0
    dx = float(np.mean(np.diff(xv)))
    curvature = np.diff(yv, 2) / (dx * dx)
    curvature_rms = float(np.sqrt(np.mean(curvature ** 2)))
    return BoundaryCharacterization(xs, ys, coverage, mean_slope,
                                    slope_sign, curvature_rms)


def diagonal_deviation(boundary: Boundary,
                       window: Tuple[float, float] = (0.0, 1.0),
                       points: int = 201) -> float:
    """Max |y - x| along the locus (curve 6 should be small above VT)."""
    xs, ys = extract_locus(boundary, window, points)
    valid = ~np.isnan(ys)
    if not np.any(valid):
        return float("nan")
    return float(np.nanmax(np.abs(ys[valid] - xs[valid])))


def locus_rms_difference(a: Boundary, b: Boundary,
                         window: Tuple[float, float] = (0.0, 1.0),
                         points: int = 101) -> float:
    """RMS vertical gap between two boundaries' loci (where both exist).

    Used by the transistor-level agreement benchmark: the analytic
    current-balance locus vs. the simulated Fig. 2 stage.
    """
    xs = np.linspace(window[0], window[1], points)
    ya = a.locus_points(xs, sweep="x", window=window)
    yb = b.locus_points(xs, sweep="x", window=window)
    both = ~np.isnan(ya) & ~np.isnan(yb)
    if not np.any(both):
        return float("nan")
    return float(np.sqrt(np.mean((ya[both] - yb[both]) ** 2)))
