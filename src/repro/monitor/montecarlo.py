"""Monte Carlo spread of monitor boundaries (paper Fig. 4 validation).

"Experimental measurements of the monitor zone boundaries were
performed, yielding results in the range of the predicted Monte Carlo
simulations values (process and mismatch) for STMicroelectronics 65 nm
technology variability."

Without silicon, the reproduction inverts the roles: the Monte Carlo
envelope *is* the artifact.  :func:`boundary_spread` samples dies from
:class:`repro.devices.process.MonteCarloSampler`, re-extracts each
monitor's locus, and reports mean and +-3 sigma envelopes;
:func:`bank_samples` produces whole varied monitor banks for
signature-level variability studies (how much NDF a fault-free but
process-shifted die exhibits).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.core.zones import ZoneEncoder
from repro.devices.process import MonteCarloSampler
from repro.monitor.comparator import MonitorBoundary


@dataclass
class BoundarySpread:
    """Envelope statistics of one monitor's locus under variation.

    All arrays are aligned with ``xs``; entries are NaN where fewer
    than half the sampled dies produce a locus inside the window.
    """

    xs: np.ndarray
    nominal: np.ndarray
    mean: np.ndarray
    sigma: np.ndarray
    lo3: np.ndarray
    hi3: np.ndarray
    num_dies: int

    def max_spread(self) -> float:
        """Largest +-3 sigma band width along the locus (volts)."""
        width = self.hi3 - self.lo3
        if np.all(np.isnan(width)):
            return float("nan")
        return float(np.nanmax(width))

    def contains(self, ys: np.ndarray, fraction: float = 0.95) -> bool:
        """True if a measured locus lies inside the envelope.

        This is the paper's silicon-vs-Monte-Carlo acceptance check,
        applied in the tests to nominal loci and to freshly sampled
        dies.
        """
        valid = (~np.isnan(ys)) & (~np.isnan(self.lo3)) & (~np.isnan(self.hi3))
        if not np.any(valid):
            return False
        inside = ((ys[valid] >= self.lo3[valid] - 1e-12)
                  & (ys[valid] <= self.hi3[valid] + 1e-12))
        return bool(np.mean(inside) >= fraction)


def boundary_spread(monitor: MonitorBoundary,
                    sampler: MonteCarloSampler,
                    num_dies: int = 50,
                    window: Tuple[float, float] = (0.0, 1.0),
                    points: int = 81) -> BoundarySpread:
    """Sample dies and build the +-3 sigma locus envelope of a monitor."""
    xs = np.linspace(window[0], window[1], points)
    nominal = monitor.locus_points(xs, sweep="x", window=window)
    samples = np.full((num_dies, points), np.nan)
    for i, die in enumerate(sampler.dies(num_dies)):
        varied = monitor.with_die(die)
        samples[i] = varied.locus_points(xs, sweep="x", window=window)
    counts = np.sum(~np.isnan(samples), axis=0)
    enough = counts >= max(2, num_dies // 2)
    mean = np.full(points, np.nan)
    sigma = np.full(points, np.nan)
    mean[enough] = np.nanmean(samples[:, enough], axis=0)
    sigma[enough] = np.nanstd(samples[:, enough], axis=0)
    lo3 = mean - 3.0 * sigma
    hi3 = mean + 3.0 * sigma
    return BoundarySpread(xs, nominal, mean, sigma, lo3, hi3, num_dies)


def bank_samples(bank: Sequence[MonitorBoundary],
                 sampler: MonteCarloSampler,
                 num_dies: int) -> List[List[MonitorBoundary]]:
    """Varied copies of a whole monitor bank, one list per die.

    All monitors of one die share the same global process shift (they
    sit on the same chip) but draw independent mismatch.
    """
    varied_banks = []
    for die in sampler.dies(num_dies):
        varied_banks.append([m.with_die(die) for m in bank])
    return varied_banks


def encoder_samples(bank: Sequence[MonitorBoundary],
                    sampler: MonteCarloSampler,
                    num_dies: int) -> List[ZoneEncoder]:
    """Zone encoders built from Monte Carlo samples of the bank."""
    return [ZoneEncoder(b) for b in bank_samples(bank, sampler, num_dies)]
