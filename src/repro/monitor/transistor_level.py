"""Transistor-level netlist of the Fig. 2 monitor on the MNA engine.

Topology (paper Fig. 2):

* M1..M4 -- nMOS inputs, sources grounded; M1, M2 drive the left output
  node ``out1``, M3, M4 the right node ``out2``; gates at V1..V4.
* M5, M8 -- equal pMOS active loads (diode-connected on their own side).
* M6, M7 -- equal pMOS cross-coupled pair "performing the required
  feedback to improve the gain of the stage" (gates on the opposite
  output).

The digital decision is the sign of the differential output
``v(out2) - v(out1)`` after the high-gain stage; the comparator trips
where the branch currents balance, so its zero locus should match the
analytic :class:`repro.monitor.comparator.MonitorBoundary` -- the
agreement benchmark (bench_monitor_transistor.py) quantifies the residual
difference caused by channel-length modulation and load asymmetry.

Solving a DC point per plane pixel is much slower than the analytic
balance, so this model is used on coarse grids and in spot checks, not
in the signature flow.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.circuits import Circuit, Mosfet, VoltageSource
from repro.circuits.dc import dc_operating_point
from repro.core.boundaries import Boundary
from repro.devices.mos_model import MosModel
from repro.devices.process import TECH_65NM, TechnologyParams
from repro.monitor.comparator import MonitorConfig, _resolve


class TransistorMonitor(Boundary):
    """Fig. 2 monitor simulated at transistor level.

    Parameters
    ----------
    config:
        Same wiring/sizing description as the analytic monitor.
    tech:
        Technology supplying nMOS/pMOS model cards and VDD.
    load_width_nm / feedback_width_nm:
        pMOS sizing of the diode loads (M5, M8) and the cross-coupled
        pair (M6, M7).  The feedback pair must stay weaker than the
        loads to keep the stage free of hysteresis.
    """

    def __init__(self, config: MonitorConfig,
                 tech: TechnologyParams = TECH_65NM,
                 load_width_nm: float = 2000.0,
                 feedback_width_nm: float = 1000.0) -> None:
        super().__init__(config.name + "-xtor",
                         reference_point=config.reference_point)
        if feedback_width_nm >= load_width_nm:
            raise ValueError(
                "cross-coupled pair must be weaker than the diode loads "
                "(hysteresis otherwise)")
        self.config = config
        self.tech = tech
        self.vdd = tech.vdd
        self._build(load_width_nm, feedback_width_nm)
        self._last_solution: Optional[np.ndarray] = None

    def _build(self, load_w_nm: float, fb_w_nm: float) -> None:
        cfg = self.config
        nmos = [MosModel(self.tech.nmos, w * 1e-9, cfg.length_nm * 1e-9)
                for w in cfg.widths_nm]
        length = cfg.length_nm * 1e-9
        pload = MosModel(self.tech.pmos, load_w_nm * 1e-9, length)
        pfb = MosModel(self.tech.pmos, fb_w_nm * 1e-9, length)

        ckt = Circuit(f"monitor {cfg.name}")
        ckt.add(VoltageSource("VDD", "vdd", "0", dc=self.vdd))
        self._gate_sources = []
        for i in range(4):
            src = ckt.add(VoltageSource(f"Vg{i + 1}", f"g{i + 1}", "0",
                                        dc=0.0))
            self._gate_sources.append(src)
        # Input devices: left branch (M1, M2) on out1, right on out2.
        ckt.add(Mosfet("M1", "out1", "g1", "0", nmos[0]))
        ckt.add(Mosfet("M2", "out1", "g2", "0", nmos[1]))
        ckt.add(Mosfet("M3", "out2", "g3", "0", nmos[2]))
        ckt.add(Mosfet("M4", "out2", "g4", "0", nmos[3]))
        # pMOS loads: diode-connected M5/M8, cross-coupled M6/M7.
        ckt.add(Mosfet("M5", "out1", "out1", "vdd", pload))
        ckt.add(Mosfet("M8", "out2", "out2", "vdd", pload))
        ckt.add(Mosfet("M6", "out1", "out2", "vdd", pfb))
        ckt.add(Mosfet("M7", "out2", "out1", "vdd", pfb))
        self.circuit = ckt
        self.system = ckt.assemble()

    # ------------------------------------------------------------------
    def solve_outputs(self, x: float, y: float) -> Tuple[float, float]:
        """DC-solve the stage for one plane point; returns (v1, v2)."""
        gates = [_resolve(h, x, y) for h in self.config.hookups]
        for src, v in zip(self._gate_sources, gates):
            src.dc = float(v)
        solution = dc_operating_point(self.system, x0=self._last_solution)
        self._last_solution = solution.x
        return (solution.voltage(self.system, "out1"),
                solution.voltage(self.system, "out2"))

    def decision(self, x, y):
        """Differential output v(out1) - v(out2).

        More left-branch (M1+M2) current pulls ``out1`` low, so the
        sign convention matches the analytic monitor's
        ``I_left - I_right`` through the inversion of the load stage:
        the decision here is ``v(out2) - v(out1)`` negated twice --
        i.e. we return ``v(out1) - v(out2)`` sign-flipped to align with
        the current-balance convention.
        """
        x_arr = np.asarray(x, dtype=float)
        y_arr = np.asarray(y, dtype=float)
        out = np.empty(np.broadcast(x_arr, y_arr).shape)
        flat_iter = np.nditer([np.broadcast_to(x_arr, out.shape),
                               np.broadcast_to(y_arr, out.shape)],
                              flags=["multi_index"])
        for xv, yv in flat_iter:
            v1, v2 = self.solve_outputs(float(xv), float(yv))
            out[flat_iter.multi_index] = v2 - v1
        if out.ndim == 0:
            return float(out)
        return out

    def digital_output(self, x: float, y: float) -> int:
        """The monitor's bit after the high-gain digitizing stage."""
        return self.bit(x, y)
