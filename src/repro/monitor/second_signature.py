"""Candidate monitor banks for the adaptive second signature.

"Zone boundaries can be adjusted by changing the biasing voltages
and/or the aspect ratio of the input transistors" (paper, Section V) --
and Table I itself wires each comparator input either to an axis signal
or to a DC level.  This module turns those two knobs into a *candidate
family* of second monitor banks for the ambiguity-splitting search of
:mod:`repro.diagnosis.second_signature`:

* **bias shifts** -- the Table I bank with every monitor's distinct DC
  biases moved by a common delta (through
  :func:`repro.monitor.placement.apply_biases`, so inputs sharing a
  bias keep sharing it).  Shifting the arcs re-partitions the mid-
  window region where parametric and moderate catastrophic faults
  live;
* **level detectors** -- a comparator wired as a pure Y-threshold:
  ``V1 = y`` against ``V3 = level`` with the *same-width* pair
  ``V2 = V4 = x`` on both branches, so the x contribution cancels in
  the balance ``[I(y) + I(x)] - [I(level) + I(x)]`` and the boundary
  is the horizontal line ``y = level``.  With a near-zero level this
  resolves dead-output faults (e.g. ``r1-open`` vs ``r5-short``, whose
  responses differ by well under a millivolt around 0 V) that every
  mid-window arc sees identically.

Candidates are named (``"bias-0.10"``, ``"level1e-05"``,
``"bias-0.10_level1e-05"``) and reconstructible from the name
(:func:`candidate_by_name`), so a chosen configuration can be pinned in
scripts and on the CLI (``--second-signature``).

See ``docs/ambiguity.md`` for the geometry this family does and does
not resolve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.zones import ZoneEncoder
from repro.devices.mos_model import NMOS_65NM, MosParams
from repro.monitor.comparator import MonitorBoundary, MonitorConfig
from repro.monitor.configurations import table1_config
from repro.monitor.placement import apply_biases, distinct_bias_values

#: Bias window the shifted Table I curves are clipped to (staying
#: inside the 0-1 V signal window so boundaries do not degenerate).
BIAS_WINDOW: Tuple[float, float] = (0.02, 0.95)

#: Default whole-bank bias shifts tried by the search (0.0 = Table I
#: biases unchanged; the identity candidate -- no shift, no level
#: detector -- is excluded, it is channel 0 again).
DEFAULT_BIAS_DELTAS: Tuple[float, ...] = (0.0, -0.10, -0.05, 0.05, 0.10)

#: Default Y-level-detector thresholds (volts); None keeps curve 6.
DEFAULT_LEVELS: Tuple[Optional[float], ...] = (None, 1e-5, 1e-4, 1e-3)


@dataclass(frozen=True)
class SecondBankCandidate:
    """One named candidate bank for the second signature channel."""

    name: str
    encoder: ZoneEncoder


def level_detector_config(level: float,
                          name: Optional[str] = None) -> MonitorConfig:
    """A comparator wired as the horizontal boundary ``y = level``.

    ``V2`` and ``V4`` both observe x through equal-width devices, so
    the balance reduces to ``I(y) - I(level)`` exactly (the shared
    term cancels); the monitor still observes both axes, as the
    comparator topology requires.  The reference point below the
    level fixes bit 0 for the under-threshold side.
    """
    if level <= 0.0:
        raise ValueError("level must be positive (a boundary at 0 V "
                         "would pass through the origin)")
    return MonitorConfig((1800.0, 600.0, 1800.0, 600.0),
                         ("y", "x", float(level), "x"),
                         length_nm=180.0,
                         name=name or f"ylevel{level:g}",
                         reference_point=(0.5, 0.0))


def level_detector(level: float,
                   params: MosParams = NMOS_65NM) -> MonitorBoundary:
    """Sized, wired Y-level detector monitor."""
    return MonitorBoundary(level_detector_config(level), params)


def shifted_table1_config(row: int, delta: float) -> MonitorConfig:
    """A Table I row with its distinct biases shifted by ``delta``.

    Biases clip to :data:`BIAS_WINDOW`; inputs sharing a bias value
    keep sharing it (see
    :func:`repro.monitor.placement.apply_biases`).
    """
    config = table1_config(row)
    biases = distinct_bias_values(config)
    if not biases or delta == 0.0:
        return config
    lo, hi = BIAS_WINDOW
    return apply_biases(config,
                        [min(hi, max(lo, value + delta))
                         for value in biases])


def second_signature_bank(delta: float = 0.0,
                          level: Optional[float] = None,
                          params: MosParams = NMOS_65NM) -> ZoneEncoder:
    """A full six-monitor second bank: shifted curves, optional level.

    Curves 1-5 carry the bias shift; the sixth slot is either the
    (shifted) 45-degree curve 6 or, when ``level`` is given, the
    Y-level detector that resolves dead-output faults.
    """
    boundaries: List[MonitorBoundary] = [
        MonitorBoundary(shifted_table1_config(row, delta), params)
        for row in (1, 2, 3, 4, 5)]
    if level is None:
        boundaries.append(
            MonitorBoundary(shifted_table1_config(6, delta), params))
    else:
        boundaries.append(level_detector(level, params))
    return ZoneEncoder(boundaries)


def _canonical_parameters(delta: float, level: Optional[float]
                          ) -> "Tuple[float, Optional[float]]":
    """Round (delta, level) to the name grid they are printed at.

    Names carry deltas at two decimals and levels at ``%g``
    precision; building banks from the *canonical* values guarantees
    a printed name always reconstructs the exact same encoder
    (pinning contract), at the cost of quantizing off-grid inputs.
    """
    delta = float(f"{delta:+.2f}")
    if level is not None:
        level = float(f"{level:g}")
    return delta, level


def candidate_name(delta: float, level: Optional[float]) -> str:
    """Canonical candidate name, parseable by :func:`candidate_by_name`."""
    delta, level = _canonical_parameters(delta, level)
    parts = []
    if delta != 0.0:
        parts.append(f"bias{delta:+.2f}")
    if level is not None:
        parts.append(f"level{level:g}")
    if not parts:
        raise ValueError("the identity candidate (no shift, no level) "
                         "is channel 0 itself")
    return "_".join(parts)


def candidate_by_name(name: str,
                      params: MosParams = NMOS_65NM
                      ) -> SecondBankCandidate:
    """Rebuild a candidate from its canonical name.

    Accepts ``"bias<delta>"``, ``"level<volts>"`` or the combined
    ``"bias<delta>_level<volts>"`` form, e.g. ``"bias-0.10"`` or
    ``"bias-0.10_level1e-05"``.  Parameters quantize to the name's
    own precision (deltas at two decimals), so the returned
    candidate's encoder is exactly what its canonical name will
    rebuild.
    """
    delta = 0.0
    level: Optional[float] = None
    for token in name.split("_"):
        if token.startswith("bias"):
            delta = float(token[len("bias"):])
        elif token.startswith("level"):
            level = float(token[len("level"):])
        else:
            raise ValueError(
                f"unknown candidate token {token!r} in {name!r}; "
                f"expected bias<delta> and/or level<volts> joined "
                f"with '_'")
    delta, level = _canonical_parameters(delta, level)
    return SecondBankCandidate(
        candidate_name(delta, level),
        second_signature_bank(delta, level, params))


def default_candidates(
        deltas: Sequence[float] = DEFAULT_BIAS_DELTAS,
        levels: Sequence[Optional[float]] = DEFAULT_LEVELS,
        params: MosParams = NMOS_65NM) -> List[SecondBankCandidate]:
    """The default search family: the (delta, level) product grid.

    The identity combination (zero shift, no level detector) is
    skipped -- it is the paper's own bank, i.e. channel 0.
    """
    candidates = []
    for level in levels:
        for delta in deltas:
            if delta == 0.0 and level is None:
                continue
            candidates.append(SecondBankCandidate(
                candidate_name(delta, level),
                second_signature_bank(delta, level, params)))
    return candidates


__all__ = [
    "BIAS_WINDOW",
    "DEFAULT_BIAS_DELTAS",
    "DEFAULT_LEVELS",
    "SecondBankCandidate",
    "candidate_by_name",
    "candidate_name",
    "default_candidates",
    "level_detector",
    "level_detector_config",
    "second_signature_bank",
    "shifted_table1_config",
]
