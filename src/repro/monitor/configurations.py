"""Table I of the paper: the six monitor configurations of Fig. 4.

::

    Transistor widths (nm, L = 180 nm)     Applied input voltages (V)
        M1     M2     M3     M4            V1      V2      V3      V4
    1   3000   600    600    3000          Y axis  0.2     X axis  0.6
    2   3000   600    600    3000          0.6     Y axis  0.2     X axis
    3   1800   1800   1800   1800          Y axis  X axis  0.55    0.55
    4   1800   1800   1800   1800          Y axis  X axis  0.3     0.3
    5   1800   1800   1800   1800          Y axis  X axis  0.75    0.75
    6   1800   1800   1800   1800          Y axis  0       X axis  0

Curves 1-2 are positive-slope segments (one signal on each side of the
differential pair), curves 3-5 negative-slope arcs ordered by their DC
bias, and curve 6 the 45-degree line with subthreshold distortion near
the origin.  The bank in this order (curve 1 = MSB) generates the
six-bit zone codes of Fig. 6.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.zones import ZoneEncoder
from repro.devices.mos_model import MosParams, NMOS_65NM
from repro.monitor.comparator import Hookup, MonitorBoundary, MonitorConfig

#: Table I rows: (widths of M1..M4 in nm, hookups of V1..V4).
TABLE1_ROWS: Dict[int, Tuple[Tuple[float, float, float, float],
                             Tuple[Hookup, Hookup, Hookup, Hookup]]] = {
    1: ((3000.0, 600.0, 600.0, 3000.0), ("y", 0.2, "x", 0.6)),
    2: ((3000.0, 600.0, 600.0, 3000.0), (0.6, "y", 0.2, "x")),
    3: ((1800.0, 1800.0, 1800.0, 1800.0), ("y", "x", 0.55, 0.55)),
    4: ((1800.0, 1800.0, 1800.0, 1800.0), ("y", "x", 0.3, 0.3)),
    5: ((1800.0, 1800.0, 1800.0, 1800.0), ("y", "x", 0.75, 0.75)),
    6: ((1800.0, 1800.0, 1800.0, 1800.0), ("y", 0.0, "x", 0.0)),
}

#: Reference points fixing the "origin side" for boundaries through the
#: origin.  Only curve 6 (y = x) needs one: the all-zeros zone of
#: Fig. 6 lies *below* the diagonal.
_REFERENCE_POINTS: Dict[int, Tuple[float, float]] = {
    6: (0.5, 0.0),
}


def table1_config(row: int) -> MonitorConfig:
    """The :class:`MonitorConfig` for a Table I row (1-6)."""
    if row not in TABLE1_ROWS:
        raise ValueError(f"Table I has rows 1..6, got {row}")
    widths, hookups = TABLE1_ROWS[row]
    return MonitorConfig(widths, hookups, length_nm=180.0,
                         name=f"curve{row}",
                         reference_point=_REFERENCE_POINTS.get(row))


def table1_monitor(row: int,
                   params: MosParams = NMOS_65NM) -> MonitorBoundary:
    """One sized, wired monitor for a Table I row."""
    return MonitorBoundary(table1_config(row), params)


def table1_bank(params: MosParams = NMOS_65NM,
                rows: Optional[List[int]] = None) -> List[MonitorBoundary]:
    """The full Fig. 4 bank, MSB-first (curve 1 ... curve 6)."""
    rows = rows if rows is not None else [1, 2, 3, 4, 5, 6]
    return [table1_monitor(row, params) for row in rows]


def table1_encoder(params: MosParams = NMOS_65NM) -> ZoneEncoder:
    """Zone encoder generating the paper's six-bit codes (Fig. 6)."""
    return ZoneEncoder(table1_bank(params))
