"""Analytic model of the current-comparator monitor (paper Fig. 2).

The monitor is a source-grounded (pseudo) differential pair with four
nMOS inputs: M1, M2 sum their drain currents on the left branch, M3, M4
on the right.  The output flips where the branch currents balance::

    I(M1; V1) + I(M2; V2)  =  I(M3; V3) + I(M4; V4)

Each input is wired either to the composed signal x(t), to y(t), or to
a DC bias (Table I).  With the quasi-quadratic MOS law the zero set of
the balance equation draws *nonlinear* boundaries in the X-Y plane --
circular/hyperbolic arcs in strong inversion, straightening below
threshold exactly as the paper describes.

:class:`MonitorBoundary` exposes the balance as a
:class:`repro.core.boundaries.Boundary` decision function, so a bank of
monitors is directly a :class:`repro.core.zones.ZoneEncoder`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.boundaries import Boundary
from repro.devices.mos_model import MosModel, MosParams, NMOS_65NM
from repro.devices.process import DeviceVariation, DieSample

#: An input hookup: the literal strings "x"/"y" or a DC level in volts.
Hookup = Union[str, float]

#: Default channel length of the Table I devices (180 nm).
TABLE1_LENGTH = 180e-9


def _resolve(hookup: Hookup, x, y):
    """Voltage seen by one gate for hookup and plane coordinates."""
    if isinstance(hookup, str):
        if hookup == "x":
            return x
        if hookup == "y":
            return y
        raise ValueError(f"hookup must be 'x', 'y' or a float, got {hookup!r}")
    return hookup


@dataclass(frozen=True)
class MonitorConfig:
    """Sizing and wiring of one monitor (a Table I row).

    Attributes
    ----------
    widths_nm:
        Channel widths of M1..M4 in nanometres.
    hookups:
        What each of V1..V4 is tied to: "x", "y" or a DC volt value.
    length_nm:
        Common channel length in nanometres (Table I: L = 180 nm).
    name:
        Identifier used in reports (e.g. "curve3").
    reference_point:
        Optional off-boundary point defining the zero side when the
        boundary passes through the origin (the 45-degree curve 6).
    """

    widths_nm: Tuple[float, float, float, float]
    hookups: Tuple[Hookup, Hookup, Hookup, Hookup]
    length_nm: float = 180.0
    name: str = "monitor"
    reference_point: Optional[Tuple[float, float]] = None

    def __post_init__(self) -> None:
        if len(self.widths_nm) != 4 or len(self.hookups) != 4:
            raise ValueError("monitor needs exactly four inputs")
        signals = [h for h in self.hookups if isinstance(h, str)]
        for h in signals:
            if h not in ("x", "y"):
                raise ValueError(f"bad hookup {h!r}")
        if "x" not in signals or "y" not in signals:
            raise ValueError("monitor must observe both x and y")

    def devices(self, params: MosParams = NMOS_65NM) -> Tuple[MosModel, ...]:
        """Sized nominal input devices M1..M4."""
        return tuple(MosModel(params, w * 1e-9, self.length_nm * 1e-9)
                     for w in self.widths_nm)


class MonitorBoundary(Boundary):
    """Zone boundary realized by one current-comparator monitor.

    The decision function is the branch-current imbalance
    ``g(x, y) = [I1 + I2] - [I3 + I4]`` evaluated with the smooth device
    model; its sign is the comparator's digital output (after the
    origin-side normalization of :class:`Boundary`).

    Channel-length modulation is left out of the balance: at the trip
    point the high-gain load forces the two output nodes through the
    same voltage, so the CLM factors of the two branches cancel to
    first order (the transistor-level benchmark quantifies the residual
    difference).

    Parameters
    ----------
    config:
        Wiring and sizing.
    params:
        nMOS model card (typical by default).
    variations:
        Optional per-device variation list (M1..M4) for Monte Carlo.
    """

    def __init__(self, config: MonitorConfig,
                 params: MosParams = NMOS_65NM,
                 variations: Optional[Sequence[DeviceVariation]] = None) -> None:
        super().__init__(config.name,
                         reference_point=config.reference_point)
        self.config = config
        devices = list(config.devices(params))
        if variations is not None:
            if len(variations) != 4:
                raise ValueError("need one variation per device")
            devices = [var.apply(dev)
                       for dev, var in zip(devices, variations)]
        self.devices: Tuple[MosModel, ...] = tuple(devices)

    # ------------------------------------------------------------------
    def branch_currents(self, x, y) -> Tuple[np.ndarray, np.ndarray]:
        """(left, right) branch currents at plane point(s)."""
        gates = [_resolve(h, x, y) for h in self.config.hookups]
        currents = [dev.saturation_current(v)
                    for dev, v in zip(self.devices, gates)]
        return currents[0] + currents[1], currents[2] + currents[3]

    def decision(self, x, y):
        left, right = self.branch_currents(x, y)
        out = left - right
        if np.ndim(out) == 0:
            return float(out)
        return out

    # ------------------------------------------------------------------
    def with_die(self, die: DieSample) -> "MonitorBoundary":
        """Monte Carlo copy: apply a die's process+mismatch variation."""
        variations = [die.device_variation(dev.w, dev.l,
                                           dev.params.polarity)
                      for dev in self.devices]
        # Re-derive the per-device parameter sets from the *nominal*
        # config so repeated sampling does not compound.
        params = self.devices[0].params  # same card for all four
        return MonitorBoundary(self.config, params, variations)

    def with_variations(self, variations: Sequence[DeviceVariation]
                        ) -> "MonitorBoundary":
        """Copy with explicit per-device variations (tests/ablations)."""
        return MonitorBoundary(self.config, self.devices[0].params,
                               variations)
