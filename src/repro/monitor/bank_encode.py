"""Shared-branch zone encoding for monitor banks.

Encoding a ``(N, samples)`` trace stack through a
:class:`~repro.core.zones.ZoneEncoder` made of
:class:`~repro.monitor.comparator.MonitorBoundary` objects evaluates
each boundary's branch-current balance independently -- yet every
device of a Table I bank shares one MOS model card, so the expensive
EKV term

    B(v) = softplus((v - VT) / (2 n UT))^2

is *the same function* for every device: per-device currents differ
only by the ``unit_current`` prefactor.  :func:`monitor_bank_codes`
exploits this by memoizing ``B`` per (model card, gate signal) within
one call: for the paper bank the six y-hooked devices collapse onto a
single ``(N, T)`` transcendental evaluation, the x-hooked ones onto a
single ``(T,)`` one (the stimulus is shared across the population and
is deliberately *not* broadcast), and DC-biased gates onto cached
scalars.

Bit-compatibility: the per-device current is still computed as
``unit_current * B(gate)`` with the exact argument expression of
:meth:`MosModel.saturation_current`, branch currents still combine as
``(I1 + I2) - (I3 + I4)``, and the bit is still the sign test of
:meth:`Boundary.bit` -- so the returned codes are bit-identical to
``encoder.code(x, y)`` (asserted by the campaign equivalence tests).
Monte Carlo-varied banks simply get less sharing: each shifted model
card owns its own cache slot, never a wrong one.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple, Union

import numpy as np

from repro.core.zones import ZoneEncoder
from repro.devices.mos_model import MosModel, softplus
from repro.monitor.comparator import MonitorBoundary


def _branch_table(cache: Dict[Tuple, Union[float, np.ndarray]],
                  device: MosModel, gate, gate_key):
    """Memoized EKV branch ``B(gate)`` for one device's model card."""
    params = device.params
    key = (params.polarity, params.vt0, params.n,
           params.thermal_voltage, gate_key)
    table = cache.get(key)
    if table is None:
        vgs_d = params.polarity * np.asarray(gate, dtype=float)
        table = softplus((vgs_d - params.vt0)
                         / (2.0 * params.n * params.thermal_voltage)) ** 2
        cache[key] = table
    return table


def monitor_bank_codes(encoder: ZoneEncoder, x: np.ndarray,
                       y: np.ndarray) -> Optional[np.ndarray]:
    """Zone codes of a trace stack through a monitor-boundary bank.

    ``x`` is the shared stimulus samples ``(T,)`` (broadcast over
    rows), ``y`` the response stack ``(N, T)``.  Returns ``None`` when
    the encoder contains non-monitor boundaries (callers fall back to
    the generic per-boundary path).
    """
    if not all(isinstance(b, MonitorBoundary) for b in encoder.boundaries):
        return None
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    cache: Dict[Tuple, Union[float, np.ndarray]] = {}
    codes: Optional[np.ndarray] = None
    for boundary in encoder.boundaries:
        currents = []
        for device, hookup in zip(boundary.devices,
                                  boundary.config.hookups):
            if hookup == "x":
                gate, gate_key = x, "x"
            elif hookup == "y":
                gate, gate_key = y, "y"
            else:
                gate, gate_key = float(hookup), float(hookup)
            branch = _branch_table(cache, device, gate, gate_key)
            current = device.unit_current * branch
            if np.ndim(current) == 0:
                current = float(current)
            currents.append(current)
        balance = (currents[0] + currents[1]) - (currents[2] + currents[3])
        bit = (balance * boundary.origin_sign < 0).astype(np.int64)
        codes = bit if codes is None else (codes << 1) | bit
    return codes
