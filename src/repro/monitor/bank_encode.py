"""Fused shared-branch zone encoding for monitor banks.

(Stage 2 of the pipeline -- the paper's Table I curves drive this
encoder; see ``docs/paper_map.md`` for the artifact <-> module map
and the bit-compatibility contract this kernel honours.)

Encoding a ``(N, samples)`` trace stack through a
:class:`~repro.core.zones.ZoneEncoder` made of
:class:`~repro.monitor.comparator.MonitorBoundary` objects evaluates
each boundary's branch-current balance independently -- yet every
device of a Table I bank shares one MOS model card, so the expensive
EKV term

    B(v) = softplus((v - VT) / (2 n UT))^2

is *the same function* for every device: per-device currents differ
only by the ``unit_current`` prefactor.  :func:`monitor_bank_codes`
fuses the whole bank around that observation:

* **shared softplus tables** -- one per (model card, gate signal):
  for the paper bank the six y-hooked devices collapse onto a single
  ``(N, T)`` transcendental evaluation, computed fully in place, the
  x-hooked ones onto a single ``(T,)`` one (the shared stimulus is
  deliberately *not* broadcast), DC gates onto cached scalars;
* **shared branch sides** -- each boundary's left/right sum
  ``I_a + I_b`` (a per-boundary unit-current weighting of the tables)
  is content-memoized, so Table I's curves 3-5, which wire identical
  devices to ``(y, x)``, evaluate their common side once;
* **subtraction-free sign test** -- IEEE rounding preserves the sign
  of a difference exactly (``fl(l - r) < 0`` iff ``l < r``, and
  ``origin_sign`` in ``{-1, +1}`` only flips the direction), so the
  comparator bit is a single direct comparison per boundary, no
  balance array ever materializes;
* **packed code assembly** -- per-boundary bits accumulate straight
  into a narrow ``uint8`` code plane (banks up to eight boundaries)
  that widens to ``int64`` once at the end, instead of an ``int64``
  shift/or chain per bit;
* **pooled scratch** -- tables, sides and bit planes recycle through
  :data:`repro.core.scratch.SCRATCH`, so steady-state chunks allocate
  nothing but their result.

Bit-compatibility: the per-device current is still computed as
``unit_current * B(gate)`` with the exact argument expression of
:meth:`MosModel.saturation_current`, branch sides still combine as
``I1 + I2`` and ``I3 + I4`` in that association, and the bit equals
the sign test of :meth:`Boundary.bit` -- so the returned codes are
bit-identical to ``encoder.code(x, y)`` (asserted by the campaign
equivalence and hypothesis tests, which also pin the fused kernel to
:func:`monitor_bank_codes_reference`, the retained PR 2 loop).  Monte
Carlo-varied banks simply get less sharing: each shifted model card
owns its own cache slot, never a wrong one.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple, Union

import numpy as np

from repro.core.scratch import SCRATCH
from repro.core.zones import ZoneEncoder
from repro.devices.mos_model import MosModel, MosParams, softplus
from repro.monitor.comparator import MonitorBoundary


def _branch_values(params: MosParams, gate):
    """The exact EKV branch expression for scalar / 1-D gates."""
    vgs_d = params.polarity * np.asarray(gate, dtype=float)
    return softplus((vgs_d - params.vt0)
                    / (2.0 * params.n * params.thermal_voltage)) ** 2


def _branch_table_2d(params: MosParams, gate: np.ndarray) -> np.ndarray:
    """EKV branch of a 2-D gate stack, computed in place.

    Same float expression tree as :func:`_branch_values` -- including
    :func:`softplus`'s clamp-at-30 overflow guard and the final square
    -- but staged through a single pooled buffer instead of one fresh
    ``(N, T)`` temporary per operation.
    """
    arg = SCRATCH.take(gate.shape)
    np.multiply(gate, float(params.polarity), out=arg)
    np.subtract(arg, params.vt0, out=arg)
    np.divide(arg, 2.0 * params.n * params.thermal_voltage, out=arg)
    # softplus: where(x > 30, x, log1p(exp(min(x, 30)))).  When no
    # element exceeds the clamp, min/where are bitwise no-ops and the
    # guard reduces to one read-only max scan.
    if arg.size and float(np.max(arg)) > 30.0:
        big = arg > 30.0
        saved = arg[big]
        np.minimum(arg, 30.0, out=arg)
        np.exp(arg, out=arg)
        np.log1p(arg, out=arg)
        arg[big] = saved
    else:
        np.exp(arg, out=arg)
        np.log1p(arg, out=arg)
    np.multiply(arg, arg, out=arg)  # ** 2
    return arg


def _table_key(params: MosParams, gate_key) -> Tuple:
    return (params.polarity, params.vt0, params.n,
            params.thermal_voltage, gate_key)


def _gate_for(hookup, x, y):
    if hookup == "x":
        return x, "x"
    if hookup == "y":
        return y, "y"
    return float(hookup), float(hookup)


def monitor_bank_codes(encoder: ZoneEncoder, x: np.ndarray,
                       y: np.ndarray) -> Optional[np.ndarray]:
    """Zone codes of a trace stack through a monitor-boundary bank.

    ``x`` is the shared stimulus samples ``(T,)`` (broadcast over
    rows), ``y`` the response stack ``(N, T)``; 2-D ``x`` stacks (the
    noisy-capture path) take the same fused kernel.  Returns ``None``
    when the encoder contains non-monitor boundaries (callers fall
    back to the generic per-boundary path).
    """
    if not all(isinstance(b, MonitorBoundary) for b in encoder.boundaries):
        return None
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    shape = np.broadcast_shapes(x.shape, y.shape)

    tables: Dict[Tuple, Union[float, np.ndarray]] = {}
    sides: Dict[Tuple, Union[float, np.ndarray]] = {}

    def branch_for(device: MosModel, hookup):
        gate, gate_key = _gate_for(hookup, x, y)
        key = _table_key(device.params, gate_key)
        table = tables.get(key)
        if table is None:
            if np.ndim(gate) >= 2:
                table = _branch_table_2d(device.params, gate)
            else:
                table = _branch_values(device.params, gate)
            tables[key] = table
        return table, key

    def side_for(boundary: MonitorBoundary, pair) -> np.ndarray:
        """Memoized branch sum ``I_a + I_b`` of one comparator side."""
        parts = []
        for position in pair:
            device = boundary.devices[position]
            hookup = boundary.config.hookups[position]
            __, table_key = branch_for(device, hookup)
            parts.append((table_key, device.unit_current))
        side_key = tuple(parts)
        value = sides.get(side_key)
        if value is not None:
            return value
        running = None  # full-stack partial sum (owns a pooled buffer)
        spill = None    # scalar / 1-D partial awaiting a 2-D partner
        for position in pair:
            device = boundary.devices[position]
            hookup = boundary.config.hookups[position]
            table, __ = branch_for(device, hookup)
            if np.ndim(table) >= 2:
                if running is None:
                    running = np.multiply(table, device.unit_current,
                                          out=SCRATCH.take(table.shape))
                else:
                    # Rare: two full-stack gates on one side.  Addition
                    # is commutative bitwise, so folding the second
                    # product in preserves (I_a + I_b) exactly.
                    np.add(running, table * device.unit_current,
                           out=running)
            else:
                current = device.unit_current * table
                if np.ndim(current) == 0:
                    current = float(current)
                spill = current if spill is None else spill + current
        if spill is not None:
            value = spill if running is None \
                else np.add(running, spill, out=running)
        else:
            value = running
        sides[side_key] = value
        return value

    num_bits = len(encoder.boundaries)
    bits = SCRATCH.take(shape, dtype=bool)
    narrow = np.uint8 if num_bits <= 8 else np.int64
    codes = np.zeros(shape, dtype=narrow)
    for boundary in encoder.boundaries:
        left = side_for(boundary, (0, 1))
        right = side_for(boundary, (2, 3))
        # bit = ((I1+I2) - (I3+I4)) * origin_sign < 0.  Rounding keeps
        # the difference's sign exact, and origin_sign is exactly +-1,
        # so the whole test collapses to one direct comparison.
        if boundary.origin_sign > 0:
            np.less(left, right, out=bits)
        else:
            np.greater(left, right, out=bits)
        np.left_shift(codes, 1, out=codes)
        np.bitwise_or(codes, bits, out=codes)
    SCRATCH.give(bits,
                 *(v for v in tables.values() if isinstance(v, np.ndarray)
                   and v.ndim >= 2),
                 *(v for v in sides.values() if isinstance(v, np.ndarray)
                   and v.ndim >= 2))
    if codes.dtype is not np.dtype(np.int64):
        codes = codes.astype(np.int64)
    return codes


def monitor_bank_codes_reference(encoder: ZoneEncoder, x: np.ndarray,
                                 y: np.ndarray) -> Optional[np.ndarray]:
    """The pre-fusion shared-branch encoder (PR 2), kept as baseline.

    Same shared softplus tables, but one fresh ``(N, T)`` temporary per
    device/boundary operation, an explicit balance subtraction, and an
    ``int64`` shift/or chain per bit.  Benchmarks time the fused kernel
    against this, and the equivalence tests assert both return
    bit-identical codes.
    """
    if not all(isinstance(b, MonitorBoundary) for b in encoder.boundaries):
        return None
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    cache: Dict[Tuple, Union[float, np.ndarray]] = {}
    codes: Optional[np.ndarray] = None
    for boundary in encoder.boundaries:
        currents = []
        for device, hookup in zip(boundary.devices,
                                  boundary.config.hookups):
            gate, gate_key = _gate_for(hookup, x, y)
            key = _table_key(device.params, gate_key)
            branch = cache.get(key)
            if branch is None:
                branch = _branch_values(device.params, gate)
                cache[key] = branch
            current = device.unit_current * branch
            if np.ndim(current) == 0:
                current = float(current)
            currents.append(current)
        balance = (currents[0] + currents[1]) - (currents[2] + currents[3])
        bit = (balance * boundary.origin_sign < 0).astype(np.int64)
        codes = bit if codes is None else (codes << 1) | bit
    return codes
