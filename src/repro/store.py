"""On-disk artifact store: warm screening state that survives restarts.

Every expensive derived artifact of a screening configuration -- the
golden signature bundle, the Fig. 8 calibration sweep, the compiled
fault dictionary -- is a pure function of a *content key* the campaign
layer already computes (:meth:`CampaignConfig.golden_key` and friends).
The :class:`ArtifactStore` persists those artifacts under exactly those
keys, so a restarted process (``repro serve --store``) re-derives
nothing: :meth:`~repro.service.session.ScreeningSession.warm` becomes
three store reads.

Layout (default root ``~/.repro/store``, overridable via the
``REPRO_STORE`` environment variable or an explicit path)::

    <root>/index.json            key-id -> {key, kind, sha256, bytes, file}
    <root>/objects/<id>.npz      one payload per artifact (arrays + meta)
    <root>/quarantine/           corrupted payloads, moved aside
    <root>/index.lock            cross-process index lock (flock)

Durability contract:

* **Atomic writes.** Payloads and the index are written to a temp file
  in the same directory, flushed, ``fsync``'d and ``os.replace``'d into
  place; a crash at any instant leaves either the old or the new file,
  never a torn one, and readers never observe a partial write.
* **Checksums verified on load.** Every payload's sha256 is recorded in
  the index and re-hashed on read.  A mismatch (torn write that somehow
  landed, bit rot, concurrent truncation) **quarantines** the file and
  reports a miss -- corruption degrades to a recompute-and-rewrite,
  never a crash.
* **Concurrent access.** Payload files are content-addressed by key and
  replaced atomically, so two processes racing on the same key both
  land a valid file; the index is rewritten under an ``flock``'d lock
  file with a read-merge-replace cycle, so concurrent writers never
  lose each other's entries.

The store is wired under :class:`~repro.campaign.cache.GoldenCache`
(pass ``store=``): in-memory misses consult the store before computing,
and fresh computations are written through.  Only artifact kinds with a
registered codec persist (``golden``, ``calibration``,
``fault_dictionary``); everything else stays memory-only.

See ``docs/persistence.md`` for the full layout and recovery semantics.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.obs.metrics import default_registry
from repro.obs.trace import span
from repro.testing.faultinject import should_fail

#: Environment variable overriding the default store root.
STORE_ENV_VAR = "REPRO_STORE"

#: Index format version (bumped on incompatible layout changes).
INDEX_VERSION = 1


def default_store_root() -> str:
    """``$REPRO_STORE`` when set, else ``~/.repro/store``."""
    env = os.environ.get(STORE_ENV_VAR, "").strip()
    if env:
        return os.path.expanduser(env)
    return os.path.join(os.path.expanduser("~"), ".repro", "store")


def key_id(key) -> str:
    """Stable hex id of a content key.

    Content keys are nested tuples of ints, floats, strings and enum
    values; ``repr`` of such a tuple is deterministic across processes
    (CPython float repr is shortest-roundtrip), so its sha256 is a
    stable address.
    """
    return hashlib.sha256(repr(key).encode("utf-8")).hexdigest()


def _fsync_directory(path: str) -> None:
    """Flush a directory entry table (best effort off-POSIX)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - exotic filesystems
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: str, data: bytes,
                       tear_fault: Optional[str] = None) -> None:
    """Write ``data`` to ``path`` atomically (tmp + fsync + rename).

    ``tear_fault`` names a fault point that, when armed, truncates the
    temp file after the fsync but before the rename -- the robustness
    suite's simulated torn write (the damaged payload lands under the
    final name, exactly what a crash between page write-back and
    checksum recording produces on a non-atomic filesystem).
    """
    directory = os.path.dirname(path) or "."
    tmp = os.path.join(
        directory,
        f".{os.path.basename(path)}.{os.getpid()}."
        f"{threading.get_ident()}.tmp")
    try:
        with open(tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        if tear_fault is not None and should_fail(tear_fault):
            with open(tmp, "r+b") as handle:
                handle.truncate(max(0, len(data) // 2))
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):
            try:
                os.unlink(tmp)
            except OSError:  # pragma: no cover
                pass
    _fsync_directory(directory)


@dataclass(frozen=True)
class StoreInfo:
    """Snapshot of the store counters."""

    hits: int
    misses: int
    writes: int
    quarantined: int
    errors: int

    def __str__(self) -> str:
        return (f"{self.hits} hits / {self.misses} misses "
                f"({self.writes} writes, {self.quarantined} quarantined)")


class _IndexLock:
    """Cross-process exclusive lock on the store index (flock)."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._handle = None

    def __enter__(self) -> "_IndexLock":
        self._handle = open(self.path, "a+")
        try:
            import fcntl

            fcntl.flock(self._handle.fileno(), fcntl.LOCK_EX)
        except ImportError:  # pragma: no cover - non-POSIX fallback
            pass
        return self

    def __exit__(self, *exc) -> None:
        try:
            import fcntl

            fcntl.flock(self._handle.fileno(), fcntl.LOCK_UN)
        except ImportError:  # pragma: no cover
            pass
        self._handle.close()
        self._handle = None


class ArtifactStore:
    """Checksummed, atomically-written ``.npz`` artifacts on disk.

    Parameters
    ----------
    root:
        Store directory (created on first use).  Defaults to
        :func:`default_store_root`.

    The generic surface is ``put(key, arrays, meta)`` /
    ``get(key)``; the artifact-aware surface
    (:meth:`save_artifact` / :meth:`load_artifact`) adds the codec
    dispatch :class:`~repro.campaign.cache.GoldenCache` consumes.
    All methods are thread-safe and never raise on a damaged store:
    corruption quarantines and reads degrade to misses.
    """

    def __init__(self, root: Optional[str] = None) -> None:
        self.root = os.path.abspath(root if root is not None
                                    else default_store_root())
        self.objects_dir = os.path.join(self.root, "objects")
        self.quarantine_dir = os.path.join(self.root, "quarantine")
        self.index_path = os.path.join(self.root, "index.json")
        self._lock_path = os.path.join(self.root, "index.lock")
        os.makedirs(self.objects_dir, exist_ok=True)
        os.makedirs(self.quarantine_dir, exist_ok=True)
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._writes = 0
        self._quarantined = 0
        self._errors = 0

    # ------------------------------------------------------------------
    # Counters
    # ------------------------------------------------------------------
    @property
    def info(self) -> StoreInfo:
        """Current hit/miss/write/quarantine counters."""
        with self._lock:
            return StoreInfo(self._hits, self._misses, self._writes,
                             self._quarantined, self._errors)

    def _count(self, field: str) -> None:
        with self._lock:
            setattr(self, field, getattr(self, field) + 1)
        # Mirror into the process-default registry so store behaviour
        # shows on /metrics and in `repro campaign --profile` runs.
        default_registry().counter("store_ops_total",
                                   op=field.lstrip("_")).inc()

    # ------------------------------------------------------------------
    # Index
    # ------------------------------------------------------------------
    def _read_index(self) -> Dict[str, Dict]:
        """The on-disk index (empty on absence or damage)."""
        try:
            with open(self.index_path, "r", encoding="utf-8") as handle:
                index = json.load(handle)
        except FileNotFoundError:
            return {}
        except (json.JSONDecodeError, UnicodeDecodeError, OSError):
            # A torn index is recoverable state, not a crash: entries
            # re-register on the next write, payloads re-verify by
            # checksum either way.
            self._count("_errors")
            return {}
        if not isinstance(index, dict) \
                or index.get("version") != INDEX_VERSION:
            return {}
        entries = index.get("entries")
        return entries if isinstance(entries, dict) else {}

    def _update_index(self, mutate: Callable[[Dict[str, Dict]], None]
                      ) -> None:
        """Read-merge-replace the index under the cross-process lock."""
        with _IndexLock(self._lock_path):
            entries = self._read_index()
            mutate(entries)
            body = json.dumps({"version": INDEX_VERSION,
                               "entries": entries},
                              indent=0, sort_keys=True).encode("utf-8")
            atomic_write_bytes(self.index_path, body,
                               tear_fault="store.index.tear")

    # ------------------------------------------------------------------
    # Generic put/get
    # ------------------------------------------------------------------
    def put(self, key, arrays: Dict[str, np.ndarray],
            meta: Optional[Dict] = None) -> str:
        """Persist one artifact; returns its key id.

        ``arrays`` land in one compressed ``.npz`` alongside a JSON
        ``meta`` record; the payload is written atomically and its
        sha256 recorded in the index.
        """
        kid = key_id(key)
        kind = str(key[0]) if isinstance(key, tuple) and key else "raw"
        with span("store.put", kind=kind):
            buffer = io.BytesIO()
            np.savez_compressed(
                buffer,
                __meta__=np.asarray(json.dumps(meta if meta is not None
                                               else {})),
                **arrays)
            data = buffer.getvalue()
            digest = hashlib.sha256(data).hexdigest()
            filename = kid + ".npz"
            path = os.path.join(self.objects_dir, filename)
            atomic_write_bytes(path, data,
                               tear_fault="store.write.tear")
            entry = {
                "key": repr(key),
                "kind": kind,
                "sha256": digest,
                "bytes": len(data),
                "file": os.path.join("objects", filename),
                "written": time.time(),
            }
            self._update_index(
                lambda entries: entries.__setitem__(kid, entry))
            self._count("_writes")
        return kid

    def get(self, key) -> Optional[Tuple[Dict[str, np.ndarray], Dict]]:
        """Load one artifact, or None on miss/corruption.

        Verifies the payload's sha256 against the index before
        decoding; a mismatch or an undecodable archive quarantines the
        file, drops the index entry, and returns None -- the caller
        recomputes and rewrites.
        """
        kid = key_id(key)
        with span("store.get") as sp:
            entry = self._read_index().get(kid)
            if entry is None:
                self._count("_misses")
                sp.set(outcome="miss")
                return None
            path = os.path.join(self.root, entry.get("file", ""))
            if should_fail("store.read.corrupt"):
                self._corrupt_on_disk(path)
            try:
                with open(path, "rb") as handle:
                    data = handle.read()
            except OSError:
                self._count("_misses")
                sp.set(outcome="miss")
                return None
            if hashlib.sha256(data).hexdigest() != entry.get("sha256"):
                self._quarantine(kid, path, "checksum mismatch")
                self._count("_misses")
                sp.set(outcome="quarantined")
                return None
            try:
                with np.load(io.BytesIO(data),
                             allow_pickle=False) as archive:
                    meta = json.loads(str(archive["__meta__"]))
                    arrays = {name: archive[name]
                              for name in archive.files
                              if name != "__meta__"}
            except Exception:
                # Checksum matched but the archive is undecodable
                # (e.g. a truncated payload whose checksum was
                # recorded by a torn index writer): same degradation
                # path.
                self._quarantine(kid, path, "undecodable archive")
                self._count("_misses")
                sp.set(outcome="quarantined")
                return None
            self._count("_hits")
            sp.set(outcome="hit")
        return arrays, meta

    def contains(self, key) -> bool:
        """True when the index lists ``key`` (payload not verified)."""
        return key_id(key) in self._read_index()

    def keys(self) -> Dict[str, str]:
        """Mapping of key id -> recorded key repr."""
        return {kid: entry.get("key", "")
                for kid, entry in self._read_index().items()}

    def __len__(self) -> int:
        return len(self._read_index())

    # ------------------------------------------------------------------
    # Damage handling
    # ------------------------------------------------------------------
    @staticmethod
    def _corrupt_on_disk(path: str) -> None:
        """Flip a byte of ``path`` in place (the armed-corruption
        fault point's action; simulates bit rot)."""
        try:
            with open(path, "r+b") as handle:
                handle.seek(0, os.SEEK_END)
                size = handle.tell()
                if size == 0:
                    return
                handle.seek(size // 2)
                byte = handle.read(1)
                handle.seek(size // 2)
                handle.write(bytes([byte[0] ^ 0xFF]) if byte
                             else b"\xff")
        except OSError:  # pragma: no cover
            pass

    def _quarantine(self, kid: str, path: str, reason: str) -> None:
        """Move a damaged payload aside and drop its index entry."""
        with span("store.quarantine", key_id=kid, reason=reason):
            target = os.path.join(
                self.quarantine_dir,
                f"{kid}.{os.getpid()}.{int(time.time() * 1e3)}.npz")
            try:
                os.replace(path, target)
            except OSError:
                # Already gone (e.g. the other process quarantined
                # first).
                pass
            self._update_index(lambda entries: entries.pop(kid, None))
            self._count("_quarantined")

    # ------------------------------------------------------------------
    # Artifact codecs (the GoldenCache write-through surface)
    # ------------------------------------------------------------------
    def save_artifact(self, key, value) -> bool:
        """Persist a cache value when its kind has a codec.

        Returns True when written; unknown kinds and encoding failures
        return False (memory-only caching continues unaffected).
        """
        codec = _codec_for(key)
        if codec is None:
            return False
        try:
            arrays, meta = codec.encode(value)
            self.put(key, arrays, meta)
            return True
        except Exception:
            self._count("_errors")
            return False

    def load_artifact(self, key):
        """Decode a persisted cache value, or None on miss/damage."""
        codec = _codec_for(key)
        if codec is None:
            return None
        loaded = self.get(key)
        if loaded is None:
            return None
        arrays, meta = loaded
        try:
            return codec.decode(arrays, meta)
        except Exception:
            self._count("_errors")
            return None


# ----------------------------------------------------------------------
# Codecs: content-keyed cache values <-> (arrays, meta)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _Codec:
    encode: Callable
    decode: Callable


def _signature_arrays(signature) -> Tuple[np.ndarray, np.ndarray]:
    return (np.asarray(signature.codes(), dtype=np.int64),
            np.asarray(signature.durations(), dtype=float))


def _signature_from_arrays(codes: np.ndarray, durations: np.ndarray,
                           period: float):
    from repro.core.signature import Signature

    return Signature.from_pairs(
        zip(codes.tolist(), durations.tolist()), float(period))


def _encode_golden(artifacts) -> Tuple[Dict[str, np.ndarray], Dict]:
    codes, durations = _signature_arrays(artifacts.signature)
    arrays = {
        "times": artifacts.times,
        "x": artifacts.x,
        "y": artifacts.y,
        "codes": artifacts.codes,
        "sig_codes": codes,
        "sig_durations": durations,
    }
    return arrays, {"period": float(artifacts.period)}


def _decode_golden(arrays: Dict[str, np.ndarray], meta: Dict):
    from repro.campaign.cache import GoldenArtifacts

    period = float(meta["period"])
    signature = _signature_from_arrays(arrays["sig_codes"],
                                       arrays["sig_durations"], period)
    return GoldenArtifacts(
        times=arrays["times"], x=arrays["x"], y=arrays["y"],
        codes=arrays["codes"], signature=signature, period=period)


def _encode_calibration(calibration
                        ) -> Tuple[Dict[str, np.ndarray], Dict]:
    return ({"deviations": calibration.deviations,
             "ndfs": calibration.ndfs}, {})


def _decode_calibration(arrays: Dict[str, np.ndarray], meta: Dict):
    from repro.core.decision import ThresholdCalibration

    return ThresholdCalibration(arrays["deviations"], arrays["ndfs"])


def _encode_dictionary(dictionary) -> Tuple[Dict[str, np.ndarray], Dict]:
    codes, durations = _signature_arrays(dictionary.golden_signature)
    arrays = {
        "codes": dictionary.batch.codes,
        "durations": dictionary.batch.durations,
        "row_offsets": dictionary.batch.row_offsets,
        "periods": dictionary.batch.periods,
        "ndfs": dictionary.ndfs,
        "features": dictionary.features,
        "golden_codes": codes,
        "golden_durations": durations,
    }
    meta = {
        "num_bits": int(dictionary.num_bits),
        "period": float(dictionary.period),
        "threshold": (None if dictionary.threshold is None
                      else float(dictionary.threshold)),
        "faults": [{"kind": fault.kind.value, "target": fault.target,
                    "deviation": float(fault.deviation)}
                   for fault in dictionary.faults],
    }
    return arrays, meta


def _decode_dictionary(arrays: Dict[str, np.ndarray], meta: Dict):
    from repro.core.signature_batch import SignatureBatch
    from repro.diagnosis.dictionary import FaultDictionary
    from repro.filters.faults import Fault, FaultKind

    period = float(meta["period"])
    batch = SignatureBatch(arrays["codes"], arrays["durations"],
                           arrays["row_offsets"], arrays["periods"])
    golden = _signature_from_arrays(arrays["golden_codes"],
                                    arrays["golden_durations"], period)
    faults = [Fault(FaultKind(entry["kind"]), entry["target"],
                    entry["deviation"]) for entry in meta["faults"]]
    return FaultDictionary(
        batch=batch, ndfs=arrays["ndfs"], features=arrays["features"],
        faults=faults, golden_signature=golden,
        num_bits=int(meta["num_bits"]), period=period,
        threshold=meta["threshold"])


#: Persistable cache-key kinds (key[0]) and their codecs.  Multi-channel
#: dictionaries stay memory-only: they carry live encoder objects.
_CODECS: Dict[str, _Codec] = {
    "golden": _Codec(_encode_golden, _decode_golden),
    "calibration": _Codec(_encode_calibration, _decode_calibration),
    "fault_dictionary": _Codec(_encode_dictionary, _decode_dictionary),
}


def _codec_for(key) -> Optional[_Codec]:
    if isinstance(key, tuple) and key and isinstance(key[0], str):
        return _CODECS.get(key[0])
    return None


def persistable_kinds() -> Tuple[str, ...]:
    """The artifact kinds the store can round-trip."""
    return tuple(sorted(_CODECS))


__all__ = [
    "ArtifactStore",
    "STORE_ENV_VAR",
    "StoreInfo",
    "atomic_write_bytes",
    "default_store_root",
    "key_id",
    "persistable_kinds",
]
