"""repro: reproduction of "Analog Circuit Test Based on a Digital Signature".

DATE 2010, A. Gómez, R. Sanahuja, L. Balado, J. Figueras (UPC).

The library implements the paper's full stack:

* ``repro.circuits`` -- an MNA circuit simulator (DC / transient / AC)
* ``repro.devices``  -- smooth MOS models + 65 nm-class process statistics
* ``repro.signals``  -- multitone stimuli, waveforms, noise, Lissajous
* ``repro.filters``  -- the Biquad CUT (behavioural + Tow-Thomas netlist)
  and fault injection
* ``repro.monitor``  -- the current-comparator zone monitor (Table I /
  Fig. 4), analytic and transistor-level, with Monte Carlo spread
* ``repro.core``     -- X-Y zoning, digital signatures, asynchronous
  capture, the NDF metric and the PASS/FAIL decision flow
* ``repro.baselines`` -- straight-line zoning and regression-based
  alternate test for comparison
* ``repro.analysis`` -- chronograms, sweeps and report formatting
* ``repro.campaign`` -- batched fleet-scale test campaigns (cached
  golden signatures, vectorized scoring, serial/process-pool executors)
* ``repro.diagnosis`` -- signature-space fault dictionaries, batched
  fleet diagnosis (which fault produced this failing signature?) and
  ambiguity/coverage analysis
"""

__version__ = "1.0.0"

from repro._api import (
    FIG6_ZONE_CODES,
    FIG7_NDF_10PCT,
    PAPER_BIQUAD,
    PAPER_INPUT_POLE_HZ,
    PAPER_STIMULUS,
    CampaignEngine,
    CampaignResult,
    FaultDictionary,
    PaperSetup,
    ScreeningRequest,
    ScreeningSession,
    compile_fault_dictionary,
    noisy_paper_setup,
    paper_setup,
)

__all__ = [
    "__version__",
    "CampaignEngine",
    "CampaignResult",
    "FaultDictionary",
    "compile_fault_dictionary",
    "FIG6_ZONE_CODES",
    "FIG7_NDF_10PCT",
    "PAPER_BIQUAD",
    "PAPER_INPUT_POLE_HZ",
    "PAPER_STIMULUS",
    "PaperSetup",
    "ScreeningRequest",
    "ScreeningSession",
    "noisy_paper_setup",
    "paper_setup",
]
