"""SPICE-style netlist parser.

Lets users bring existing decks to the simulator (and keeps the
reproduction's circuits reviewable as plain text).  The supported
subset covers everything the library's circuits need:

* elements: ``R``, ``C``, ``L``, ``V``, ``I``, ``E`` (VCVS), ``G``
  (VCCS), ``F`` (CCCS), ``H`` (CCVS), ``D`` (diode), ``M`` (MOSFET,
  3-terminal: drain gate source + model name);
* sources: DC values, ``SIN(offset ampl freq [phase_deg])``,
  ``PULSE(v1 v2 delay rise fall width period)``,
  ``PWL(t1 v1 t2 v2 ...)``, and an ``AC mag [phase]`` suffix;
* ``.model NAME NMOS|PMOS (vto=... kp=... n=... lambda=... w=... l=...)``
  cards supplying MOSFET parameters (w/l defaults overridable per
  instance with ``w=`` / ``l=`` on the M line);
* engineering suffixes (``k``, ``meg``, ``m``, ``u``, ``n``, ``p``,
  ``f``, ``g``, ``t``), ``*``/``;`` comments, ``+`` continuations;
* ``.end`` terminates parsing; other dot-cards raise (explicitly
  unsupported rather than silently ignored).

Example
-------
>>> from repro.circuits.parser import parse_netlist
>>> ckt = parse_netlist('''
... * divider
... V1 in 0 1.0
... R1 in out 1k
... R2 out 0 1k
... .end
... ''')
>>> system = ckt.assemble()
>>> system.dc().voltage(system, "out")
0.5
"""

from __future__ import annotations

import re
from typing import Dict, List, Tuple

from repro.circuits.components import (
    Capacitor,
    Cccs,
    Ccvs,
    CurrentSource,
    Diode,
    Inductor,
    Resistor,
    Vccs,
    Vcvs,
    VoltageSource,
    piecewise_linear,
    pulse,
    sine,
)
from repro.circuits.mosfet import Mosfet
from repro.circuits.netlist import Circuit
from repro.devices.mos_model import MosModel, MosParams


class NetlistError(Exception):
    """Raised on malformed netlist text (with a line number)."""


_SUFFIXES = {
    "t": 1e12, "g": 1e9, "meg": 1e6, "k": 1e3, "m": 1e-3,
    "u": 1e-6, "n": 1e-9, "p": 1e-12, "f": 1e-15,
}

_NUMBER_RE = re.compile(
    r"^([+-]?\d*\.?\d+(?:[eE][+-]?\d+)?)(meg|[tgkmunpf])?[a-z]*$",
    re.IGNORECASE)


def parse_value(token: str) -> float:
    """Parse a SPICE number with engineering suffix (``2.2k``, ``10u``)."""
    match = _NUMBER_RE.match(token.strip())
    if not match:
        raise ValueError(f"cannot parse value {token!r}")
    base = float(match.group(1))
    suffix = (match.group(2) or "").lower()
    return base * _SUFFIXES.get(suffix, 1.0)


def _strip_comment(line: str) -> str:
    for mark in (";", "$"):
        pos = line.find(mark)
        if pos >= 0:
            line = line[:pos]
    return line.rstrip()


def _logical_lines(text: str) -> List[Tuple[int, str]]:
    """Join ``+`` continuations; returns (line number, content) pairs."""
    out: List[Tuple[int, str]] = []
    for number, raw in enumerate(text.splitlines(), start=1):
        line = _strip_comment(raw)
        stripped = line.strip()
        if not stripped or stripped.startswith("*"):
            continue
        if stripped.startswith("+"):
            if not out:
                raise NetlistError(
                    f"line {number}: continuation with nothing to continue")
            prev_no, prev = out[-1]
            out[-1] = (prev_no, prev + " " + stripped[1:].strip())
        else:
            out.append((number, stripped))
    return out


_FUNC_RE = re.compile(r"^(sin|pulse|pwl)\s*\((.*)\)$", re.IGNORECASE)


def _parse_source_tail(tokens: List[str], line_no: int):
    """Parse a V/I source tail: DC value and/or function, plus AC spec.

    Returns (dc_spec, ac_mag, ac_phase).
    """
    text = " ".join(tokens)
    ac_mag, ac_phase = 0.0, 0.0
    # Extract a trailing "AC mag [phase]" clause.
    ac_match = re.search(r"\bac\s+(\S+)(?:\s+(\S+))?\s*$", text,
                         re.IGNORECASE)
    if ac_match:
        ac_mag = parse_value(ac_match.group(1))
        if ac_match.group(2):
            ac_phase = parse_value(ac_match.group(2))
        text = text[:ac_match.start()].strip()
    if not text:
        return 0.0, ac_mag, ac_phase
    text_clean = re.sub(r"^dc\s+", "", text, flags=re.IGNORECASE).strip()
    func = _FUNC_RE.match(text_clean)
    if func is None:
        try:
            return parse_value(text_clean), ac_mag, ac_phase
        except ValueError:
            raise NetlistError(
                f"line {line_no}: cannot parse source value {text!r}")
    kind = func.group(1).lower()
    args = [parse_value(a) for a in func.group(2).replace(",", " ").split()]
    if kind == "sin":
        if len(args) < 3:
            raise NetlistError(
                f"line {line_no}: SIN needs offset, amplitude, freq")
        phase = args[3] if len(args) > 3 else 0.0
        return sine(args[0], args[1], args[2], phase), ac_mag, ac_phase
    if kind == "pulse":
        if len(args) != 7:
            raise NetlistError(f"line {line_no}: PULSE needs 7 arguments")
        return pulse(*args), ac_mag, ac_phase
    # PWL
    if len(args) < 2 or len(args) % 2:
        raise NetlistError(f"line {line_no}: PWL needs time/value pairs")
    points = list(zip(args[0::2], args[1::2]))
    return piecewise_linear(points), ac_mag, ac_phase


def _parse_model_card(tokens: List[str], line_no: int) -> Tuple[str, dict]:
    """Parse ``.model name nmos|pmos (k=v ...)`` into (name, params)."""
    if len(tokens) < 3:
        raise NetlistError(f"line {line_no}: .model needs name and type")
    name = tokens[1].lower()
    kind = tokens[2].lower()
    if kind not in ("nmos", "pmos"):
        raise NetlistError(
            f"line {line_no}: unsupported model type {kind!r}")
    blob = " ".join(tokens[3:]).strip("() ")
    params: Dict[str, float] = {}
    for pair in re.findall(r"(\w+)\s*=\s*([^\s()]+)", blob):
        params[pair[0].lower()] = parse_value(pair[1])
    card = {
        "polarity": 1 if kind == "nmos" else -1,
        "vt0": params.get("vto", params.get("vt0", 0.42)),
        "kp": params.get("kp", 400e-6),
        "n": params.get("n", 1.3),
        "lambda_": params.get("lambda", 0.15),
        "w": params.get("w", 1e-6),
        "l": params.get("l", 180e-9),
    }
    return name, card


def parse_netlist(text: str, title: str = "") -> Circuit:
    """Parse SPICE-like netlist text into a :class:`Circuit`."""
    lines = _logical_lines(text)
    # First pass: collect .model cards (they may follow their users).
    models: Dict[str, dict] = {}
    for line_no, line in lines:
        tokens = line.split()
        if tokens[0].lower() == ".model":
            name, card = _parse_model_card(tokens, line_no)
            models[name] = card

    circuit = Circuit(title or "netlist")
    pending_f_h: List[Tuple[int, List[str]]] = []

    for line_no, line in lines:
        tokens = line.split()
        head = tokens[0]
        kind = head[0].upper()
        lower = head.lower()
        if lower == ".end":
            break
        if lower == ".model":
            continue
        if lower.startswith("."):
            raise NetlistError(
                f"line {line_no}: unsupported card {head!r}")
        if kind in "RCL":
            if len(tokens) < 4:
                raise NetlistError(f"line {line_no}: {head} needs 2 nodes "
                                   "and a value")
            a, b = tokens[1], tokens[2]
            value = parse_value(tokens[3])
            cls = {"R": Resistor, "C": Capacitor, "L": Inductor}[kind]
            circuit.add(cls(head, a, b, value))
        elif kind in "VI":
            if len(tokens) < 3:
                raise NetlistError(f"line {line_no}: {head} needs 2 nodes")
            dc, ac_mag, ac_phase = _parse_source_tail(tokens[3:], line_no)
            cls = VoltageSource if kind == "V" else CurrentSource
            circuit.add(cls(head, tokens[1], tokens[2], dc=dc, ac=ac_mag,
                            ac_phase_deg=ac_phase))
        elif kind == "E":
            if len(tokens) != 6:
                raise NetlistError(f"line {line_no}: E needs 4 nodes + gain")
            circuit.add(Vcvs(head, tokens[1], tokens[2], tokens[3],
                             tokens[4], parse_value(tokens[5])))
        elif kind == "G":
            if len(tokens) != 6:
                raise NetlistError(f"line {line_no}: G needs 4 nodes + gm")
            circuit.add(Vccs(head, tokens[1], tokens[2], tokens[3],
                             tokens[4], parse_value(tokens[5])))
        elif kind in "FH":
            # Controlling source may be declared later: defer.
            if len(tokens) != 5:
                raise NetlistError(
                    f"line {line_no}: {kind} needs 2 nodes, a controlling "
                    "V-source name and a gain")
            pending_f_h.append((line_no, tokens))
        elif kind == "D":
            if len(tokens) < 3:
                raise NetlistError(f"line {line_no}: D needs 2 nodes")
            i_s = parse_value(tokens[3]) if len(tokens) > 3 else 1e-14
            circuit.add(Diode(head, tokens[1], tokens[2], i_s=i_s))
        elif kind == "M":
            if len(tokens) < 5:
                raise NetlistError(
                    f"line {line_no}: M needs drain gate source model")
            model_name = tokens[4].lower()
            if model_name not in models:
                raise NetlistError(
                    f"line {line_no}: unknown model {tokens[4]!r}")
            card = dict(models[model_name])
            for pair in tokens[5:]:
                key, _, value = pair.partition("=")
                if key.lower() in ("w", "l") and value:
                    card[key.lower()] = parse_value(value)
            params = MosParams(polarity=card["polarity"], vt0=card["vt0"],
                               kp=card["kp"], n=card["n"],
                               lambda_=card["lambda_"])
            model = MosModel(params, card["w"], card["l"])
            circuit.add(Mosfet(head, tokens[1], tokens[2], tokens[3],
                               model))
        else:
            raise NetlistError(
                f"line {line_no}: unsupported element {head!r}")

    for line_no, tokens in pending_f_h:
        head = tokens[0]
        kind = head[0].upper()
        ctrl_name = tokens[3]
        if ctrl_name not in circuit:
            raise NetlistError(
                f"line {line_no}: controlling source {ctrl_name!r} "
                "not found")
        ctrl = circuit.element(ctrl_name)
        gain = parse_value(tokens[4])
        if kind == "F":
            circuit.add(Cccs(head, tokens[1], tokens[2], ctrl, gain))
        else:
            circuit.add(Ccvs(head, tokens[1], tokens[2], ctrl, gain))

    if not circuit.elements:
        raise NetlistError("netlist contains no elements")
    return circuit
