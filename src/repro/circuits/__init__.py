"""Self-contained MNA circuit simulator (the reproduction's "SPICE").

The paper's evaluation is driven by circuit simulation of a Biquad
filter and a transistor-level monitor; no external simulator is
available offline, so this package implements the required subset of a
SPICE-class engine from scratch:

* :mod:`repro.circuits.netlist` -- circuit container and unknown numbering
* :mod:`repro.circuits.components` -- R, C, L, independent and controlled
  sources, diode, ideal op-amp, source waveform helpers
* :mod:`repro.circuits.mosfet` -- MOSFET element over :mod:`repro.devices`
* :mod:`repro.circuits.mna` -- matrix assembly and linear solves
* :mod:`repro.circuits.dc` -- damped Newton with gmin/source stepping
* :mod:`repro.circuits.transient` -- trapezoidal / backward-Euler integration
* :mod:`repro.circuits.ac` -- small-signal frequency sweeps
* :mod:`repro.circuits.opamp` -- op-amp macro-models
"""

from repro.circuits.netlist import Circuit, CircuitError
from repro.circuits.components import (
    Capacitor,
    Cccs,
    Ccvs,
    CurrentSource,
    Diode,
    Element,
    IdealOpAmp,
    Inductor,
    Resistor,
    StampContext,
    Vccs,
    Vcvs,
    VoltageSource,
    piecewise_linear,
    pulse,
    sine,
)
from repro.circuits.mosfet import Mosfet
from repro.circuits.mna import MnaSystem, SingularCircuitError
from repro.circuits.dc import (
    ConvergenceError,
    DcSolution,
    NewtonOptions,
    dc_operating_point,
    dc_solve_batch,
)
from repro.circuits.transient import TransientResult, transient
from repro.circuits.ac import (
    AcResult,
    AcStampPattern,
    BatchAcResult,
    ac_analysis,
    ac_analysis_batch,
    logspace_frequencies,
    systems_share_topology,
)
from repro.circuits.opamp import OpAmpSpec, add_single_pole_opamp
from repro.circuits.parser import NetlistError, parse_netlist, parse_value
from repro.circuits.sweep import DcSweepResult, dc_sweep, output_characteristic
from repro.circuits.sensitivity import (
    SensitivityRow,
    ndf_component_sensitivities,
    relative_sensitivities,
    towthomas_f0_sensitivities,
)
from repro.circuits.noise_analysis import (
    NoiseContribution,
    NoiseResult,
    noise_analysis,
)

__all__ = [
    "Circuit",
    "CircuitError",
    "Element",
    "StampContext",
    "Resistor",
    "Capacitor",
    "Inductor",
    "VoltageSource",
    "CurrentSource",
    "Vcvs",
    "Vccs",
    "Cccs",
    "Ccvs",
    "Diode",
    "IdealOpAmp",
    "Mosfet",
    "sine",
    "pulse",
    "piecewise_linear",
    "MnaSystem",
    "SingularCircuitError",
    "ConvergenceError",
    "DcSolution",
    "NewtonOptions",
    "dc_operating_point",
    "dc_solve_batch",
    "TransientResult",
    "transient",
    "AcResult",
    "AcStampPattern",
    "BatchAcResult",
    "ac_analysis",
    "ac_analysis_batch",
    "systems_share_topology",
    "logspace_frequencies",
    "OpAmpSpec",
    "add_single_pole_opamp",
    "NetlistError",
    "parse_netlist",
    "parse_value",
    "DcSweepResult",
    "dc_sweep",
    "output_characteristic",
    "SensitivityRow",
    "relative_sensitivities",
    "towthomas_f0_sensitivities",
    "ndf_component_sensitivities",
    "NoiseContribution",
    "NoiseResult",
    "noise_analysis",
]
