"""MOSFET netlist element wrapping :class:`repro.devices.MosModel`.

The element linearizes the smooth EKV-style device around the current
Newton iterate with the standard companion model::

    Id ~= Id0 + gm (vgs - vgs0) + gds (vds - vds0)

and stamps the equivalent VCCS pair plus a history current source.
Terminals are (drain, gate, source); the bulk is assumed tied to the
source rail (all circuits in the paper ground the nMOS sources and tie
pMOS sources to VDD, so the body effect is inert -- see
:mod:`repro.devices.mos_model`).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.circuits.components import Element, StampContext
from repro.devices.mos_model import MosModel


class Mosfet(Element):
    """Three-terminal MOSFET element (drain, gate, source)."""

    nonlinear = True

    def __init__(self, name: str, drain: str, gate: str, source: str,
                 model: MosModel) -> None:
        super().__init__(name, (drain, gate, source))
        self.model = model

    #: Voltage perturbation for the finite-difference Jacobian.
    _FD_STEP = 1e-6

    # ------------------------------------------------------------------
    def operating_point(self, ctx: StampContext) -> Tuple[float, float, float, float, float]:
        """(vgs, vds, id, gm, gds) at the current iterate.

        The partial derivatives are central finite differences of the
        exact smooth current, which keeps the Jacobian consistent in
        every operating region (including reverse conduction during
        Newton transients).  The companion stamp makes the *residual*
        exact at the iterate regardless, so the converged solution is
        independent of the Jacobian approximation.
        """
        d, g, s = self._idx
        vgs = ctx.voltage(g) - ctx.voltage(s)
        vds = ctx.voltage(d) - ctx.voltage(s)
        ids = self.model.drain_current(vgs, vds)
        e = self._FD_STEP
        gm = (self.model.drain_current(vgs + e, vds)
              - self.model.drain_current(vgs - e, vds)) / (2.0 * e)
        gds = (self.model.drain_current(vgs, vds + e)
               - self.model.drain_current(vgs, vds - e)) / (2.0 * e)
        return vgs, vds, ids, gm, gds

    def stamp(self, ctx: StampContext) -> None:
        d, g, s = self._idx
        vgs, vds, ids, gm, gds = self.operating_point(ctx)
        dId_dVgs = gm
        dId_dVds = gds
        if ctx.mode == "ac":
            # Small-signal: i_d = gm*vgs + gds*vds flowing d -> s.
            self._stamp_vccs(ctx, d, s, g, s, dId_dVgs)
            self._stamp_vccs(ctx, d, s, d, s, dId_dVds)
            return
        ieq = ids - dId_dVgs * vgs - dId_dVds * vds
        self._stamp_vccs(ctx, d, s, g, s, dId_dVgs)
        self._stamp_vccs(ctx, d, s, d, s, dId_dVds)
        ctx.stamp_current(d, s, ieq)
        if ctx.gmin > 0.0:
            ctx.add_A(d, d, ctx.gmin)
            ctx.add_A(s, s, ctx.gmin)

    @staticmethod
    def _stamp_vccs(ctx: StampContext, out_pos: int, out_neg: int,
                    ctrl_pos: int, ctrl_neg: int, g: float) -> None:
        ctx.add_A(out_pos, ctrl_pos, g)
        ctx.add_A(out_pos, ctrl_neg, -g)
        ctx.add_A(out_neg, ctrl_pos, -g)
        ctx.add_A(out_neg, ctrl_neg, g)

    # ------------------------------------------------------------------
    def drain_current_at(self, x, circuit) -> float:
        """Post-processing: drain current for a solved vector ``x``."""
        d, g, s = self._idx
        vd = 0.0 if d < 0 else float(np.real(x[d]))
        vg = 0.0 if g < 0 else float(np.real(x[g]))
        vs = 0.0 if s < 0 else float(np.real(x[s]))
        return self.model.drain_current(vg - vs, vd - vs)
