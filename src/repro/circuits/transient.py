"""Fixed-step transient analysis (trapezoidal or backward Euler).

The integrator advances the MNA system with a fixed timestep; at every
step the nonlinear elements are resolved by damped Newton iteration
seeded with the previous solution.  The trapezoidal rule (default) is
A-stable and second-order -- the right choice for the paper's lightly
damped Biquad -- while backward Euler is available for stiff start-up
transients and as an ablation reference.

The result object exposes node waveforms by name, which feeds directly
into :class:`repro.signals.waveform.Waveform` for the signature
pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.circuits.components import StampContext
from repro.circuits.dc import ConvergenceError, NewtonOptions, dc_operating_point
from repro.circuits.mna import MnaSystem, SingularCircuitError


@dataclass
class TransientResult:
    """Sampled solution of a transient run.

    Attributes
    ----------
    time:
        1-D array of accepted time points (including t=0).
    states:
        2-D array, one row per time point, of full MNA vectors.
    system:
        The analysed system (for node-name lookup).
    """

    time: np.ndarray
    states: np.ndarray
    system: MnaSystem

    def voltage(self, node: str) -> np.ndarray:
        """Waveform of a node voltage across the run."""
        idx = self.system.circuit.node_index(node)
        if idx < 0:
            return np.zeros_like(self.time)
        return self.states[:, idx].copy()

    def branch_current(self, element) -> np.ndarray:
        """Waveform of an element's first branch current."""
        if element.branch_index < 0:
            raise ValueError(f"{element.name} has no branch current")
        return self.states[:, element.branch_index].copy()

    def final_state(self) -> np.ndarray:
        """Last accepted MNA vector (useful to chain runs)."""
        return self.states[-1].copy()


def _newton_step(system: MnaSystem, x_guess: np.ndarray,
                 x_prev: np.ndarray, t: float, h: float, method: str,
                 state: dict, options: NewtonOptions) -> Optional[np.ndarray]:
    """Solve one implicit timestep; returns None on failure."""
    x = x_guess.copy()
    for _ in range(options.max_iterations):
        ctx = StampContext("tr", None, None, x=x, x_prev=x_prev, t=t, h=h,
                           method=method, state=state)
        try:
            A, z = system.build(ctx)
            x_new = system.solve_linear(A, z)
        except SingularCircuitError:
            return None
        if not system.has_nonlinear:
            return x_new
        dx = x_new - x
        nv = system.num_nodes
        if nv:
            step = np.max(np.abs(dx[:nv]))
            if step > options.max_step_volts:
                dx *= options.max_step_volts / step
        x = x + dx
        if np.all(np.abs(dx) <= options.abstol + options.reltol * np.abs(x)):
            return x
    return None


def transient(system: MnaSystem, tstop: float, dt: float,
              method: str = "trap", x0: Optional[np.ndarray] = None,
              tstart: float = 0.0, use_ic: bool = False,
              newton_options: Optional[NewtonOptions] = None,
              startup_be_steps: int = 2) -> TransientResult:
    """Run a fixed-step transient analysis.

    Parameters
    ----------
    system:
        Assembled circuit.
    tstop:
        Final time in seconds (exclusive upper bound is rounded to the
        nearest whole number of steps).
    dt:
        Fixed timestep in seconds.
    method:
        ``"trap"`` (default) or ``"be"``.
    x0:
        Initial MNA vector; when omitted, the DC operating point at
        ``tstart`` is computed first (capacitors open, inductors short).
    tstart:
        Starting time (sources are evaluated from here).
    use_ic:
        When True, skip the DC solve and start from zeros (or ``x0``)
        honouring explicit initial conditions.
    startup_be_steps:
        Number of initial backward-Euler steps taken before switching
        to the trapezoidal rule; damps the classic TRAP start-up ringing
        when the initial state is not an exact circuit solution.

    Raises
    ------
    ConvergenceError
        If a timestep fails to converge even after retrying with
        backward Euler.
    """
    if dt <= 0:
        raise ValueError("dt must be positive")
    if tstop <= tstart:
        raise ValueError("tstop must exceed tstart")
    if method not in ("trap", "be"):
        raise ValueError(f"unknown integration method {method!r}")
    options = newton_options or NewtonOptions()

    if x0 is not None:
        x = np.asarray(x0, dtype=float).copy()
    elif use_ic:
        x = np.zeros(system.size)
    else:
        x = dc_operating_point(system, t=tstart).x

    steps = int(round((tstop - tstart) / dt))
    times = tstart + dt * np.arange(steps + 1)
    states = np.empty((steps + 1, system.size))
    states[0] = x

    state: dict = {}
    x_prev = x
    for k in range(1, steps + 1):
        t_k = float(times[k])
        step_method = method
        if method == "trap" and k <= startup_be_steps:
            step_method = "be"
        x_next = _newton_step(system, x_prev, x_prev, t_k, dt, step_method,
                              state, options)
        if x_next is None and step_method == "trap":
            # Retry the troublesome step with the more damped BE rule.
            x_next = _newton_step(system, x_prev, x_prev, t_k, dt, "be",
                                  state, options)
            step_method = "be"
        if x_next is None:
            raise ConvergenceError(
                f"transient step at t={t_k:.6g}s failed to converge")
        # Commit integration state for dynamic elements.
        ctx = StampContext("tr", None, None, x=x_next, x_prev=x_prev,
                           t=t_k, h=dt, method=step_method, state=state)
        for element in system.circuit.elements:
            element.update_state(ctx, x_next)
        states[k] = x_next
        x_prev = x_next

    return TransientResult(times, states, system)
