"""DC sweep analysis (SPICE ``.dc``).

Steps one independent source over a value grid, re-solving the
operating point at each step with the previous solution as the Newton
seed (continuation).  Used for device I-V characterization, transfer
curves of the monitor stage, and the examples' design plots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.circuits.dc import ConvergenceError, NewtonOptions, dc_operating_point
from repro.circuits.mna import MnaSystem


@dataclass
class DcSweepResult:
    """Operating points along a swept source value."""

    values: np.ndarray
    states: np.ndarray  # shape (num_points, system size)
    system: MnaSystem
    failed: List[int]

    def voltage(self, node: str) -> np.ndarray:
        """Node voltage along the sweep (NaN where the solve failed)."""
        idx = self.system.circuit.node_index(node)
        out = np.full(len(self.values), np.nan)
        ok = np.ones(len(self.values), dtype=bool)
        ok[self.failed] = False
        if idx < 0:
            out[ok] = 0.0
        else:
            out[ok] = self.states[ok, idx]
        return out

    def branch_current(self, element) -> np.ndarray:
        """An element's branch current along the sweep."""
        if element.branch_index < 0:
            raise ValueError(f"{element.name} has no branch current")
        out = np.full(len(self.values), np.nan)
        ok = np.ones(len(self.values), dtype=bool)
        ok[self.failed] = False
        out[ok] = self.states[ok, element.branch_index]
        return out


def dc_sweep(system: MnaSystem, source, values: Sequence[float],
             options: Optional[NewtonOptions] = None) -> DcSweepResult:
    """Sweep an independent source's DC value over ``values``.

    Parameters
    ----------
    system:
        Assembled circuit containing ``source``.
    source:
        A :class:`VoltageSource` or :class:`CurrentSource` instance from
        the circuit; its ``dc`` attribute is stepped (and restored).
    values:
        The value grid (any order; continuation follows the given
        order).

    Notes
    -----
    Points that fail to converge are recorded in ``failed`` and read
    back as NaN; the sweep continues from the last good solution.
    """
    values = np.asarray(list(values), dtype=float)
    if values.size == 0:
        raise ValueError("empty sweep grid")
    saved = source.dc
    states = np.zeros((values.size, system.size))
    failed: List[int] = []
    seed = None
    try:
        for i, value in enumerate(values):
            source.dc = float(value)
            try:
                solution = dc_operating_point(system, x0=seed,
                                              options=options)
            except ConvergenceError:
                failed.append(i)
                continue
            states[i] = solution.x
            seed = solution.x
    finally:
        source.dc = saved
    return DcSweepResult(values, states, system, failed)


def output_characteristic(system: MnaSystem, gate_source, drain_source,
                          vgs_values: Sequence[float],
                          vds_values: Sequence[float],
                          current_of) -> np.ndarray:
    """Family of I-V curves: I(vds) for each vgs (device plots).

    ``current_of`` maps a solved state vector to the reported current;
    returns an array of shape (len(vgs_values), len(vds_values)).
    """
    curves = np.full((len(vgs_values), len(vds_values)), np.nan)
    saved_g = gate_source.dc
    try:
        for i, vgs in enumerate(vgs_values):
            gate_source.dc = float(vgs)
            sweep = dc_sweep(system, drain_source, vds_values)
            ok = np.ones(len(vds_values), dtype=bool)
            ok[sweep.failed] = False
            for j in np.flatnonzero(ok):
                curves[i, j] = current_of(sweep.states[j])
    finally:
        gate_source.dc = saved_g
    return curves
