"""Op-amp macro-models built from primitive elements.

Two flavours are provided:

* :class:`repro.circuits.components.IdealOpAmp` -- the nullor stamp,
  exact virtual short, used by the ideal Tow-Thomas prototype.
* :func:`add_single_pole_opamp` -- a finite-gain single-pole macro
  (gm stage into an RC pole, buffered by a VCVS with output resistance),
  used to study how finite gain-bandwidth perturbs the Biquad and hence
  the signature (an extension experiment; the paper assumes ideal
  behaviour).

The macro builder composes primitives on internal nodes, so the MNA
core needs no dedicated op-amp element.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuits.components import Capacitor, Resistor, Vccs, Vcvs
from repro.circuits.netlist import Circuit


@dataclass(frozen=True)
class OpAmpSpec:
    """Macro-model parameters for a voltage-feedback op-amp.

    Attributes
    ----------
    dc_gain:
        Open-loop DC gain (V/V).
    gbw_hz:
        Gain-bandwidth product in hertz; sets the dominant pole at
        ``gbw_hz / dc_gain``.
    rout:
        Closed output resistance of the buffered output, in ohms.
    """

    dc_gain: float = 1e5
    gbw_hz: float = 10e6
    rout: float = 1.0

    @property
    def pole_hz(self) -> float:
        """Dominant-pole frequency in hertz."""
        return self.gbw_hz / self.dc_gain


def add_single_pole_opamp(circuit: Circuit, name: str, in_pos: str,
                          in_neg: str, out: str,
                          spec: OpAmpSpec = OpAmpSpec()) -> None:
    """Add a finite-gain single-pole op-amp macro to ``circuit``.

    Topology: a VCCS (gm = 1 S) drives an internal node loaded by
    ``R = dc_gain`` ohms and ``C = 1 / (2 pi pole_hz R)`` farads, giving
    the open-loop response ``A(s) = dc_gain / (1 + s/omega_p)``; a unity
    VCVS buffers the internal node through ``rout`` to the output.
    """
    import math

    mid = circuit.fresh_node(f"{name}_p")
    buf = circuit.fresh_node(f"{name}_b")
    r_pole = spec.dc_gain  # with gm = 1 S, DC gain = gm * R
    c_pole = 1.0 / (2.0 * math.pi * spec.pole_hz * r_pole)
    circuit.add(Vccs(f"{name}_gm", "0", mid, in_pos, in_neg, 1.0))
    circuit.add(Resistor(f"{name}_rp", mid, "0", r_pole))
    circuit.add(Capacitor(f"{name}_cp", mid, "0", c_pole))
    circuit.add(Vcvs(f"{name}_buf", buf, "0", mid, "0", 1.0))
    circuit.add(Resistor(f"{name}_ro", buf, out, spec.rout))
