"""Circuit container: nodes, elements and unknown numbering.

A :class:`Circuit` is a flat netlist of elements connected at named
nodes.  The modified-nodal-analysis unknown vector is::

    x = [ v(node_1) ... v(node_N)  i(branch_1) ... i(branch_M) ]

where the ground node (named ``"0"`` or ``"gnd"``) is eliminated and
*branches* are the extra current unknowns contributed by group-2
elements (voltage sources, VCVS/CCVS, inductors, ideal op-amps).

Elements register themselves when added; :meth:`Circuit.assemble`
freezes the numbering and returns an :class:`repro.circuits.mna.MnaSystem`
ready for analysis.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

GROUND_NAMES = ("0", "gnd", "GND", "vss!", "ground")


class CircuitError(Exception):
    """Raised for malformed netlists (duplicate names, missing nodes...)."""


class Circuit:
    """A flat netlist.

    Parameters
    ----------
    title:
        Optional human-readable description, used in diagnostics.

    Examples
    --------
    >>> from repro.circuits import Circuit, Resistor, VoltageSource
    >>> ckt = Circuit("divider")
    >>> _ = ckt.add(VoltageSource("V1", "in", "0", dc=1.0))
    >>> _ = ckt.add(Resistor("R1", "in", "out", 1e3))
    >>> _ = ckt.add(Resistor("R2", "out", "0", 1e3))
    >>> sorted(ckt.node_names())
    ['in', 'out']
    """

    def __init__(self, title: str = "") -> None:
        self.title = title
        self.elements: List = []
        self._names: Dict[str, object] = {}
        self._nodes: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add(self, element):
        """Add an element; returns it for chaining/reference."""
        if element.name in self._names:
            raise CircuitError(f"duplicate element name {element.name!r}")
        for node in element.nodes:
            self._intern_node(node)
        self._names[element.name] = element
        self.elements.append(element)
        return element

    def add_all(self, elements: Iterable) -> None:
        """Add several elements at once."""
        for element in elements:
            self.add(element)

    def _intern_node(self, node: str) -> None:
        if not isinstance(node, str) or not node:
            raise CircuitError(f"node names must be non-empty strings, got {node!r}")
        if self.is_ground(node):
            return
        if node not in self._nodes:
            self._nodes[node] = len(self._nodes)

    @staticmethod
    def is_ground(node: str) -> bool:
        """True if ``node`` is one of the recognised ground spellings."""
        return node in GROUND_NAMES

    def fresh_node(self, hint: str = "n") -> str:
        """Return an unused internal node name (for macro builders)."""
        index = len(self._nodes)
        while True:
            candidate = f"_{hint}{index}"
            if candidate not in self._nodes and not self.is_ground(candidate):
                self._intern_node(candidate)
                return candidate
            index += 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def node_names(self) -> List[str]:
        """Names of all non-ground nodes, in numbering order."""
        return sorted(self._nodes, key=self._nodes.get)

    def node_index(self, node: str) -> int:
        """MNA index of a node (-1 for ground)."""
        if self.is_ground(node):
            return -1
        try:
            return self._nodes[node]
        except KeyError:
            raise CircuitError(f"unknown node {node!r}") from None

    def element(self, name: str):
        """Look up an element by name."""
        try:
            return self._names[name]
        except KeyError:
            raise CircuitError(f"unknown element {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._names

    def __len__(self) -> int:
        return len(self.elements)

    @property
    def num_nodes(self) -> int:
        """Number of non-ground nodes."""
        return len(self._nodes)

    @property
    def num_branches(self) -> int:
        """Number of extra branch-current unknowns."""
        return sum(e.num_currents for e in self.elements)

    @property
    def size(self) -> int:
        """Total MNA unknown count."""
        return self.num_nodes + self.num_branches

    # ------------------------------------------------------------------
    # Assembly
    # ------------------------------------------------------------------
    def assemble(self):
        """Freeze numbering and bind every element; returns an MnaSystem."""
        from repro.circuits.mna import MnaSystem

        offset = self.num_nodes
        for element in self.elements:
            node_idx = tuple(self.node_index(n) for n in element.nodes)
            element.bind(node_idx, offset)
            offset += element.num_currents
        return MnaSystem(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Circuit {self.title!r}: {len(self.elements)} elements, "
                f"{self.num_nodes} nodes, {self.num_branches} branches>")
