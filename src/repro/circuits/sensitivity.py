"""Component sensitivity analysis.

Finite-difference sensitivities of circuit responses with respect to
component values.  Two consumers in the reproduction:

* design: which Tow-Thomas component dominates the realized ``f0``
  (ties the paper's f0-deviation fault model to physical tolerances);
* test: the sensitivity of the NDF to each component, i.e. which
  manufacturing drift the signature test actually observes.

The perturbation is relative (default 0.1 %), two-sided, and restores
the original value afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List



@dataclass
class SensitivityRow:
    """Normalized sensitivity of one quantity to one component.

    ``normalized`` is the classical sensitivity
    ``S = (dQ / Q) / (dx / x)`` -- dimensionless, comparable across
    components.
    """

    component: str
    quantity: float
    derivative: float
    normalized: float


def relative_sensitivities(evaluate: Callable[[], float],
                           components: Dict[str, Callable[[float], None]],
                           values: Dict[str, float],
                           rel_step: float = 1e-3) -> List[SensitivityRow]:
    """Generic two-sided FD sensitivity driver.

    Parameters
    ----------
    evaluate:
        Zero-argument callable returning the quantity of interest for
        the *current* component values.
    components:
        Map from component name to a setter accepting the new value.
    values:
        Current value of each component (also used to restore).
    rel_step:
        Relative perturbation size.
    """
    baseline = float(evaluate())
    rows: List[SensitivityRow] = []
    for name, setter in components.items():
        x0 = values[name]
        h = abs(x0) * rel_step
        if h == 0.0:
            raise ValueError(f"component {name!r} has zero value")
        try:
            setter(x0 + h)
            plus = float(evaluate())
            setter(x0 - h)
            minus = float(evaluate())
        finally:
            setter(x0)
        derivative = (plus - minus) / (2.0 * h)
        if baseline != 0.0:
            normalized = derivative * x0 / baseline
        else:
            normalized = float("nan")
        rows.append(SensitivityRow(name, baseline, derivative, normalized))
    return rows


def towthomas_f0_sensitivities(values) -> List[SensitivityRow]:
    """Classical sensitivities of the realized f0 to each component.

    For the Tow-Thomas loop ``w0 = 1/sqrt(R3 R5 C1 C2)`` the analytic
    values are -1/2 for each of the four loop components and 0 for the
    rest; this function measures them through the generic driver (and
    the tests pin the analytic expectation).
    """
    from repro.filters.towthomas import TowThomasValues

    state = {name: getattr(values, name)
             for name in ("r1", "r2", "r3", "r4", "r5", "c1", "c2")}
    current = dict(state)

    def evaluate() -> float:
        tv = TowThomasValues(**current)
        return tv.realized_spec().f0_hz

    def setter_for(name: str):
        def setter(value: float) -> None:
            current[name] = value
        return setter

    return relative_sensitivities(
        evaluate, {name: setter_for(name) for name in state}, state)


def ndf_component_sensitivities(tester, values,
                                rel_step: float = 0.02) -> List[SensitivityRow]:
    """Sensitivity of the NDF to each Tow-Thomas component.

    Because NDF(golden) = 0 and NDF grows with |deviation|, the
    *one-sided* response is reported: NDF after a +rel_step component
    drift, divided by rel_step.  Components the signature cannot see
    (e.g. the inverter's matched R4) come out near zero.
    """
    from repro.filters.towthomas import TowThomasBiquad

    rows: List[SensitivityRow] = []
    for name in ("r1", "r2", "r3", "r4", "r5", "c1", "c2"):
        drifted = values.scaled(**{name: 1.0 + rel_step})
        cut = TowThomasBiquad(drifted)
        value = tester.ndf_of(cut)
        rows.append(SensitivityRow(name, 0.0, value / rel_step,
                                   value / rel_step))
    return rows
