"""MNA system assembly and linear-algebra helpers.

:class:`MnaSystem` is the bridge between a frozen :class:`Circuit` and
the analyses (:mod:`repro.circuits.dc`, :mod:`repro.circuits.transient`,
:mod:`repro.circuits.ac`).  It owns no mutable solver state -- it just
knows how to build stamped matrices for a given :class:`StampContext`
and how to solve them.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.circuits.components import StampContext
from repro.circuits.netlist import Circuit


class SingularCircuitError(Exception):
    """Raised when the MNA matrix is singular (floating node, V-loop...)."""


class MnaSystem:
    """Assembled view of a circuit, produced by :meth:`Circuit.assemble`."""

    def __init__(self, circuit: Circuit) -> None:
        self.circuit = circuit
        self.size = circuit.size
        self.num_nodes = circuit.num_nodes
        self.has_nonlinear = any(e.nonlinear for e in circuit.elements)

    # ------------------------------------------------------------------
    # Assembly
    # ------------------------------------------------------------------
    def build(self, ctx: StampContext) -> Tuple[np.ndarray, np.ndarray]:
        """Stamp every element into fresh A, z for the given context."""
        dtype = complex if ctx.mode == "ac" else float
        A = np.zeros((self.size, self.size), dtype=dtype)
        z = np.zeros(self.size, dtype=dtype)
        ctx.A = A
        ctx.z = z
        for element in self.circuit.elements:
            element.stamp(ctx)
        return A, z

    def make_context(self, mode: str, **kwargs) -> StampContext:
        """Context factory (matrices attached later by :meth:`build`)."""
        return StampContext(mode, None, None, **kwargs)

    # ------------------------------------------------------------------
    # Linear solve
    # ------------------------------------------------------------------
    @staticmethod
    def solve_linear(A: np.ndarray, z: np.ndarray) -> np.ndarray:
        """Dense solve with a clear error on singular systems."""
        try:
            x = np.linalg.solve(A, z)
        except np.linalg.LinAlgError as exc:
            raise SingularCircuitError(str(exc)) from exc
        if not np.all(np.isfinite(x)):
            raise SingularCircuitError("non-finite solution (singular matrix?)")
        return x

    @staticmethod
    def solve_linear_batch(A: np.ndarray, z: np.ndarray) -> np.ndarray:
        """Stacked dense solve: ``(M, n, n)`` matrices, ``(M, n)`` RHS.

        LAPACK factorizes each matrix of the batch with the same
        routine :meth:`solve_linear` uses, so per-system solutions are
        bit-identical to M sequential solves -- the batched AC/DC
        analyses rely on this.  Same singularity error contract as the
        single solve.
        """
        try:
            x = np.linalg.solve(A, z[..., None])[..., 0]
        except np.linalg.LinAlgError as exc:
            raise SingularCircuitError(str(exc)) from exc
        if not np.all(np.isfinite(x)):
            raise SingularCircuitError("non-finite solution (singular matrix?)")
        return x

    # ------------------------------------------------------------------
    # Residual (for verification and tests)
    # ------------------------------------------------------------------
    def residual(self, x: np.ndarray, t: float = 0.0,
                 x_prev: Optional[np.ndarray] = None, h: float = 0.0,
                 method: str = "trap", state: Optional[dict] = None,
                 mode: str = "dc") -> np.ndarray:
        """Exact KCL/branch residual ``A(x) x - z(x)`` at a solution.

        Because nonlinear elements stamp companion models linearized at
        ``x`` itself, ``A(x) x - z(x)`` evaluates the *true* nonlinear
        equations at ``x``: the linear and history terms cancel exactly.
        A converged solution must have a residual close to zero -- this
        is the KCL invariant checked by the property tests.
        """
        ctx = StampContext(mode, None, None, x=x, x_prev=x_prev, t=t, h=h,
                           method=method, state=dict(state or {}))
        A, z = self.build(ctx)
        return A @ x - z

    # ------------------------------------------------------------------
    # Convenience analysis entry points
    # ------------------------------------------------------------------
    def dc(self, **kwargs):
        """Shorthand for :func:`repro.circuits.dc.dc_operating_point`."""
        from repro.circuits.dc import dc_operating_point
        return dc_operating_point(self, **kwargs)

    def transient(self, tstop: float, dt: float, **kwargs):
        """Shorthand for :func:`repro.circuits.transient.transient`."""
        from repro.circuits.transient import transient
        return transient(self, tstop, dt, **kwargs)

    def ac(self, freqs, **kwargs):
        """Shorthand for :func:`repro.circuits.ac.ac_analysis`."""
        from repro.circuits.ac import ac_analysis
        return ac_analysis(self, freqs, **kwargs)

    # ------------------------------------------------------------------
    def node_voltage(self, x: np.ndarray, node: str):
        """Extract a node voltage from a solution vector."""
        idx = self.circuit.node_index(node)
        if idx < 0:
            return x.dtype.type(0.0) if hasattr(x, "dtype") else 0.0
        return x[idx]
