"""Small-signal noise analysis (SPICE ``.noise``).

Computes the output-referred noise spectral density of a linear(ized)
circuit by superposing the contributions of every physical noise
source:

* resistors: thermal noise, ``S_i = 4 k T / R`` (current source in
  parallel);
* MOSFETs: channel thermal noise, ``S_i = 4 k T gamma gm`` with
  ``gamma = 2/3`` (long-channel), a parallel drain-source current
  source evaluated at the DC operating point.

For each analysis frequency and each source, the transfer impedance
from the source's injection nodes to the output node is obtained by
solving the AC system with a unit current stamp -- the direct method
(one dense solve per source per frequency; fine at this circuit size).

Consumers: the monitor front-end noise floor (how much of the paper's
0.015 V measurement noise budget the monitor itself eats) and general
design work on the Biquad.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.circuits.components import Resistor, StampContext
from repro.circuits.mna import MnaSystem
from repro.circuits.mosfet import Mosfet

#: Boltzmann constant, J/K.
BOLTZMANN = 1.380649e-23

#: Long-channel thermal-noise factor for MOSFET channel noise.
MOS_GAMMA = 2.0 / 3.0


@dataclass
class NoiseContribution:
    """One source's share of the output noise at one frequency."""

    element: str
    density_v2_hz: float  # V^2/Hz at the output

    @property
    def rms_per_rt_hz(self) -> float:
        """V/sqrt(Hz) at the output."""
        return math.sqrt(self.density_v2_hz)


@dataclass
class NoiseResult:
    """Output noise across the analysis frequencies."""

    freqs: np.ndarray
    total_v2_hz: np.ndarray
    contributions: List[Dict[str, float]]  # per frequency {name: V^2/Hz}

    def total_rms_per_rt_hz(self) -> np.ndarray:
        """Output noise density in V/sqrt(Hz)."""
        return np.sqrt(self.total_v2_hz)

    def integrated_rms(self) -> float:
        """RMS noise integrated over the analysis band (trapezoidal)."""
        return float(np.sqrt(np.trapezoid(self.total_v2_hz, self.freqs)))

    def dominant_sources(self, index: int = 0,
                         count: int = 3) -> List[Tuple[str, float]]:
        """Largest contributors at frequency ``freqs[index]``."""
        items = sorted(self.contributions[index].items(),
                       key=lambda kv: kv[1], reverse=True)
        return items[:count]


def _unit_current_response(system: MnaSystem, omega: float,
                           x_op: Optional[np.ndarray],
                           a: int, b: int, out_idx: int) -> complex:
    """V(out) for a 1 A AC current injected from node a into node b."""
    ctx = StampContext("ac", None, None, x=x_op, omega=omega)
    A, z = system.build(ctx)
    # Silence every independent source (in AC mode only sources write
    # the RHS), then drive with the unit noise current (a -> b through
    # the source).
    z[:] = 0.0
    if a >= 0:
        z[a] -= 1.0
    if b >= 0:
        z[b] += 1.0
    x = system.solve_linear(A, z)
    if out_idx < 0:
        return 0.0 + 0.0j
    return complex(x[out_idx])


def noise_analysis(system: MnaSystem, output_node: str,
                   freqs: Sequence[float],
                   x_op: Optional[np.ndarray] = None,
                   temperature_k: float = 300.0) -> NoiseResult:
    """Output noise density at ``output_node`` across ``freqs``.

    Independent sources are silenced (zeroed RHS): only the unit
    noise-current stamps drive the solves, so netlists with AC signal
    drives can be analysed as-is.
    """
    freqs = np.asarray(list(freqs), dtype=float)
    if np.any(freqs <= 0):
        raise ValueError("noise frequencies must be positive")
    if x_op is None and system.has_nonlinear:
        from repro.circuits.dc import dc_operating_point
        x_op = dc_operating_point(system).x

    out_idx = system.circuit.node_index(output_node)
    four_kt = 4.0 * BOLTZMANN * temperature_k

    # Collect (element name, node pair, current PSD) noise sources.
    sources: List[Tuple[str, int, int, float]] = []
    for element in system.circuit.elements:
        if isinstance(element, Resistor):
            a, b = element._idx
            sources.append((element.name, a, b,
                            four_kt / element.resistance))
        elif isinstance(element, Mosfet):
            d, g, s = element._idx
            if x_op is None:
                raise ValueError("MOSFET noise needs an operating point")
            vg = 0.0 if g < 0 else float(x_op[g])
            vs = 0.0 if s < 0 else float(x_op[s])
            vd = 0.0 if d < 0 else float(x_op[d])
            e = 1e-6
            gm = (element.model.drain_current(vg - vs + e, vd - vs)
                  - element.model.drain_current(vg - vs - e, vd - vs)) \
                / (2.0 * e)
            sources.append((element.name, d, s,
                            four_kt * MOS_GAMMA * abs(gm)))

    totals = np.zeros(freqs.size)
    per_freq: List[Dict[str, float]] = []
    for k, f in enumerate(freqs):
        omega = 2.0 * math.pi * float(f)
        contribs: Dict[str, float] = {}
        for name, a, b, psd in sources:
            h = _unit_current_response(system, omega, x_op, a, b,
                                       out_idx)
            value = psd * abs(h) ** 2
            contribs[name] = contribs.get(name, 0.0) + value
        per_freq.append(contribs)
        totals[k] = sum(contribs.values())
    return NoiseResult(freqs, totals, per_freq)
