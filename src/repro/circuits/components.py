"""Primitive circuit elements and their MNA stamps.

Every element implements a single ``stamp(ctx)`` method; the
:class:`StampContext` tells it which analysis is being assembled
(``"dc"``, ``"tr"`` or ``"ac"``), carries the matrix/right-hand side
being built, the current Newton iterate, and -- for transient analysis
-- the previous solution, the timestep and the integration method.

Conventions
-----------
* Node voltages come first in the unknown vector, then branch currents.
  Ground rows/columns (index ``-1``) are silently dropped.
* For two-terminal elements the positive current flows from the first
  node to the second *through the element* (SPICE convention).  A
  :class:`CurrentSource` therefore *pulls* current out of its first
  node.
* Transient companions support backward Euler (``"be"``) and the
  trapezoidal rule (``"trap"``); per-element integration state (the
  previous branch current of a capacitor under TRAP, for instance)
  lives in ``ctx.state`` keyed by element, so elements stay reusable
  across analyses.
"""

from __future__ import annotations

import math
from typing import Callable, Optional, Sequence, Tuple, Union

import numpy as np

SourceValue = Union[float, int, Callable[[float], float]]


class StampContext:
    """Mutable assembly context handed to every element's ``stamp``.

    Attributes
    ----------
    mode:
        ``"dc"``, ``"tr"`` or ``"ac"``.
    A, z:
        The MNA matrix and right-hand side under construction (complex
        in AC mode).
    x:
        Current Newton iterate (DC/TR) or the operating point (AC).
    x_prev:
        Previous accepted transient solution (TR only).
    t, h:
        Current time and timestep (TR only).
    method:
        Integration method, ``"be"`` or ``"trap"`` (TR only).
    state:
        Per-element integration state dict (TR only).
    omega:
        Angular frequency (AC only).
    source_scale:
        Multiplier applied to every independent source -- used by the
        source-stepping homotopy in the DC solver.
    gmin:
        Conductance added from every node touched by a nonlinear device
        to ground, for the gmin-stepping homotopy.
    """

    def __init__(self, mode: str, A, z, x=None, x_prev=None,
                 t: float = 0.0, h: float = 0.0, method: str = "trap",
                 state: Optional[dict] = None, omega: float = 0.0,
                 source_scale: float = 1.0, gmin: float = 0.0) -> None:
        self.mode = mode
        self.A = A
        self.z = z
        self.x = x
        self.x_prev = x_prev
        self.t = t
        self.h = h
        self.method = method
        self.state = state if state is not None else {}
        self.omega = omega
        self.source_scale = source_scale
        self.gmin = gmin

    # -- matrix helpers -------------------------------------------------
    def add_A(self, i: int, j: int, value) -> None:
        """Accumulate into A, ignoring ground indices."""
        if i >= 0 and j >= 0:
            self.A[i, j] += value

    def add_z(self, i: int, value) -> None:
        """Accumulate into the RHS, ignoring ground indices."""
        if i >= 0:
            self.z[i] += value

    def stamp_conductance(self, a: int, b: int, g) -> None:
        """Standard two-terminal conductance stamp between nodes a, b."""
        self.add_A(a, a, g)
        self.add_A(b, b, g)
        self.add_A(a, b, -g)
        self.add_A(b, a, -g)

    def stamp_current(self, a: int, b: int, i) -> None:
        """Current ``i`` flowing a -> b through the element."""
        self.add_z(a, -i)
        self.add_z(b, i)

    # -- solution access ------------------------------------------------
    def voltage(self, idx: int) -> float:
        """Voltage of a node index in the current iterate (0 for ground)."""
        if idx < 0 or self.x is None:
            return 0.0
        return float(np.real(self.x[idx]))

    def voltage_prev(self, idx: int) -> float:
        """Voltage of a node index in the previous transient solution."""
        if idx < 0 or self.x_prev is None:
            return 0.0
        return float(self.x_prev[idx])

    def unknown_prev(self, idx: int) -> float:
        """Any previous unknown (node voltage or branch current)."""
        if idx < 0 or self.x_prev is None:
            return 0.0
        return float(self.x_prev[idx])


class Element:
    """Base class for all netlist elements."""

    #: Number of extra branch-current unknowns this element introduces.
    num_currents = 0
    #: True when the element requires Newton iteration.
    nonlinear = False

    def __init__(self, name: str, nodes: Sequence[str]) -> None:
        self.name = name
        self.nodes = tuple(nodes)
        self._idx: Tuple[int, ...] = ()
        self._branch = -1

    def bind(self, node_idx: Tuple[int, ...], branch_offset: int) -> None:
        """Called by :meth:`Circuit.assemble` to freeze index assignments."""
        self._idx = node_idx
        self._branch = branch_offset

    @property
    def branch_index(self) -> int:
        """Index of the first branch-current unknown (if any)."""
        return self._branch

    def stamp(self, ctx: StampContext) -> None:
        raise NotImplementedError

    def update_state(self, ctx: StampContext, x) -> None:
        """Hook called after an accepted transient step."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name} {self.nodes}>"


# ----------------------------------------------------------------------
# Source waveform helpers
# ----------------------------------------------------------------------

def dc_value(spec: SourceValue, t: float) -> float:
    """Evaluate a source spec (constant or callable) at time ``t``."""
    if callable(spec):
        return float(spec(t))
    return float(spec)


def sine(offset: float, amplitude: float, freq_hz: float,
         phase_deg: float = 0.0) -> Callable[[float], float]:
    """SPICE-like SIN() source function."""
    phase = math.radians(phase_deg)

    def wave(t: float) -> float:
        return offset + amplitude * math.sin(2.0 * math.pi * freq_hz * t + phase)

    return wave


def pulse(v1: float, v2: float, delay: float, rise: float, fall: float,
          width: float, period: float) -> Callable[[float], float]:
    """SPICE-like PULSE() source function."""
    if period <= 0:
        raise ValueError("pulse period must be positive")

    def wave(t: float) -> float:
        if t < delay:
            return v1
        tau = (t - delay) % period
        if tau < rise:
            return v1 + (v2 - v1) * (tau / rise if rise > 0 else 1.0)
        tau -= rise
        if tau < width:
            return v2
        tau -= width
        if tau < fall:
            return v2 + (v1 - v2) * (tau / fall if fall > 0 else 1.0)
        return v1

    return wave


def piecewise_linear(points: Sequence[Tuple[float, float]]) -> Callable[[float], float]:
    """SPICE-like PWL() source function from (time, value) pairs."""
    if len(points) < 1:
        raise ValueError("PWL needs at least one point")
    times = np.asarray([p[0] for p in points], dtype=float)
    values = np.asarray([p[1] for p in points], dtype=float)
    if np.any(np.diff(times) < 0):
        raise ValueError("PWL times must be non-decreasing")

    def wave(t: float) -> float:
        return float(np.interp(t, times, values))

    return wave


# ----------------------------------------------------------------------
# Linear passives
# ----------------------------------------------------------------------

class Resistor(Element):
    """Ideal linear resistor."""

    def __init__(self, name: str, a: str, b: str, resistance: float) -> None:
        super().__init__(name, (a, b))
        if resistance <= 0:
            raise ValueError(f"{name}: resistance must be positive")
        self.resistance = float(resistance)

    def stamp(self, ctx: StampContext) -> None:
        g = 1.0 / self.resistance
        a, b = self._idx
        ctx.stamp_conductance(a, b, g)

    def current(self, x, circuit) -> float:
        """Post-processing helper: current a -> b for a solution vector."""
        a, b = self._idx
        va = 0.0 if a < 0 else float(x[a])
        vb = 0.0 if b < 0 else float(x[b])
        return (va - vb) / self.resistance


class Capacitor(Element):
    """Linear capacitor (open in DC, companion model in transient)."""

    def __init__(self, name: str, a: str, b: str, capacitance: float,
                 ic: Optional[float] = None) -> None:
        super().__init__(name, (a, b))
        if capacitance <= 0:
            raise ValueError(f"{name}: capacitance must be positive")
        self.capacitance = float(capacitance)
        self.ic = ic

    def stamp(self, ctx: StampContext) -> None:
        a, b = self._idx
        c = self.capacitance
        if ctx.mode == "dc":
            return  # open circuit
        if ctx.mode == "ac":
            ctx.stamp_conductance(a, b, 1j * ctx.omega * c)
            return
        # Transient companion.
        v_prev = ctx.voltage_prev(a) - ctx.voltage_prev(b)
        if ctx.method == "be":
            geq = c / ctx.h
            ieq = -geq * v_prev          # i = geq * v + ieq
        else:  # trapezoidal
            geq = 2.0 * c / ctx.h
            i_prev = ctx.state.get(self, 0.0)
            ieq = -geq * v_prev - i_prev
        ctx.stamp_conductance(a, b, geq)
        ctx.stamp_current(a, b, ieq)

    def update_state(self, ctx: StampContext, x) -> None:
        if ctx.mode != "tr":
            return
        a, b = self._idx
        va = 0.0 if a < 0 else float(x[a])
        vb = 0.0 if b < 0 else float(x[b])
        v_now = va - vb
        v_prev = ctx.voltage_prev(a) - ctx.voltage_prev(b)
        c = self.capacitance
        if ctx.method == "be":
            i_now = c / ctx.h * (v_now - v_prev)
        else:
            i_prev = ctx.state.get(self, 0.0)
            i_now = 2.0 * c / ctx.h * (v_now - v_prev) - i_prev
        ctx.state[self] = i_now


class Inductor(Element):
    """Linear inductor (short in DC); adds one branch current."""

    num_currents = 1

    def __init__(self, name: str, a: str, b: str, inductance: float,
                 ic: Optional[float] = None) -> None:
        super().__init__(name, (a, b))
        if inductance <= 0:
            raise ValueError(f"{name}: inductance must be positive")
        self.inductance = float(inductance)
        self.ic = ic

    def stamp(self, ctx: StampContext) -> None:
        a, b = self._idx
        br = self._branch
        # KCL coupling: branch current leaves a, enters b.
        ctx.add_A(a, br, 1.0)
        ctx.add_A(b, br, -1.0)
        ell = self.inductance
        if ctx.mode == "dc":
            # v_a - v_b = 0
            ctx.add_A(br, a, 1.0)
            ctx.add_A(br, b, -1.0)
            return
        if ctx.mode == "ac":
            ctx.add_A(br, a, 1.0)
            ctx.add_A(br, b, -1.0)
            ctx.add_A(br, br, -1j * ctx.omega * ell)
            return
        i_prev = ctx.unknown_prev(br)
        v_prev = ctx.voltage_prev(a) - ctx.voltage_prev(b)
        if ctx.method == "be":
            # i_n = i_prev + (h/L) v_n
            ctx.add_A(br, br, 1.0)
            ctx.add_A(br, a, -ctx.h / ell)
            ctx.add_A(br, b, ctx.h / ell)
            ctx.add_z(br, i_prev)
        else:
            k = ctx.h / (2.0 * ell)
            ctx.add_A(br, br, 1.0)
            ctx.add_A(br, a, -k)
            ctx.add_A(br, b, k)
            ctx.add_z(br, i_prev + k * v_prev)


# ----------------------------------------------------------------------
# Independent sources
# ----------------------------------------------------------------------

class VoltageSource(Element):
    """Independent voltage source; ``dc`` may be a constant or ``f(t)``.

    ``ac`` sets the small-signal magnitude (and optional phase in
    degrees) used by AC analysis.
    """

    num_currents = 1

    def __init__(self, name: str, npos: str, nneg: str,
                 dc: SourceValue = 0.0, ac: float = 0.0,
                 ac_phase_deg: float = 0.0) -> None:
        super().__init__(name, (npos, nneg))
        self.dc = dc
        self.ac = float(ac)
        self.ac_phase_deg = float(ac_phase_deg)

    def value_at(self, t: float) -> float:
        """Instantaneous source value."""
        return dc_value(self.dc, t)

    def stamp(self, ctx: StampContext) -> None:
        a, b = self._idx
        br = self._branch
        ctx.add_A(a, br, 1.0)
        ctx.add_A(b, br, -1.0)
        ctx.add_A(br, a, 1.0)
        ctx.add_A(br, b, -1.0)
        if ctx.mode == "ac":
            phasor = self.ac * np.exp(1j * math.radians(self.ac_phase_deg))
            ctx.add_z(br, phasor)
        else:
            ctx.add_z(br, ctx.source_scale * self.value_at(ctx.t))

    def current(self, x) -> float:
        """Branch current for a solution vector (positive npos -> nneg)."""
        return float(np.real(x[self._branch]))


class CurrentSource(Element):
    """Independent current source; current flows npos -> nneg internally."""

    def __init__(self, name: str, npos: str, nneg: str,
                 dc: SourceValue = 0.0, ac: float = 0.0,
                 ac_phase_deg: float = 0.0) -> None:
        super().__init__(name, (npos, nneg))
        self.dc = dc
        self.ac = float(ac)
        self.ac_phase_deg = float(ac_phase_deg)

    def value_at(self, t: float) -> float:
        """Instantaneous source value."""
        return dc_value(self.dc, t)

    def stamp(self, ctx: StampContext) -> None:
        a, b = self._idx
        if ctx.mode == "ac":
            phasor = self.ac * np.exp(1j * math.radians(self.ac_phase_deg))
            ctx.stamp_current(a, b, phasor)
        else:
            ctx.stamp_current(a, b, ctx.source_scale * self.value_at(ctx.t))


# ----------------------------------------------------------------------
# Controlled sources
# ----------------------------------------------------------------------

class Vcvs(Element):
    """Voltage-controlled voltage source (SPICE "E").

    ``v(out+) - v(out-) = gain * (v(c+) - v(c-))``
    """

    num_currents = 1

    def __init__(self, name: str, out_pos: str, out_neg: str,
                 ctrl_pos: str, ctrl_neg: str, gain: float) -> None:
        super().__init__(name, (out_pos, out_neg, ctrl_pos, ctrl_neg))
        self.gain = float(gain)

    def stamp(self, ctx: StampContext) -> None:
        op, on, cp, cn = self._idx
        br = self._branch
        ctx.add_A(op, br, 1.0)
        ctx.add_A(on, br, -1.0)
        ctx.add_A(br, op, 1.0)
        ctx.add_A(br, on, -1.0)
        ctx.add_A(br, cp, -self.gain)
        ctx.add_A(br, cn, self.gain)


class Vccs(Element):
    """Voltage-controlled current source (SPICE "G").

    Current ``gm * (v(c+) - v(c-))`` flows out+ -> out- through the
    element.
    """

    def __init__(self, name: str, out_pos: str, out_neg: str,
                 ctrl_pos: str, ctrl_neg: str, gm: float) -> None:
        super().__init__(name, (out_pos, out_neg, ctrl_pos, ctrl_neg))
        self.gm = float(gm)

    def stamp(self, ctx: StampContext) -> None:
        op, on, cp, cn = self._idx
        g = self.gm
        ctx.add_A(op, cp, g)
        ctx.add_A(op, cn, -g)
        ctx.add_A(on, cp, -g)
        ctx.add_A(on, cn, g)


class Cccs(Element):
    """Current-controlled current source (SPICE "F").

    The controlling current is the branch current of ``ctrl_source`` (a
    :class:`VoltageSource` or any element with one branch unknown).
    """

    def __init__(self, name: str, out_pos: str, out_neg: str,
                 ctrl_source: Element, gain: float) -> None:
        super().__init__(name, (out_pos, out_neg))
        self.ctrl_source = ctrl_source
        self.gain = float(gain)

    def stamp(self, ctx: StampContext) -> None:
        op, on = self._idx
        cbr = self.ctrl_source.branch_index
        if cbr < 0:
            raise ValueError(f"{self.name}: controlling element has no branch")
        ctx.add_A(op, cbr, self.gain)
        ctx.add_A(on, cbr, -self.gain)


class Ccvs(Element):
    """Current-controlled voltage source (SPICE "H")."""

    num_currents = 1

    def __init__(self, name: str, out_pos: str, out_neg: str,
                 ctrl_source: Element, transresistance: float) -> None:
        super().__init__(name, (out_pos, out_neg))
        self.ctrl_source = ctrl_source
        self.transresistance = float(transresistance)

    def stamp(self, ctx: StampContext) -> None:
        op, on = self._idx
        br = self._branch
        cbr = self.ctrl_source.branch_index
        if cbr < 0:
            raise ValueError(f"{self.name}: controlling element has no branch")
        ctx.add_A(op, br, 1.0)
        ctx.add_A(on, br, -1.0)
        ctx.add_A(br, op, 1.0)
        ctx.add_A(br, on, -1.0)
        ctx.add_A(br, cbr, -self.transresistance)


class IdealOpAmp(Element):
    """Ideal (nullor) op-amp: enforces v(in+) = v(in-) via output current.

    The classic MNA nullor stamp: one branch current injected at the
    output node, one constraint row equating the inputs.  Useful for
    ideal active-RC prototypes; for finite-gain/pole behaviour use
    :func:`repro.circuits.opamp.add_single_pole_opamp`.
    """

    num_currents = 1

    def __init__(self, name: str, in_pos: str, in_neg: str, out: str) -> None:
        super().__init__(name, (in_pos, in_neg, out))

    def stamp(self, ctx: StampContext) -> None:
        ip, in_, out = self._idx
        br = self._branch
        ctx.add_A(out, br, 1.0)
        ctx.add_A(br, ip, 1.0)
        ctx.add_A(br, in_, -1.0)


# ----------------------------------------------------------------------
# Diode
# ----------------------------------------------------------------------

class Diode(Element):
    """Shockley diode with Newton companion model."""

    nonlinear = True

    def __init__(self, name: str, anode: str, cathode: str,
                 i_s: float = 1e-14, n: float = 1.0,
                 temperature_k: float = 300.0) -> None:
        super().__init__(name, (anode, cathode))
        self.i_s = float(i_s)
        self.n = float(n)
        self.vt = 0.02585 * temperature_k / 300.0

    def _iv(self, v: float) -> Tuple[float, float]:
        """Current and conductance at a junction voltage, overflow-safe."""
        nvt = self.n * self.vt
        arg = v / nvt
        if arg > 60.0:  # linearize beyond ~1.5 V to avoid overflow
            e = math.exp(60.0)
            i = self.i_s * (e * (1.0 + (arg - 60.0)) - 1.0)
            g = self.i_s * e / nvt
        else:
            e = math.exp(arg)
            i = self.i_s * (e - 1.0)
            g = self.i_s * e / nvt
        return i, max(g, 1e-15)

    def stamp(self, ctx: StampContext) -> None:
        a, b = self._idx
        v = ctx.voltage(a) - ctx.voltage(b)
        if ctx.mode == "ac":
            __, g = self._iv(v)
            ctx.stamp_conductance(a, b, g)
            return
        i, g = self._iv(v)
        ieq = i - g * v
        ctx.stamp_conductance(a, b, g)
        ctx.stamp_current(a, b, ieq)
        if ctx.gmin > 0.0:
            ctx.add_A(a, a, ctx.gmin)
            ctx.add_A(b, b, ctx.gmin)
