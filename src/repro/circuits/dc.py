"""DC operating-point solver: damped Newton with gmin/source stepping.

The solve strategy mirrors classic SPICE practice:

1. **Damped Newton-Raphson** from the given (or zero) initial guess,
   with per-iteration update clamping to keep exponential devices from
   overflowing.
2. If that fails, **gmin stepping**: a conductance to ground is added at
   every nonlinear-device node and relaxed from 1 mS to (effectively)
   zero in decades, re-solving at each rung.
3. If that also fails, **source stepping**: all independent sources are
   ramped from 0 % to 100 %, tracking the solution along the homotopy.

All the paper's circuits (Biquad, monitor comparator) converge in the
plain Newton stage; the fallbacks make the engine robust enough for the
wider component set exposed by the library.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.circuits.components import StampContext
from repro.circuits.mna import MnaSystem, SingularCircuitError


class ConvergenceError(Exception):
    """Raised when every DC strategy fails to converge."""


@dataclass
class NewtonOptions:
    """Tuning knobs for the Newton iteration."""

    max_iterations: int = 200
    abstol: float = 1e-9
    reltol: float = 1e-6
    max_step_volts: float = 0.5
    residual_tol: float = 1e-6


@dataclass
class DcSolution:
    """Result of a DC analysis."""

    x: np.ndarray
    iterations: int
    strategy: str

    def voltage(self, system: MnaSystem, node: str) -> float:
        """Node voltage by name."""
        return float(np.real(system.node_voltage(self.x, node)))


def _newton_loop(system: MnaSystem, x0: np.ndarray, t: float,
                 source_scale: float, gmin: float,
                 options: NewtonOptions) -> Optional[np.ndarray]:
    """One damped Newton solve; returns the solution or None."""
    x = x0.copy()
    for iteration in range(options.max_iterations):
        ctx = StampContext("dc", None, None, x=x, t=t,
                           source_scale=source_scale, gmin=gmin)
        try:
            A, z = system.build(ctx)
            x_new = system.solve_linear(A, z)
        except SingularCircuitError:
            return None
        if not system.has_nonlinear:
            return x_new  # linear circuits solve exactly in one shot
        dx = x_new - x
        # Clamp the node-voltage part of the update (branch currents are
        # left free: clamping them stalls stiff source branches).
        nv = system.num_nodes
        if nv:
            step = np.max(np.abs(dx[:nv]))
            if step > options.max_step_volts:
                dx *= options.max_step_volts / step
        x = x + dx
        converged = np.all(
            np.abs(dx) <= options.abstol + options.reltol * np.abs(x))
        if converged:
            residual = system.residual(x, t=t)
            # Ignore constraint rows scaling: use infinity norm.
            if np.max(np.abs(residual)) < max(options.residual_tol,
                                              options.residual_tol
                                              * float(np.max(np.abs(z)))):
                return x
    return None


def dc_solve_batch(systems, t: float = 0.0) -> np.ndarray:
    """One stacked DC solve of M same-topology *linear* systems.

    Linear circuits solve exactly in one shot (no Newton damping, no
    homotopy), so the whole stack factorizes through one batched
    ``np.linalg.solve`` -- LAPACK runs the same routine per matrix as a
    single solve, making the solutions bit-identical to
    ``[dc_operating_point(s).x for s in systems]``.  Returns the
    ``(M, size)`` solution stack.
    """
    systems = list(systems)
    if not systems:
        return np.empty((0, 0))
    if any(system.has_nonlinear for system in systems):
        raise ValueError("dc_solve_batch handles linear systems only; "
                         "nonlinear circuits need the Newton loop of "
                         "dc_operating_point")
    matrices = []
    rhs = []
    for system in systems:
        ctx = StampContext("dc", None, None,
                           x=np.zeros(system.size), t=t)
        A, z = system.build(ctx)
        matrices.append(A)
        rhs.append(z)
    return MnaSystem.solve_linear_batch(np.stack(matrices),
                                        np.stack(rhs))


def dc_operating_point(system: MnaSystem, t: float = 0.0,
                       x0: Optional[np.ndarray] = None,
                       options: Optional[NewtonOptions] = None) -> DcSolution:
    """Find the DC operating point of an assembled circuit.

    Parameters
    ----------
    system:
        The assembled :class:`MnaSystem`.
    t:
        Time at which time-varying sources are evaluated (default 0).
    x0:
        Optional initial guess (e.g. the previous transient solution).
    options:
        Newton tuning; defaults are adequate for all library circuits.

    Raises
    ------
    ConvergenceError
        If Newton, gmin stepping and source stepping all fail.
    """
    options = options or NewtonOptions()
    guess = x0.copy() if x0 is not None else np.zeros(system.size)

    x = _newton_loop(system, guess, t, 1.0, 0.0, options)
    if x is not None:
        return DcSolution(x, 0, "newton")

    # gmin stepping: relax a shunt conductance in decades.
    x_homotopy = guess
    for gmin in (1e-3, 1e-4, 1e-5, 1e-6, 1e-7, 1e-8, 1e-10, 1e-12, 0.0):
        x_next = _newton_loop(system, x_homotopy, t, 1.0, gmin, options)
        if x_next is None:
            break
        x_homotopy = x_next
        if gmin == 0.0:
            return DcSolution(x_homotopy, 0, "gmin-stepping")

    # Source stepping homotopy.
    x_homotopy = np.zeros(system.size)
    failed = False
    for scale in np.linspace(0.1, 1.0, 10):
        x_next = _newton_loop(system, x_homotopy, t, float(scale), 0.0,
                              options)
        if x_next is None:
            failed = True
            break
        x_homotopy = x_next
    if not failed:
        return DcSolution(x_homotopy, 0, "source-stepping")

    raise ConvergenceError(
        f"DC operating point did not converge for circuit "
        f"{system.circuit.title!r}")
