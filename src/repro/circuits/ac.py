"""Small-signal AC analysis.

Nonlinear elements are linearized at the DC operating point (computed on
demand), then the complex MNA system is solved at each requested
frequency.  Independent sources contribute their ``ac`` magnitude/phase;
their DC/transient value is irrelevant here.

The :class:`AcResult` exposes complex node phasors and convenience
magnitude/phase accessors, plus a :meth:`AcResult.transfer` helper that
is used throughout the tests to compare the structural Biquad netlist
against its analytic transfer function.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.circuits.components import StampContext
from repro.circuits.dc import dc_operating_point
from repro.circuits.mna import MnaSystem


@dataclass
class AcResult:
    """Result of an AC sweep."""

    freqs: np.ndarray
    phasors: np.ndarray  # shape (num_freqs, system size), complex
    system: MnaSystem

    def voltage(self, node: str) -> np.ndarray:
        """Complex phasor of a node across the sweep."""
        idx = self.system.circuit.node_index(node)
        if idx < 0:
            return np.zeros(len(self.freqs), dtype=complex)
        return self.phasors[:, idx].copy()

    def magnitude(self, node: str) -> np.ndarray:
        """|V(node)| across the sweep."""
        return np.abs(self.voltage(node))

    def magnitude_db(self, node: str) -> np.ndarray:
        """20 log10 |V(node)|."""
        return 20.0 * np.log10(np.maximum(self.magnitude(node), 1e-300))

    def phase_deg(self, node: str) -> np.ndarray:
        """Phase of V(node) in degrees."""
        return np.degrees(np.angle(self.voltage(node)))

    def transfer(self, out_node: str, in_node: str) -> np.ndarray:
        """Complex transfer function V(out)/V(in) across the sweep."""
        vin = self.voltage(in_node)
        if np.any(np.abs(vin) == 0.0):
            raise ZeroDivisionError(
                f"input node {in_node!r} has zero AC drive")
        return self.voltage(out_node) / vin


def ac_analysis(system: MnaSystem, freqs: Sequence[float],
                x_op: Optional[np.ndarray] = None) -> AcResult:
    """Run an AC sweep over ``freqs`` (hertz).

    Parameters
    ----------
    system:
        Assembled circuit; at least one source should declare an ``ac``
        magnitude.
    freqs:
        Iterable of analysis frequencies in hertz (must be positive).
    x_op:
        Optional precomputed operating point; computed via
        :func:`dc_operating_point` when omitted and the circuit has
        nonlinear elements.
    """
    freqs = np.asarray(list(freqs), dtype=float)
    if freqs.size == 0:
        raise ValueError("empty frequency list")
    if np.any(freqs <= 0):
        raise ValueError("AC frequencies must be positive")

    if x_op is None and system.has_nonlinear:
        x_op = dc_operating_point(system).x

    phasors = np.empty((freqs.size, system.size), dtype=complex)
    for k, f in enumerate(freqs):
        omega = 2.0 * np.pi * float(f)
        ctx = StampContext("ac", None, None, x=x_op, omega=omega)
        A, z = system.build(ctx)
        phasors[k] = system.solve_linear(A, z)
    return AcResult(freqs, phasors, system)


def logspace_frequencies(f_start: float, f_stop: float,
                         points_per_decade: int = 20) -> np.ndarray:
    """Logarithmically spaced frequency grid, SPICE ``DEC`` style."""
    if f_start <= 0 or f_stop <= f_start:
        raise ValueError("need 0 < f_start < f_stop")
    decades = np.log10(f_stop / f_start)
    count = max(2, int(np.ceil(decades * points_per_decade)) + 1)
    return np.logspace(np.log10(f_start), np.log10(f_stop), count)
