"""Small-signal AC analysis.

Nonlinear elements are linearized at the DC operating point (computed on
demand), then the complex MNA system is solved at each requested
frequency.  Independent sources contribute their ``ac`` magnitude/phase;
their DC/transient value is irrelevant here.

The assembly is split once per circuit into a frequency-independent
static part and an ``omega``-scaled reactive part
(:class:`AcStampPattern`), so a sweep stamps the element list twice
instead of once per frequency.  :func:`ac_analysis_batch` lifts the same
split over a whole stack of same-topology circuits -- one fault
dictionary's worth of Tow-Thomas variants, say -- and solves every
circuit of the stack per frequency with a single batched
``np.linalg.solve``.

The :class:`AcResult` exposes complex node phasors and convenience
magnitude/phase accessors, plus a :meth:`AcResult.transfer` helper that
is used throughout the tests to compare the structural Biquad netlist
against its analytic transfer function.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.circuits.components import StampContext
from repro.circuits.dc import dc_operating_point
from repro.circuits.mna import MnaSystem


@dataclass
class AcResult:
    """Result of an AC sweep."""

    freqs: np.ndarray
    phasors: np.ndarray  # shape (num_freqs, system size), complex
    system: MnaSystem

    def voltage(self, node: str) -> np.ndarray:
        """Complex phasor of a node across the sweep."""
        idx = self.system.circuit.node_index(node)
        if idx < 0:
            return np.zeros(len(self.freqs), dtype=complex)
        return self.phasors[:, idx].copy()

    def magnitude(self, node: str) -> np.ndarray:
        """|V(node)| across the sweep."""
        return np.abs(self.voltage(node))

    def magnitude_db(self, node: str) -> np.ndarray:
        """20 log10 |V(node)|."""
        return 20.0 * np.log10(np.maximum(self.magnitude(node), 1e-300))

    def phase_deg(self, node: str) -> np.ndarray:
        """Phase of V(node) in degrees."""
        return np.degrees(np.angle(self.voltage(node)))

    def transfer(self, out_node: str, in_node: str) -> np.ndarray:
        """Complex transfer function V(out)/V(in) across the sweep."""
        vin = self.voltage(in_node)
        if np.any(np.abs(vin) == 0.0):
            raise ZeroDivisionError(
                f"input node {in_node!r} has zero AC drive")
        return self.voltage(out_node) / vin


class AcStampPattern:
    """One circuit's AC stamp, split into static and reactive parts.

    The AC MNA matrix is affine in the angular frequency::

        A(omega) = A_static + omega * B

    where ``A_static`` collects every frequency-independent stamp
    (conductances, sources, controlled sources, op-amp constraints) and
    ``B`` the susceptance pattern (``j c`` per capacitor entry, ``-j L``
    per inductor branch).  Both are extracted by stamping the element
    list exactly twice -- at ``omega = 0`` and ``omega = 1`` -- so a
    sweep re-uses the pattern instead of rebuilding the system at every
    frequency, and a population of same-topology circuits can stack
    their patterns for batched solves.

    Bit-compatibility: every matrix entry accumulates its static (real)
    and reactive (imaginary) contributions on independent components,
    so ``matrix(omega)`` equals the interleaved per-frequency stamp bit
    for bit whenever at most one reactive element touches an entry --
    true for every circuit in this library.  (Two capacitors sharing an
    entry would sum as ``omega*(c1+c2)`` instead of
    ``omega*c1 + omega*c2``: an ulp-level difference at worst.)

    The RHS is frequency independent in AC (source phasors only), so it
    is captured once.
    """

    def __init__(self, system: MnaSystem,
                 x_op: Optional[np.ndarray] = None) -> None:
        if x_op is None and system.has_nonlinear:
            x_op = dc_operating_point(system).x
        self.system = system
        self.x_op = x_op
        static, z = system.build(
            StampContext("ac", None, None, x=x_op, omega=0.0))
        at_unit, __ = system.build(
            StampContext("ac", None, None, x=x_op, omega=1.0))
        self.static = static
        self.susceptance = at_unit - static
        self.z = z

    def matrix(self, omega: float) -> np.ndarray:
        """The complex MNA matrix at one angular frequency."""
        return self.static + omega * self.susceptance


def ac_analysis(system: MnaSystem, freqs: Sequence[float],
                x_op: Optional[np.ndarray] = None) -> AcResult:
    """Run an AC sweep over ``freqs`` (hertz).

    The frequency-independent MNA pattern is stamped once
    (:class:`AcStampPattern`); each sweep point only fills the
    ``omega``-scaled reactive entries and solves.

    Parameters
    ----------
    system:
        Assembled circuit; at least one source should declare an ``ac``
        magnitude.
    freqs:
        Iterable of analysis frequencies in hertz (must be positive).
    x_op:
        Optional precomputed operating point; computed via
        :func:`dc_operating_point` when omitted and the circuit has
        nonlinear elements.
    """
    freqs = np.asarray(list(freqs), dtype=float)
    if freqs.size == 0:
        raise ValueError("empty frequency list")
    if np.any(freqs <= 0):
        raise ValueError("AC frequencies must be positive")

    pattern = AcStampPattern(system, x_op)
    phasors = np.empty((freqs.size, system.size), dtype=complex)
    for k, f in enumerate(freqs):
        omega = 2.0 * np.pi * float(f)
        phasors[k] = system.solve_linear(pattern.matrix(omega), pattern.z)
    return AcResult(freqs, phasors, system)


# ----------------------------------------------------------------------
# Stacked (population-wide) AC analysis
# ----------------------------------------------------------------------
def systems_share_topology(a: MnaSystem, b: MnaSystem) -> bool:
    """True when two assembled systems stamp the same matrix pattern.

    Same unknown count, same element sequence (type, node indices,
    branch slot) -- component *values* are free to differ.  This is the
    precondition for stacking their AC patterns into one batched solve.
    """
    if a.size != b.size or a.num_nodes != b.num_nodes:
        return False
    ea, eb = a.circuit.elements, b.circuit.elements
    if len(ea) != len(eb):
        return False
    return all(type(x) is type(y)
               and x._idx == y._idx and x._branch == y._branch
               for x, y in zip(ea, eb))


@dataclass
class BatchAcResult:
    """AC sweep of M same-topology circuits: phasors ``(M, F, size)``."""

    freqs: np.ndarray
    phasors: np.ndarray
    system: MnaSystem  # topology representative (node-name lookups)

    def voltage(self, node: str) -> np.ndarray:
        """Complex phasors of a node: shape ``(M, num_freqs)``."""
        idx = self.system.circuit.node_index(node)
        if idx < 0:
            return np.zeros(self.phasors.shape[:2], dtype=complex)
        return self.phasors[:, :, idx].copy()

    def magnitude(self, node: str) -> np.ndarray:
        """|V(node)| per circuit and frequency."""
        return np.abs(self.voltage(node))

    def transfer(self, out_node: str, in_node: str) -> np.ndarray:
        """V(out)/V(in) per circuit and frequency, ``(M, F)`` complex."""
        vin = self.voltage(in_node)
        if np.any(np.abs(vin) == 0.0):
            raise ZeroDivisionError(
                f"input node {in_node!r} has zero AC drive")
        return self.voltage(out_node) / vin


def ac_analysis_batch(systems: Sequence[MnaSystem],
                      freqs: Sequence[float],
                      x_ops: Optional[Sequence[np.ndarray]] = None
                      ) -> BatchAcResult:
    """AC-sweep a whole stack of same-topology circuits at once.

    Each system's :class:`AcStampPattern` is stamped once (two passes
    over its element list); per frequency the stack solves through one
    batched ``np.linalg.solve`` over the ``(M, size, size)`` matrices
    instead of M sequential solves.  LAPACK factorizes each matrix of
    the batch with the same routine a single solve uses, so the phasors
    are bit-identical to ``[ac_analysis(s, freqs) for s in systems]``
    -- the fault-dictionary compilation relies on this.

    Raises ``ValueError`` when the systems do not share a topology and
    :class:`~repro.circuits.mna.SingularCircuitError` when any member
    of the stack is singular at some frequency.
    """
    systems = list(systems)
    if not systems:
        raise ValueError("empty system stack")
    freqs = np.asarray(list(freqs), dtype=float)
    if freqs.size == 0:
        raise ValueError("empty frequency list")
    if np.any(freqs <= 0):
        raise ValueError("AC frequencies must be positive")
    first = systems[0]
    for other in systems[1:]:
        if not systems_share_topology(first, other):
            raise ValueError(
                "batched AC analysis needs same-topology systems")
    if x_ops is None:
        x_ops = [None] * len(systems)
    patterns = [AcStampPattern(system, x_op)
                for system, x_op in zip(systems, x_ops)]
    static = np.stack([p.static for p in patterns])
    susceptance = np.stack([p.susceptance for p in patterns])
    z = np.stack([p.z for p in patterns])

    phasors = np.empty((len(systems), freqs.size, first.size),
                       dtype=complex)
    for k, f in enumerate(freqs):
        omega = 2.0 * np.pi * float(f)
        phasors[:, k, :] = MnaSystem.solve_linear_batch(
            static + omega * susceptance, z)
    return BatchAcResult(freqs, phasors, first)


def logspace_frequencies(f_start: float, f_stop: float,
                         points_per_decade: int = 20) -> np.ndarray:
    """Logarithmically spaced frequency grid, SPICE ``DEC`` style."""
    if f_start <= 0 or f_stop <= f_start:
        raise ValueError("need 0 < f_start < f_stop")
    decades = np.log10(f_stop / f_start)
    count = max(2, int(np.ceil(decades * points_per_decade)) + 1)
    return np.logspace(np.log10(f_start), np.log10(f_stop), count)


__all__ = [
    "AcResult",
    "AcStampPattern",
    "BatchAcResult",
    "ac_analysis",
    "ac_analysis_batch",
    "logspace_frequencies",
    "systems_share_topology",
]
