"""Command-line interface: regenerate the paper's artifacts from a shell.

::

    python -m repro info                    # bench summary
    python -m repro zonemap                 # Fig. 6 ASCII zone map
    python -m repro chronogram [--dev 0.1]  # Fig. 7 chronogram + NDF
    python -m repro sweep [--points 21]     # Fig. 8 NDF sweep
    python -m repro test --dev 0.08 [--tolerance 0.05]
                                            # one PASS/FAIL measurement
    python -m repro campaign --dies 500 [--executor pool] [--json]
                                            # batched fleet screening
    python -m repro campaign --dies 100000 --stream
                                            # bounded-memory streaming
    python -m repro campaign --dies 100000 --stream --checkpoint ck.npz
                                            # crash-safe streaming
                                            # (re-run resumes)
    python -m repro campaign --dies 20000 --shards 4
                                            # sharded subprocess
                                            # workers, merged
                                            # bit-identical
    python -m repro campaign --dies 200 --repeats 20
                                            # Section IV-C noise repeats
    python -m repro campaign --dies 500 --profile --trace-out t.json
                                            # per-stage profile +
                                            # Chrome/Perfetto trace
    python -m repro campaign --scenario faults --second-signature auto
                                            # two-channel screening
    python -m repro diagnose --per-fault 10 [--top-k 3] [--json]
                                            # fault-dictionary diagnosis
    python -m repro diagnose --second-signature auto
                                            # split ambiguity groups
    python -m repro diagnose --save dict.npz --per-fault 0
                                            # compile + persist only
    python -m repro serve --port 8765 [--rate 50]
                                            # screening-as-a-service
    python -m repro serve --store [--deadline 30 --max-queue 256]
                                            # crash-safe service (warm
                                            # artifacts persist)
    python -m repro client campaign --dies 50 --seed 7
                                            # talk to a running server

Every command runs on the calibrated bench of :mod:`repro.paper`; the
CLI is intentionally thin -- anything deeper should use the library
API.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np


def _non_negative_int(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError("must be non-negative")
    return value


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("must be positive")
    return value


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Analog Circuit Test Based on a "
                    "Digital Signature' (DATE 2010)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="bench configuration summary")

    sub.add_parser("zonemap", help="Fig. 6 zone map (ASCII)")

    chrono = sub.add_parser("chronogram",
                            help="Fig. 7 chronogram and NDF")
    chrono.add_argument("--dev", type=float, default=0.10,
                        help="relative f0 deviation (default 0.10)")

    sweep = sub.add_parser("sweep", help="Fig. 8 NDF-vs-deviation sweep")
    sweep.add_argument("--points", type=int, default=21,
                       help="sweep points between -20%% and +20%%")

    test = sub.add_parser("test", help="PASS/FAIL one deviated unit")
    test.add_argument("--dev", type=float, required=True,
                      help="relative f0 deviation of the unit")
    test.add_argument("--tolerance", type=float, default=0.05,
                      help="accepted |f0| tolerance (default 0.05)")

    campaign = sub.add_parser(
        "campaign", help="batched signature screening of a population")
    campaign.add_argument(
        "--scenario", default="mc",
        choices=["mc", "sweep", "grid", "faults", "monitor-mc",
                 "corners"],
        help="population kind (default: Monte Carlo dies)")
    campaign.add_argument("--dies", type=_non_negative_int, default=200,
                          help="population size for mc/monitor-mc "
                               "(default 200)")
    campaign.add_argument("--sigma", type=float, default=0.03,
                          help="1-sigma relative f0 spread (mc)")
    campaign.add_argument("--seed", type=int, default=0,
                          help="deterministic per-die seed root")
    campaign.add_argument("--tolerance", type=float, default=0.05,
                          help="ground-truth |f0| tolerance")
    campaign.add_argument("--samples", type=int, default=2048,
                          help="trace samples per period")
    campaign.add_argument("--executor", default="serial",
                          choices=["serial", "pool", "shm", "process"],
                          help="chunk scheduler: serial, process pool, "
                               "or shared-memory pool ('process' is a "
                               "legacy alias of 'pool')")
    campaign.add_argument("--workers", type=int, default=None,
                          help="pool size (with --executor pool/shm)")
    campaign.add_argument("--stream", action="store_true",
                          help="stream the population in bounded-"
                               "memory chunks (mc scenario)")
    campaign.add_argument("--chunk", type=_positive_int, default=1024,
                          help="streamed chunk size (with --stream)")
    campaign.add_argument("--checkpoint", metavar="PATH", default=None,
                          help="crash-safe streaming (with --stream): "
                               "persist partial fleet stats to PATH "
                               "and resume behind an existing "
                               "checkpoint, bit-identical to the "
                               "uninterrupted run")
    campaign.add_argument("--checkpoint-every", type=_positive_int,
                          default=1, metavar="N",
                          help="chunks between checkpoint saves "
                               "(default 1)")
    campaign.add_argument("--shards", type=_positive_int, default=None,
                          metavar="N",
                          help="split the campaign into N shards run "
                               "by subprocess workers and merge the "
                               "partial checkpoints bit-identical to "
                               "the monolithic run (mc/sweep/grid "
                               "scenarios)")
    campaign.add_argument("--shard-chunk", type=_positive_int,
                          default=None, metavar="C",
                          help="per-worker streamed chunk size (with "
                               "--shards; default: --chunk)")
    campaign.add_argument("--listen", metavar="HOST:PORT",
                          default=None,
                          help="with --shards: accept remote TCP "
                               "workers instead of spawning "
                               "subprocesses (start them with: repro "
                               "shard-worker --connect HOST:PORT); "
                               "port 0 binds an ephemeral port")
    campaign.add_argument("--shard-autotune", type=float,
                          default=None, metavar="SECONDS",
                          help="with --shards: carve shard sizes "
                               "from each worker's observed die "
                               "rate, targeting SECONDS per shard, "
                               "instead of the static equal split")
    campaign.add_argument("--repeats", type=_non_negative_int,
                          default=0,
                          help="noisy measurements per die (Section "
                               "IV-C campaign; mc scenario)")
    campaign.add_argument("--noise", type=float, default=None,
                          help="3-sigma noise spread in volts (with "
                               "--repeats; default: the paper's "
                               "0.015 V)")
    campaign.add_argument("--second-signature", metavar="CONFIG",
                          default=None,
                          help="screen through a second monitor bank "
                               "as well: 'auto' searches the bank "
                               "that best splits the fault "
                               "dictionary's ambiguity groups, or "
                               "give a candidate name like "
                               "'bias-0.10_level1e-05'")
    campaign.add_argument("--profile", action="store_true",
                          help="trace the run and print a per-stage "
                               "profile table (seconds per pipeline "
                               "stage; with --json, a 'profile' key)")
    campaign.add_argument("--trace-out", metavar="PATH", default=None,
                          help="write the run's spans as Chrome "
                               "trace_event JSON (load in "
                               "chrome://tracing or Perfetto; implies "
                               "tracing)")
    campaign.add_argument("--json", action="store_true",
                          help="emit a machine-readable JSON summary")

    # Real parsing happens in repro.shard.worker.worker_cli (main()
    # intercepts the subcommand before this tree); registered here so
    # `repro --help` lists it.
    sub.add_parser(
        "shard-worker",
        help="run a shard worker: stdin/stdout when spawned by a "
             "coordinator, or --connect HOST:PORT to dial a "
             "campaign listening with --listen (multi-node)",
        add_help=False)

    diagnose = sub.add_parser(
        "diagnose",
        help="fault-dictionary diagnosis of failing dies")
    diagnose.add_argument("--top-k", type=_positive_int, default=3,
                          help="fault candidates reported per die")
    diagnose.add_argument("--metric", default="ndf",
                          choices=["ndf", "dwell"],
                          help="die-to-fault distance (default: exact "
                               "NDF; dwell = zone-occupancy only)")
    diagnose.add_argument("--per-fault", type=_non_negative_int,
                          default=5,
                          help="Monte Carlo-perturbed dies injected "
                               "per fault (0: dictionary report only)")
    diagnose.add_argument("--sigma", type=float, default=0.02,
                          help="1-sigma relative component spread of "
                               "the perturbed fleet")
    diagnose.add_argument("--seed", type=int, default=0,
                          help="deterministic fleet seed root")
    diagnose.add_argument("--tolerance", type=float, default=0.05,
                          help="ground-truth |f0| tolerance of the "
                               "decision band")
    diagnose.add_argument("--samples", type=int, default=2048,
                          help="trace samples per period")
    diagnose.add_argument("--no-parametric", action="store_true",
                          help="compile opens/shorts only (skip the "
                               "parametric deviation classes)")
    diagnose.add_argument("--save", metavar="PATH", default=None,
                          help="persist the compiled dictionary as "
                               ".npz")
    diagnose.add_argument("--load", metavar="PATH", default=None,
                          help="load a saved dictionary instead of "
                               "compiling")
    diagnose.add_argument("--second-signature", metavar="CONFIG",
                          default=None,
                          help="add an adaptive second signature "
                               "channel: 'auto' searches the "
                               "candidate banks for the one that "
                               "best splits the ambiguity groups, or "
                               "give a candidate name like "
                               "'bias-0.10_level1e-05'; diagnosis "
                               "then combines both channels")
    diagnose.add_argument("--json", action="store_true",
                          help="emit a machine-readable JSON summary")

    serve = sub.add_parser(
        "serve",
        help="serve screening over HTTP (one warm session, request "
             "coalescing, /metrics)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8765,
                       help="bind port (default 8765; 0 = ephemeral)")
    serve.add_argument("--samples", type=int, default=2048,
                       help="trace samples per period")
    serve.add_argument("--tolerance", type=float, default=0.05,
                       help="decision-band |f0| tolerance")
    serve.add_argument("--rate", type=float, default=None,
                       help="per-client requests/second (default: "
                            "unlimited)")
    serve.add_argument("--burst", type=float, default=None,
                       help="per-client burst depth (default: rate)")
    serve.add_argument("--window-ms", type=float, default=5.0,
                       help="coalescing linger window in milliseconds "
                            "(default 5)")
    serve.add_argument("--max-dies", type=_positive_int,
                       default=100_000,
                       help="die cap per coalesced engine pass")
    serve.add_argument("--no-warm", action="store_true",
                       help="skip pre-deriving golden/band/dictionary "
                            "(first requests then pay the compile)")
    serve.add_argument("--store", nargs="?", const=True, default=None,
                       metavar="PATH",
                       help="persist warm artifacts on disk so a "
                            "restart skips the re-derive (bare "
                            "--store uses $REPRO_STORE or "
                            "~/.repro/store)")
    serve.add_argument("--deadline", type=float, default=None,
                       metavar="SECONDS",
                       help="per-request deadline; a screening "
                            "request past it answers 504 (default: "
                            "none)")
    serve.add_argument("--max-queue", type=_positive_int, default=None,
                       metavar="N",
                       help="bound on queued screening requests; "
                            "past it the server sheds load with 503 "
                            "+ Retry-After (default: unbounded)")
    serve.add_argument("--drain-timeout", type=float, default=30.0,
                       metavar="SECONDS",
                       help="how long SIGTERM/^C waits for in-flight "
                            "requests before exiting (default 30)")
    serve.add_argument("--trace", nargs="?", const=True, default=None,
                       metavar="PATH",
                       help="record server-side tracing spans (every "
                            "span carries the client's request id); "
                            "give a PATH to write them as Chrome "
                            "trace JSON on shutdown")

    client = sub.add_parser(
        "client",
        help="query a running screening service")
    client.add_argument("endpoint",
                        choices=["campaign", "diagnose", "healthz",
                                 "metrics"],
                        help="service endpoint to call")
    client.add_argument("--url", default="http://127.0.0.1:8765",
                        help="service base URL")
    client.add_argument("--id", default="cli",
                        help="client identity (X-Client header)")
    client.add_argument("--dies", type=_non_negative_int, default=50,
                        help="Monte Carlo lot size (campaign/diagnose)")
    client.add_argument("--sigma", type=float, default=0.03,
                        help="1-sigma relative f0 spread")
    client.add_argument("--seed", type=int, default=0,
                        help="deterministic per-die seed root")
    client.add_argument("--top-k", type=_positive_int, default=3,
                        help="fault candidates per die (diagnose)")
    client.add_argument("--timeout", type=float, default=120.0,
                        help="request timeout in seconds")
    client.add_argument("--retries", type=_non_negative_int, default=0,
                        help="transient-failure retries with backoff "
                             "(default 0 = fail fast); every attempt "
                             "replays the same request id and "
                             "idempotency key")
    return parser


def _cmd_info(setup) -> int:
    from repro.paper import FIG6_ZONE_CODES, FIG7_NDF_10PCT

    stim = setup.stimulus
    print("bench: 'Analog Circuit Test Based on a Digital Signature'")
    print(f"  stimulus: {stim!r}")
    print(f"  period:   {stim.period() * 1e6:.0f} us")
    print(f"  golden:   f0 = {setup.golden_spec.f0_hz / 1e3:.1f} kHz, "
          f"Q = {setup.golden_spec.q}, G = {setup.golden_spec.gain}")
    print(f"  monitors: {setup.encoder.num_bits} (Table I curves, "
          f"MSB = curve 1)")
    print(f"  Fig. 6 zone codes: {sorted(FIG6_ZONE_CODES)}")
    print(f"  paper NDF(+10 %): {FIG7_NDF_10PCT}")
    return 0


def _cmd_zonemap(setup) -> int:
    print(setup.encoder.ascii_zone_map(width=64, height=24))
    census = setup.encoder.zone_census(grid=128)
    print("\nrealized zones:", " ".join(str(c) for c in sorted(census)))
    return 0


def _cmd_chronogram(setup, deviation: float) -> int:
    from repro.analysis import ascii_chronogram, build_chronogram

    golden = setup.tester.golden_signature()
    observed = setup.tester.signature_of(setup.deviated_filter(deviation))
    data = build_chronogram(observed, golden)
    print(ascii_chronogram(data, width=100, height=14))
    print(f"\nNDF({deviation:+.0%} f0) = {data.ndf:.4f}"
          + ("   (paper: 0.1021)" if abs(deviation - 0.10) < 1e-9
             else ""))
    return 0


def _cmd_sweep(setup, points: int) -> int:
    from repro.analysis import ascii_xy_plot

    calibration = setup.fig8_sweep(np.linspace(-0.20, 0.20, points))
    print(ascii_xy_plot(calibration.deviations, calibration.ndfs,
                        width=72, height=18, x_label="f0 deviation",
                        y_label="NDF"))
    r2 = calibration.linearity_r2()
    print(f"linearity R^2: {r2[0]:.3f} / {r2[1]:.3f}; "
          f"symmetry error {calibration.symmetry_error():.4f}")
    return 0


def _cmd_test(setup, deviation: float, tolerance: float) -> int:
    band = setup.fig8_sweep(
        np.linspace(-2 * tolerance, 2 * tolerance, 9)
    ).band_for_tolerance(tolerance)
    result = setup.test_deviation(deviation, band)
    print(f"unit f0 {deviation:+.1%} vs tolerance +-{tolerance:.0%}: "
          f"{result.verdict}")
    return 0 if result.verdict.passed == (abs(deviation) <= tolerance) \
        else 1


def _campaign_population(setup, args):
    """Population selected on the command line, plus the aligned fault
    list for the faults scenario (None otherwise) -- reports name
    failing dies by fault, not by index."""
    from repro.campaign import (
        deviation_sweep_population,
        fault_dictionary,
        montecarlo_dies,
        montecarlo_monitor_banks,
        parameter_grid,
        temperature_corners,
    )

    if args.scenario == "mc":
        return montecarlo_dies(setup.golden_spec, args.dies,
                               sigma_f0=args.sigma,
                               seed=args.seed), None
    if args.scenario == "sweep":
        return deviation_sweep_population(
            setup.golden_spec, np.linspace(-0.20, 0.20, 21)), None
    if args.scenario == "grid":
        axis = np.linspace(-0.15, 0.15, 7)
        return parameter_grid(setup.golden_spec, axis, axis), None
    if args.scenario == "faults":
        from repro.filters.towthomas import TowThomasValues

        population, faults = fault_dictionary(
            TowThomasValues.from_spec(setup.golden_spec))
        return population, faults
    if args.scenario == "monitor-mc":
        from repro.devices.process import MonteCarloSampler
        from repro.monitor.configurations import table1_bank

        return montecarlo_monitor_banks(
            table1_bank(), args.dies,
            sampler=MonteCarloSampler(rng=args.seed)), None
    if args.scenario == "corners":
        from repro.devices.temperature import industrial_range

        return temperature_corners(industrial_range(5)), None
    raise AssertionError("unreachable")


def _second_bank(engine, spec):
    """(name, encoder) of the requested second signature bank.

    ``auto`` compiles the engine's fault dictionary and searches the
    candidate family for the bank that best splits its ambiguity
    groups; any other value is a candidate name pinned verbatim
    (e.g. ``bias-0.10_level1e-05``).
    """
    from repro.monitor.second_signature import candidate_by_name

    if spec != "auto":
        candidate = candidate_by_name(spec)
        return candidate.name, candidate.encoder
    from repro.diagnosis import (
        compile_fault_dictionary,
        search_second_signature,
    )

    dictionary = compile_fault_dictionary(engine)
    search = search_second_signature(engine, dictionary)
    if search.best is None:
        raise ValueError("no candidate bank splits any ambiguity "
                         "group for this configuration")
    return search.best.name, search.best.encoder


def _shard_fleet(setup, args):
    """Shardable fleet description for ``campaign --shards``.

    The mc scenario ships a seed recipe (workers regenerate their die
    ranges from the global spawn keys); sweep/grid materialize the
    (small) population once and ship slices.
    """
    from repro.shard import MonteCarloFleet, as_fleet

    chunk = args.shard_chunk if args.shard_chunk is not None \
        else args.chunk
    if args.scenario == "mc":
        return MonteCarloFleet(setup.golden_spec, args.dies,
                               sigma_f0=args.sigma, seed=args.seed,
                               chunk_size=chunk)
    population, __ = _campaign_population(setup, args)
    return as_fleet(population, chunk_size=chunk)


def _campaign_executor(args):
    """Executor selected on the command line (None = serial)."""
    from repro.campaign import ProcessPoolExecutor, SharedMemoryExecutor

    if args.executor in ("pool", "process"):
        return ProcessPoolExecutor(max_workers=args.workers)
    if args.executor == "shm":
        return SharedMemoryExecutor(max_workers=args.workers)
    return None


def _campaign_tracer(args):
    """An installed tracer when --profile/--trace-out ask for one."""
    if not (args.profile or args.trace_out):
        return None
    from repro.obs import Tracer, install_tracer

    tracer = Tracer()
    install_tracer(tracer)
    return tracer


def _profile_outputs(args, tracer):
    """(profile dict, written trace path) for a traced campaign."""
    from repro.obs import stage_profile

    profile = stage_profile(tracer)
    trace_path = (tracer.write_chrome_trace(args.trace_out)
                  if args.trace_out else None)
    return profile, trace_path


def _print_profile(profile, timing, trace_path) -> None:
    from repro.obs import render_profile

    print()
    print(render_profile(profile, timing))
    if trace_path is not None:
        print(f"trace: {trace_path} "
              f"(load in chrome://tracing or ui.perfetto.dev)")


def _cmd_campaign(setup, args) -> int:
    from repro.campaign import stream_montecarlo_dies

    if (args.stream or args.repeats) and args.scenario != "mc":
        print("--stream/--repeats require the mc scenario",
              file=sys.stderr)
        return 2
    if args.stream and args.repeats:
        print("--stream and --repeats are mutually exclusive",
              file=sys.stderr)
        return 2
    if args.noise is not None and not args.repeats:
        print("--noise only applies to a noise campaign; add "
              "--repeats N", file=sys.stderr)
        return 2
    if args.checkpoint is not None and not args.stream:
        print("--checkpoint requires --stream (checkpointing applies "
              "to streamed campaigns)", file=sys.stderr)
        return 2
    if args.second_signature is not None and args.repeats:
        print("noise campaigns are single-channel; drop "
              "--second-signature or --repeats", file=sys.stderr)
        return 2
    if args.second_signature is not None \
            and args.scenario in ("monitor-mc", "corners"):
        print("--second-signature needs a CUT population (the "
              "monitor-mc/corners scenarios vary the primary bank "
              "itself)", file=sys.stderr)
        return 2
    if args.shard_chunk is not None and args.shards is None:
        print("--shard-chunk only applies to a sharded campaign; add "
              "--shards N", file=sys.stderr)
        return 2
    if args.listen is not None and args.shards is None:
        print("--listen only applies to a sharded campaign; add "
              "--shards N", file=sys.stderr)
        return 2
    if args.shard_autotune is not None and args.shards is None:
        print("--shard-autotune only applies to a sharded campaign; "
              "add --shards N", file=sys.stderr)
        return 2
    if args.listen is not None:
        from repro.shard.transport import parse_endpoint
        try:
            parse_endpoint(args.listen)
        except ValueError as error:
            print(f"--listen: {error}", file=sys.stderr)
            return 2
    if args.shards is not None:
        if args.stream or args.repeats:
            print("--shards runs its own checkpointed streams; drop "
                  "--stream/--repeats", file=sys.stderr)
            return 2
        if args.second_signature is not None:
            print("sharded campaigns are single-channel; drop "
                  "--second-signature", file=sys.stderr)
            return 2
        if args.scenario not in ("mc", "sweep", "grid"):
            print("--shards needs a streaming-capable population "
                  "(mc, sweep or grid)", file=sys.stderr)
            return 2
        if args.executor != "serial":
            print("--shards schedules its own worker processes; "
                  "drop --executor (each worker screens serially)",
                  file=sys.stderr)
            return 2
    executor = _campaign_executor(args)
    engine = setup.campaign_engine(samples_per_period=args.samples,
                                   tolerance=args.tolerance,
                                   executor=executor)
    tracer = None
    faults = None
    second_name = None
    encoders = None
    try:
        if args.second_signature is not None:
            try:
                second_name, second = _second_bank(
                    engine, args.second_signature)
            except ValueError as error:
                print(f"--second-signature: {error}", file=sys.stderr)
                return 2
            encoders = [engine.config.encoder, second]
        if args.profile or args.trace_out:
            # Warm the golden/calibration outside the trace window so
            # the profile covers the screening run itself -- stage
            # span durations then agree with result.timing.
            engine.golden()
            engine.band()
            tracer = _campaign_tracer(args)
        if args.shards is not None:
            if args.listen is not None:
                print(f"listening for shard workers on "
                      f"{args.listen} (start them with: repro "
                      f"shard-worker --connect {args.listen})",
                      file=sys.stderr)
            result = engine.run_sharded(_shard_fleet(setup, args),
                                        shards=args.shards,
                                        band="auto",
                                        workers=args.workers,
                                        listen=args.listen,
                                        autotune_s=args.shard_autotune)
        elif args.repeats:
            population, __ = _campaign_population(setup, args)
            result = engine.run_noise(population,
                                      repeats=args.repeats,
                                      noise=args.noise,
                                      seed=args.seed, band="auto")
            return _report_noise_campaign(args, result, tracer)
        elif args.stream:
            chunks = stream_montecarlo_dies(
                setup.golden_spec, args.dies, chunk_size=args.chunk,
                sigma_f0=args.sigma, seed=args.seed)
            result = engine.run_stream(
                chunks, band="auto", encoders=encoders,
                checkpoint=args.checkpoint,
                checkpoint_every=args.checkpoint_every)
        else:
            population, faults = _campaign_population(setup, args)
            result = engine.run(population, band="auto",
                                encoders=encoders)
    finally:
        if tracer is not None:
            from repro.obs import uninstall_tracer

            uninstall_tracer()
        if executor is not None:
            executor.shutdown()
    profile = trace_path = None
    if tracer is not None:
        profile, trace_path = _profile_outputs(args, tracer)
    if args.json:
        import json

        payload = {
            "scenario": args.scenario,
            "dies": result.num_dies,
            "threshold": result.threshold,
            "pass": result.pass_count,
            "fail": result.fail_count,
            "ndf_mean": (float(np.mean(result.ndfs))
                         if result.num_dies else None),
            "ndf_p95": (result.ndf_percentile(95)
                        if result.num_dies else None),
            "timing": result.timing,
            "executor": result.executor,
        }
        if profile is not None:
            payload["profile"] = profile
        if trace_path is not None:
            payload["trace"] = trace_path
        if result.shard_stats is not None:
            payload["shards"] = result.shard_stats
        if result.channel_ndfs is not None:
            payload["second_signature"] = second_name
            payload["channels"] = [
                {"threshold": float(result.channel_thresholds[k]),
                 "fail": int(np.count_nonzero(
                     ~result.channel_verdicts[:, k]))}
                for k in range(result.num_channels)]
            payload["combined_fail"] = result.combined_fail_count
        if faults is not None:
            detected = set(result.failing_labels())
            payload["faults"] = [
                {"label": fault.label, "kind": fault.kind.value,
                 "target": fault.target,
                 "detected": fault.label in detected}
                for fault in faults]
            payload["fault_escapes"] = [
                fault.label for fault in faults
                if fault.label not in detected]
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(f"campaign: {args.scenario} "
              f"({result.num_dies} dies, band ±{args.tolerance:.0%})")
        if second_name is not None:
            print(f"second bank: {second_name}")
        print(result.summary())
        if result.shard_stats is not None:
            stats = result.shard_stats
            print(f"shards:      {int(stats['planned'])} over "
                  f"{int(stats['workers'])} workers, "
                  f"{int(stats['reassigned'])} reassigned, merge "
                  f"{stats['merge_seconds'] * 1e3:.1f} ms")
        if faults is not None:
            detected = result.failing_labels()
            escaped = [label for label in result.labels
                       if label not in set(detected)]
            print(f"detected:    {', '.join(detected) or '(none)'}")
            if escaped:
                print(f"escapes:     {', '.join(escaped)}")
        if profile is not None:
            _print_profile(profile, result.timing, trace_path)
    return 0


def _report_noise_campaign(args, result, tracer=None) -> int:
    """Print a noise-campaign result (JSON or human-readable)."""
    profile = trace_path = None
    if tracer is not None:
        profile, trace_path = _profile_outputs(args, tracer)
    if args.json:
        import json

        rates = result.detection_rates()
        payload = {
            "scenario": "mc+noise",
            "dies": result.num_dies,
            "repeats": result.repeats,
            "threshold": result.threshold,
            "detection_rate_mean": (float(np.mean(rates))
                                    if result.num_dies else None),
            "ndf_mean": (float(np.mean(result.ndf_matrix))
                         if result.ndf_matrix.size else None),
            "timing": result.timing,
            "executor": result.executor,
        }
        if profile is not None:
            payload["profile"] = profile
        if trace_path is not None:
            payload["trace"] = trace_path
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(f"noise campaign: mc ({result.num_dies} dies x "
              f"{result.repeats} repeats, band ±{args.tolerance:.0%})")
        print(result.summary())
        if profile is not None:
            _print_profile(profile, result.timing, trace_path)
    return 0


def _cmd_diagnose(setup, args) -> int:
    """Compile/load a fault dictionary and diagnose a faulty fleet."""
    import json

    from repro.diagnosis import (
        FaultDictionary,
        ambiguity_groups,
        compile_fault_dictionary,
        confusion_study,
        default_fault_universe,
        detectability_report,
        fault_distance_matrix,
        json_number,
    )

    if args.load is not None and args.save is not None:
        print("--load and --save are mutually exclusive (--save "
              "persists a freshly compiled dictionary)",
              file=sys.stderr)
        return 2
    if args.load is not None and args.no_parametric:
        print("--no-parametric shapes compilation; it cannot filter "
              "a loaded dictionary", file=sys.stderr)
        return 2
    engine = setup.campaign_engine(samples_per_period=args.samples,
                                   tolerance=args.tolerance)
    if args.load is not None:
        dictionary = FaultDictionary.load(args.load)
        if dictionary.golden_signature != engine.golden().signature:
            print(f"{args.load}: dictionary was compiled for a "
                  f"different bench configuration (golden signature "
                  f"mismatch); recompile with matching --samples",
                  file=sys.stderr)
            return 2
        # The saved threshold documents the compile-time band; the
        # CLI's --tolerance always wins for this run.
        dictionary.threshold = engine.band().threshold
    else:
        dictionary = compile_fault_dictionary(
            engine,
            faults=default_fault_universe(
                parametric=not args.no_parametric))
    saved_path = None
    if args.save is not None:
        saved_path = dictionary.save(args.save)
    coverage = detectability_report(dictionary)
    matrix = fault_distance_matrix(dictionary, metric=args.metric)
    groups = ambiguity_groups(dictionary, matrix=matrix)
    search = None
    second_encoders = None
    if args.second_signature is not None:
        from repro.diagnosis import search_second_signature
        from repro.monitor.second_signature import candidate_by_name

        try:
            candidates = None if args.second_signature == "auto" \
                else [candidate_by_name(args.second_signature)]
        except ValueError as error:
            print(f"--second-signature: {error}", file=sys.stderr)
            return 2
        search = search_second_signature(engine, dictionary,
                                         candidates)
        if search.best is not None:
            second_encoders = search.encoders
        elif candidates is not None:
            # A pinned bank is honoured even when it splits nothing
            # (the user asked for that exact configuration); only
            # "auto" degrades to the single-channel report.
            second_encoders = [engine.config.encoder,
                               candidates[0].encoder]
    study = None
    multi_study = None
    if args.per_fault:
        study = confusion_study(engine, dictionary,
                                per_fault=args.per_fault,
                                sigma=args.sigma, seed=args.seed,
                                metric=args.metric, top_k=args.top_k)
        if second_encoders is not None:
            from repro.diagnosis import compile_multi_fault_dictionary

            multi = compile_multi_fault_dictionary(
                engine, second_encoders, faults=dictionary.faults)
            multi_study = confusion_study(
                engine, multi, per_fault=args.per_fault,
                sigma=args.sigma, seed=args.seed,
                metric=args.metric, top_k=args.top_k)
    if args.json:
        payload = {
            "faults": dictionary.labels,
            "threshold": dictionary.threshold,
            "ndfs": dictionary.ndfs.tolist(),
            "coverage": coverage.coverage,
            "escapes": coverage.escapes,
            "ambiguity_groups": [
                [dictionary.labels[i] for i in group]
                for group in groups if len(group) > 1],
            "metric": args.metric,
        }
        if saved_path is not None:
            payload["saved"] = saved_path
        if study is not None:
            payload["confusion"] = study.to_payload()
            payload["accuracy"] = json_number(study.accuracy)
            payload["group_accuracy"] = json_number(
                study.group_accuracy(groups))
            payload["diagnosis"] = study.diagnosis.to_payload()
        if search is not None:
            payload["second_signature"] = {
                "chosen": (search.best.name if search.best is not None
                           else None),
                "candidates": len(search.scores),
                "resolved_groups": search.resolved_groups,
                "partial_groups": search.partial_groups,
                "invisible_groups": search.invisible_groups,
                "unresolved_groups": search.unresolved_groups,
                "timing": search.timing,
            }
            if multi_study is not None:
                payload["second_signature"]["accuracy"] = json_number(
                    multi_study.accuracy)
                payload["second_signature"]["group_accuracy"] = \
                    json_number(multi_study.group_accuracy(groups))
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(f"fault dictionary: {len(dictionary)} faults, "
          f"band ±{args.tolerance:.0%} "
          f"(threshold {dictionary.threshold:.4f})")
    print(coverage.summary())
    ambiguous = [group for group in groups if len(group) > 1]
    if ambiguous:
        print("ambiguity:   " + "; ".join(
            "{" + ", ".join(dictionary.labels[i] for i in group) + "}"
            for group in ambiguous))
    if saved_path is not None:
        print(f"saved:       {saved_path}")
    if search is not None:
        print()
        print(search.summary())
    if study is not None:
        print()
        print(study.summary())
        print(f"group top-1: {study.group_accuracy(groups):.1%} "
              f"(ambiguity-group aware)")
        if multi_study is not None:
            print(f"with 2nd signature: top-1 "
                  f"{multi_study.accuracy:.1%} (was "
                  f"{study.accuracy:.1%}), group top-1 "
                  f"{multi_study.group_accuracy(groups):.1%}")
        print()
        report = multi_study if multi_study is not None else study
        print(report.diagnosis.summary(max_rows=8))
    return 0


def _cmd_serve(args) -> int:
    """Run the screening service in the foreground until ^C/SIGTERM.

    Both signals drain gracefully: new screening requests get 503
    while everything already in flight finishes (bounded by
    ``--drain-timeout``), then the process exits.
    """
    import signal
    import threading

    from repro.obs import Tracer, install_tracer, set_log_sink
    from repro.service import ScreeningSession, build_server

    # Structured JSON access/event logs to stderr (stdout stays the
    # human status channel); each line carries the request id.
    set_log_sink(sys.stderr)
    tracer = None
    if args.trace is not None:
        tracer = Tracer()
        install_tracer(tracer)
    session = ScreeningSession.from_paper(
        samples_per_period=args.samples, tolerance=args.tolerance,
        store=args.store)
    server = build_server(host=args.host, port=args.port,
                          rate=args.rate, burst=args.burst,
                          window=args.window_ms / 1e3,
                          max_dies=args.max_dies, session=session,
                          deadline=args.deadline,
                          max_queue=args.max_queue)
    if not args.no_warm:
        print("warming session (golden, band, fault dictionary)...",
              flush=True)
        server.warm()
        info = session.store_info
        if info is not None:
            print(f"store: {session.store.root}  "
                  f"({info.hits} hits / {info.misses} misses on warm)",
                  flush=True)
    limit = (f"{args.rate:g}/s per client" if args.rate
             else "unlimited")
    print(f"serving at {server.url}  "
          f"(coalesce window {args.window_ms:g} ms, rate {limit})",
          flush=True)
    stop = threading.Event()
    for signum in (signal.SIGINT, signal.SIGTERM):
        signal.signal(signum, lambda *_: stop.set())
    server.start()
    stop.wait()
    print("draining (in-flight requests finish, new work gets 503)...",
          flush=True)
    drained = server.drain(timeout=args.drain_timeout)
    if not drained:
        print(f"drain timed out after {args.drain_timeout:g}s",
              file=sys.stderr, flush=True)
    if tracer is not None and isinstance(args.trace, str):
        path = tracer.write_chrome_trace(args.trace)
        print(f"trace: {path} ({len(tracer)} spans)", flush=True)
    return 0 if drained else 1


def _cmd_client(args) -> int:
    """One request against a running service, JSON to stdout."""
    import json

    from repro.service import RetryPolicy, ServiceClient, ServiceError

    retry = (RetryPolicy(max_attempts=args.retries + 1)
             if args.retries else None)
    client = ServiceClient(args.url, client_id=args.id,
                           timeout=args.timeout, retry=retry)
    try:
        if args.endpoint == "metrics":
            print(client.metrics_text(), end="")
            return 0
        if args.endpoint == "healthz":
            payload = client.healthz()
        elif args.endpoint == "campaign":
            payload = client.campaign(kind="mc", dies=args.dies,
                                      sigma=args.sigma,
                                      seed=args.seed)
        else:
            payload = client.diagnose(kind="mc", dies=args.dies,
                                      sigma=args.sigma,
                                      seed=args.seed,
                                      top_k=args.top_k)
    except ServiceError as error:
        print(json.dumps({"status": error.status,
                          **error.payload}, indent=2, sort_keys=True),
              file=sys.stderr)
        return 1
    except OSError as error:
        print(f"{args.url}: {error}", file=sys.stderr)
        return 1
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    raw = sys.argv[1:] if argv is None else list(argv)
    if raw[:1] == ["shard-worker"]:
        # Intercepted before the main argparse tree: when a shard
        # coordinator spawned us, stdin/stdout ARE the protocol
        # channel and must never be touched by argparse banter.  The
        # worker has its own small parser for --connect HOST:PORT
        # (dial a coordinator listening for multi-node workers).
        from repro.shard.worker import worker_cli

        return worker_cli(raw[1:])
    args = _build_parser().parse_args(raw)

    # The service commands build (or talk to) their own bench.
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "client":
        return _cmd_client(args)

    from repro.paper import paper_setup
    setup = paper_setup(samples_per_period=2048)

    if args.command == "info":
        return _cmd_info(setup)
    if args.command == "zonemap":
        return _cmd_zonemap(setup)
    if args.command == "chronogram":
        return _cmd_chronogram(setup, args.dev)
    if args.command == "sweep":
        return _cmd_sweep(setup, args.points)
    if args.command == "test":
        return _cmd_test(setup, args.dev, args.tolerance)
    if args.command == "campaign":
        return _cmd_campaign(setup, args)
    if args.command == "diagnose":
        return _cmd_diagnose(setup, args)
    raise AssertionError("unreachable")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
