"""Device models and process-variation statistics.

This package provides the transistor-level physics the paper's monitor
depends on:

* :mod:`repro.devices.mos_model` -- a smooth MOSFET model (EKV-style
  interpolation between subthreshold exponential and strong-inversion
  square law).  The quasi-quadratic saturation law is what turns the
  current comparator of the paper's Fig. 2 into a *nonlinear* zone
  boundary in the X-Y plane.
* :mod:`repro.devices.process` -- 65 nm-class technology parameters,
  process corners, and Pelgrom-law mismatch used for Monte Carlo spread
  of the monitor boundaries (paper's Fig. 4 validation).
"""

from repro.devices.mos_model import MosParams, MosModel, NMOS_65NM, PMOS_65NM
from repro.devices.process import (
    TechnologyParams,
    Corner,
    DeviceVariation,
    MonteCarloSampler,
    TECH_65NM,
)
from repro.devices.temperature import (
    at_temperature,
    boundary_temperature_drift,
    industrial_range,
)

__all__ = [
    "MosParams",
    "MosModel",
    "NMOS_65NM",
    "PMOS_65NM",
    "TechnologyParams",
    "Corner",
    "DeviceVariation",
    "MonteCarloSampler",
    "TECH_65NM",
    "at_temperature",
    "boundary_temperature_drift",
    "industrial_range",
]
