"""65 nm-class technology statistics: corners, Pelgrom mismatch, Monte Carlo.

The paper validates its fabricated monitor against "the predicted range
for Monte Carlo simulations using the foundry technology statistical
characterization" (process *and* mismatch).  The foundry PDK is
proprietary, so this module provides a documented surrogate:

* **Global process variation** -- a per-die shift of threshold voltage
  and a multiplicative factor on the transconductance parameter, shared
  by every device of the same polarity on the die.  Classic corner
  definitions (TT/FF/SS/FS/SF) are derived from +-3 sigma of the global
  distributions.
* **Local mismatch** -- independent per-device fluctuations following
  Pelgrom's law: ``sigma(dVT) = A_VT / sqrt(W L)`` and
  ``sigma(dbeta/beta) = A_beta / sqrt(W L)`` with W, L in micrometres.
  Published 65 nm values put ``A_VT`` at roughly 3-4 mV.um for thin-oxide
  nMOS; we use 3.5 mV.um (nMOS) and 4.0 mV.um (pMOS).

The surrogate preserves the property the paper's Fig. 4 relies on: the
spread of monitor boundary curves shrinks as device area grows, and the
measured curves fall inside the +-3 sigma Monte Carlo envelope.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.devices.mos_model import MosModel, MosParams, NMOS_65NM, PMOS_65NM


class Corner(enum.Enum):
    """Classic digital process corners (nMOS speed / pMOS speed)."""

    TT = "tt"
    FF = "ff"
    SS = "ss"
    FS = "fs"  # fast nMOS, slow pMOS
    SF = "sf"  # slow nMOS, fast pMOS

    @property
    def nmos_sigma(self) -> float:
        """Global sigma multiplier applied to the nMOS distribution."""
        return {"tt": 0.0, "ff": -3.0, "ss": +3.0,
                "fs": -3.0, "sf": +3.0}[self.value]

    @property
    def pmos_sigma(self) -> float:
        """Global sigma multiplier applied to the pMOS distribution."""
        return {"tt": 0.0, "ff": -3.0, "ss": +3.0,
                "fs": +3.0, "sf": -3.0}[self.value]


@dataclass(frozen=True)
class DeviceVariation:
    """Variation assigned to one concrete device instance.

    ``delta_vt`` is an additive threshold shift in volts and
    ``beta_factor`` a multiplicative factor on ``kp``; both combine the
    global (process) and local (mismatch) contributions.
    """

    delta_vt: float = 0.0
    beta_factor: float = 1.0

    def apply(self, model: MosModel) -> MosModel:
        """Return a copy of ``model`` with this variation folded in."""
        return model.with_params(
            model.params.with_variation(self.delta_vt, self.beta_factor))

    def combined_with(self, other: "DeviceVariation") -> "DeviceVariation":
        """Compose two variations (shifts add, factors multiply)."""
        return DeviceVariation(self.delta_vt + other.delta_vt,
                               self.beta_factor * other.beta_factor)


NOMINAL_VARIATION = DeviceVariation()


@dataclass(frozen=True)
class TechnologyParams:
    """Statistical characterization of a CMOS technology node.

    Attributes
    ----------
    name:
        Human-readable node name.
    nmos, pmos:
        Nominal (typical) model cards.
    sigma_vt_global:
        One-sigma global (die-to-die) threshold spread in volts.
    sigma_beta_global:
        One-sigma global relative spread of ``kp`` (dimensionless).
    avt_nmos_um, avt_pmos_um:
        Pelgrom threshold-mismatch coefficients in V*um (i.e. 3.5 mV*um
        is written 3.5e-3).
    abeta_um:
        Pelgrom current-factor mismatch coefficient in (relative)*um.
    vdd:
        Nominal supply voltage in volts.
    """

    name: str = "surrogate-65nm-lp"
    nmos: MosParams = NMOS_65NM
    pmos: MosParams = PMOS_65NM
    sigma_vt_global: float = 0.015
    sigma_beta_global: float = 0.05
    avt_nmos_um: float = 3.5e-3
    avt_pmos_um: float = 4.0e-3
    abeta_um: float = 0.01
    vdd: float = 1.2

    # ------------------------------------------------------------------
    # Mismatch statistics
    # ------------------------------------------------------------------
    def sigma_vt_mismatch(self, w: float, l: float,
                          polarity: int = 1) -> float:
        """Pelgrom sigma(dVT) in volts for a device of W x L metres."""
        area_um2 = (w * 1e6) * (l * 1e6)
        if area_um2 <= 0:
            raise ValueError("device area must be positive")
        avt = self.avt_nmos_um if polarity > 0 else self.avt_pmos_um
        return avt / math.sqrt(area_um2)

    def sigma_beta_mismatch(self, w: float, l: float) -> float:
        """Pelgrom sigma(dbeta/beta), dimensionless."""
        area_um2 = (w * 1e6) * (l * 1e6)
        if area_um2 <= 0:
            raise ValueError("device area must be positive")
        return self.abeta_um / math.sqrt(area_um2)

    # ------------------------------------------------------------------
    # Corners
    # ------------------------------------------------------------------
    def corner_params(self, corner: Corner, polarity: int = 1) -> MosParams:
        """Model card at a classic corner (+-3 sigma global shift).

        A *slow* device has a higher threshold and lower ``kp``; the two
        global knobs move together with the corner sign.
        """
        base = self.nmos if polarity > 0 else self.pmos
        sig = corner.nmos_sigma if polarity > 0 else corner.pmos_sigma
        return base.with_variation(
            delta_vt=sig * self.sigma_vt_global,
            beta_factor=1.0 - sig * self.sigma_beta_global)

    def nominal_model(self, w: float, l: float,
                      polarity: int = 1) -> MosModel:
        """Sized device at typical process."""
        params = self.nmos if polarity > 0 else self.pmos
        return MosModel(params, w, l)


#: Default surrogate technology used throughout the reproduction.
TECH_65NM = TechnologyParams()


class MonteCarloSampler:
    """Samples per-die process shifts and per-device mismatch.

    One :meth:`sample_die` call draws the global (process) variation
    shared by every device on a die; :meth:`DieSample.device_variation`
    then adds an independent Pelgrom-scaled local term per device.

    Parameters
    ----------
    tech:
        Technology statistics.
    rng:
        A :class:`numpy.random.Generator` or an integer seed.
    include_process, include_mismatch:
        Toggles for the two variation sources, so ablations can isolate
        them (the paper's Fig. 4 envelope includes both).
    """

    def __init__(self, tech: TechnologyParams = TECH_65NM,
                 rng=0,
                 include_process: bool = True,
                 include_mismatch: bool = True) -> None:
        self.tech = tech
        self.rng = (rng if isinstance(rng, np.random.Generator)
                    else np.random.default_rng(rng))
        self.include_process = include_process
        self.include_mismatch = include_mismatch

    def sample_die(self) -> "DieSample":
        """Draw one die: global nMOS/pMOS shifts, lazily-drawn mismatch."""
        if self.include_process:
            g = self.rng.standard_normal(4)
            nmos_global = DeviceVariation(
                delta_vt=float(g[0]) * self.tech.sigma_vt_global,
                beta_factor=max(0.05, 1.0 + float(g[1])
                                * self.tech.sigma_beta_global))
            pmos_global = DeviceVariation(
                delta_vt=float(g[2]) * self.tech.sigma_vt_global,
                beta_factor=max(0.05, 1.0 + float(g[3])
                                * self.tech.sigma_beta_global))
        else:
            nmos_global = NOMINAL_VARIATION
            pmos_global = NOMINAL_VARIATION
        return DieSample(self, nmos_global, pmos_global)

    def dies(self, count: int) -> Iterator["DieSample"]:
        """Yield ``count`` independent die samples."""
        for _ in range(count):
            yield self.sample_die()


class DieSample:
    """Variation context for one simulated die."""

    def __init__(self, sampler: MonteCarloSampler,
                 nmos_global: DeviceVariation,
                 pmos_global: DeviceVariation) -> None:
        self._sampler = sampler
        self.nmos_global = nmos_global
        self.pmos_global = pmos_global

    def device_variation(self, w: float, l: float,
                         polarity: int = 1) -> DeviceVariation:
        """Global + fresh local mismatch for one device of size W x L."""
        base = self.nmos_global if polarity > 0 else self.pmos_global
        if not self._sampler.include_mismatch:
            return base
        tech = self._sampler.tech
        rng = self._sampler.rng
        local = DeviceVariation(
            delta_vt=float(rng.standard_normal())
            * tech.sigma_vt_mismatch(w, l, polarity),
            beta_factor=max(0.05, 1.0 + float(rng.standard_normal())
                            * tech.sigma_beta_mismatch(w, l)))
        return base.combined_with(local)

    def vary(self, model: MosModel) -> MosModel:
        """Apply this die's variation to a sized nominal device."""
        variation = self.device_variation(model.w, model.l,
                                          model.params.polarity)
        return variation.apply(model)
