"""Temperature behaviour of the device models.

The monitor lives on-chip, so its zone boundaries drift with die
temperature.  The classic first-order dependencies are applied to the
model card:

* threshold voltage: ``VT(T) = VT(T0) + tc_vt * (T - T0)`` with
  ``tc_vt`` around -1 mV/K for bulk CMOS;
* mobility (through KP): ``KP(T) = KP(T0) * (T / T0)^(-1.5)``;
* thermal voltage: kT/q, already carried by
  :attr:`repro.devices.mos_model.MosParams.temperature_k` (it sets the
  subthreshold slope and the EKV transition width).

The temperature study (tests + report) measures how far the Table I
boundaries move over the industrial range and what NDF a fault-free
CUT reads when the monitor is at a different temperature than at
golden-calibration time -- the thermal analogue of the process guard
band.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

import numpy as np

from repro.devices.mos_model import MosParams

#: Reference temperature of the nominal model cards, in kelvin.
T_NOMINAL = 300.0

#: Threshold temperature coefficient, V/K (negative: VT drops when hot).
TC_VT = -1.0e-3

#: Mobility exponent in KP(T) = KP(T0) (T/T0)^MOBILITY_EXPONENT.
MOBILITY_EXPONENT = -1.5


def at_temperature(params: MosParams, temperature_k: float,
                   tc_vt: float = TC_VT,
                   mobility_exponent: float = MOBILITY_EXPONENT
                   ) -> MosParams:
    """Model card re-evaluated at a junction temperature.

    Parameters
    ----------
    params:
        Nominal card (assumed characterized at ``T_NOMINAL``).
    temperature_k:
        Target junction temperature in kelvin.
    tc_vt, mobility_exponent:
        First-order coefficients; defaults are textbook bulk-CMOS
        values.
    """
    if temperature_k <= 0:
        raise ValueError("temperature must be positive kelvin")
    dt = temperature_k - T_NOMINAL
    return replace(
        params,
        vt0=params.vt0 + tc_vt * dt,
        kp=params.kp * (temperature_k / T_NOMINAL) ** mobility_exponent,
        temperature_k=temperature_k)


def industrial_range(points: int = 5) -> np.ndarray:
    """The -40..+125 C industrial range, in kelvin."""
    return np.linspace(233.15, 398.15, points)


def boundary_temperature_drift(monitor_factory, temperatures_k: Sequence[float],
                               probe_x: float = 0.25) -> np.ndarray:
    """Boundary height at ``probe_x`` across temperatures.

    ``monitor_factory(params)`` builds the monitor from a model card;
    returns the boundary's y-crossing at the probe for each
    temperature (NaN where the boundary leaves the window).
    """
    from repro.devices.mos_model import NMOS_65NM

    heights = []
    for t in temperatures_k:
        params = at_temperature(NMOS_65NM, float(t))
        monitor = monitor_factory(params)
        ys = monitor.locus_points(np.asarray([probe_x]))
        heights.append(float(ys[0]))
    return np.asarray(heights)
