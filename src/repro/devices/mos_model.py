"""Smooth MOSFET model (EKV-style charge-sheet interpolation).

The paper's monitor (Fig. 2) exploits the quasi-quadratic drain current
of an nMOS transistor in saturation to draw *nonlinear* boundaries in the
X-Y plane, and notes that boundaries degenerate towards straight lines
when inputs fall below the threshold voltage (subthreshold operation).
Reproducing both regimes therefore needs a model that is:

* quadratic in ``VGS - VT`` in strong inversion / saturation,
* exponential below threshold,
* smooth (C-infinity) across the transition so that Newton iterations in
  the circuit simulator converge and boundary loci have no kinks.

The EKV interpolation satisfies all three.  The drain current of a
long-channel device is written as the difference of a *forward* and a
*reverse* component, each of the form::

    I(v) = I0 * ln(1 + exp(v / (2 n UT)))^2      with I0 = 2 n^2 beta UT^2

For ``v >> n UT`` the log-exp term tends to ``v / (2 n UT)`` and the
component becomes the textbook square law ``(beta / 2) v^2`` -- exactly
the idealization used in the paper's boundary equations; for
``v << -n UT`` it tends to the subthreshold exponential with slope
``n UT`` per e-fold.

Only the behaviour the paper needs is modelled: no velocity saturation,
no DIBL.  Channel-length modulation enters as the usual
``(1 + lambda |VDS|)`` factor because the monitor's differential branches
see unequal drain voltages while switching.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

import numpy as np

#: Thermal voltage kT/q at 300 K, in volts.
THERMAL_VOLTAGE = 0.02585


def softplus(x):
    """Numerically safe ``ln(1 + exp(x))`` for scalars or arrays."""
    x = np.asarray(x, dtype=float)
    return np.where(x > 30.0, x, np.log1p(np.exp(np.minimum(x, 30.0))))


def sigmoid(x):
    """Numerically stable logistic function, derivative of softplus."""
    x = np.asarray(x, dtype=float)
    pos = x >= 0
    z = np.exp(-np.abs(x))
    return np.where(pos, 1.0 / (1.0 + z), z / (1.0 + z))


@dataclass(frozen=True)
class MosParams:
    """Static parameters of a MOSFET model card.

    Attributes
    ----------
    polarity:
        ``+1`` for nMOS, ``-1`` for pMOS.  pMOS voltages are mirrored
        internally so the same equations serve both polarities.
    vt0:
        Zero-bias threshold voltage magnitude in volts.
    kp:
        Transconductance parameter ``mu * Cox`` in A/V^2.
    n:
        Subthreshold slope factor (dimensionless, typically 1.2-1.5).
    lambda_:
        Channel-length modulation coefficient in 1/V.
    temperature_k:
        Junction temperature in kelvin; sets the thermal voltage.
    """

    polarity: int = 1
    vt0: float = 0.42
    kp: float = 400e-6
    n: float = 1.30
    lambda_: float = 0.15
    temperature_k: float = 300.0

    @property
    def thermal_voltage(self) -> float:
        """Thermal voltage kT/q for the model temperature."""
        return THERMAL_VOLTAGE * (self.temperature_k / 300.0)

    def with_variation(self, delta_vt: float = 0.0,
                       beta_factor: float = 1.0) -> "MosParams":
        """Return a copy shifted by a threshold delta and a beta multiplier.

        This is the entry point for process/mismatch Monte Carlo: both
        kinds of variation act through ``vt0`` shifts and multiplicative
        ``kp`` scaling (see :mod:`repro.devices.process`).
        """
        return replace(self, vt0=self.vt0 + delta_vt,
                       kp=self.kp * beta_factor)


#: Representative 65 nm-class low-power nMOS model card.  The paper does
#: not publish its foundry model, so these are documented surrogates
#: (VT around 0.42 V, K' of a few hundred uA/V^2; docs/paper_map.md).
NMOS_65NM = MosParams(polarity=1, vt0=0.42, kp=400e-6, n=1.30, lambda_=0.15)

#: Representative 65 nm-class pMOS card (mobility roughly 1/3 of nMOS).
PMOS_65NM = MosParams(polarity=-1, vt0=0.40, kp=140e-6, n=1.35, lambda_=0.15)


@dataclass(frozen=True)
class MosModel:
    """A sized MOSFET: model card plus channel width and length.

    Terminal voltages are node voltages of the device as wired in the
    circuit; pMOS devices are mirrored internally.  The body effect is
    folded into ``vt0`` (all sources are grounded or tied to a rail in
    the paper's circuits, so a gamma term would be inert).

    Parameters
    ----------
    params:
        The :class:`MosParams` model card.
    w, l:
        Channel width and length in metres.
    """

    params: MosParams
    w: float = 1.8e-6
    l: float = 180e-9

    def __post_init__(self) -> None:
        if self.w <= 0 or self.l <= 0:
            raise ValueError(
                f"MOSFET dimensions must be positive, got W={self.w}, L={self.l}")

    @property
    def beta(self) -> float:
        """Device transconductance factor ``kp * W / L`` in A/V^2."""
        return self.params.kp * self.w / self.l

    @property
    def unit_current(self) -> float:
        """EKV normalization current ``2 n^2 beta UT^2`` in amperes."""
        ut = self.params.thermal_voltage
        n = self.params.n
        return 2.0 * n * n * self.beta * ut * ut

    # ------------------------------------------------------------------
    # Normalized EKV branch (device-oriented voltages, nMOS sense)
    # ------------------------------------------------------------------
    def _branch(self, v_over):
        """Dimensionless EKV component ``ln(1+exp(v/(2 n UT)))^2``."""
        ut = self.params.thermal_voltage
        return softplus(np.asarray(v_over, float)
                        / (2.0 * self.params.n * ut)) ** 2

    def _dbranch(self, v_over):
        """Derivative of :meth:`_branch` w.r.t. its argument (1/V)."""
        ut = self.params.thermal_voltage
        scale = 1.0 / (2.0 * self.params.n * ut)
        arg = np.asarray(v_over, float) * scale
        return 2.0 * softplus(arg) * sigmoid(arg) * scale

    # ------------------------------------------------------------------
    # Currents
    # ------------------------------------------------------------------
    def drain_current(self, vgs, vds, with_clm: bool = True):
        """Drain-to-source current for the given terminal voltages.

        Accepts scalars or broadcastable numpy arrays.  The returned
        value follows the standard convention: positive current flows
        into the drain terminal for a conducting nMOS; for a conducting
        pMOS the returned value is negative (current flows out of the
        drain node).
        """
        pol = self.params.polarity
        vgs_d = pol * np.asarray(vgs, dtype=float)
        vds_d = pol * np.asarray(vds, dtype=float)
        # The device is source/drain symmetric: mirror so vds >= 0.
        swap = vds_d < 0
        vgs_eff = np.where(swap, vgs_d - vds_d, vgs_d)
        vds_eff = np.abs(vds_d)

        n = self.params.n
        vt0 = self.params.vt0
        fwd = self._branch(vgs_eff - vt0)
        rev = self._branch(vgs_eff - vt0 - n * vds_eff)
        ids = self.unit_current * (fwd - rev)
        if with_clm:
            ids = ids * (1.0 + self.params.lambda_ * vds_eff)
        ids = np.where(swap, -ids, ids)
        result = pol * ids
        if np.ndim(result) == 0:
            return float(result)
        return result

    def saturation_current(self, vgs, with_clm: bool = False, vds=None):
        """Forward (saturation) current of a grounded-source device.

        This is the quantity the monitor's boundary equation balances:
        asymptotically the square law ``(beta / 2)(|vgs| - vt)^2`` in
        strong inversion, an exponential below threshold.  ``vgs`` is
        the circuit-level gate-source voltage (negative for a conducting
        pMOS); the returned current is the magnitude flowing through the
        channel (always >= 0).
        """
        pol = self.params.polarity
        vgs_d = pol * np.asarray(vgs, dtype=float)
        ids = self.unit_current * self._branch(vgs_d - self.params.vt0)
        if with_clm:
            if vds is None:
                raise ValueError("with_clm=True requires vds")
            ids = ids * (1.0 + self.params.lambda_
                         * np.abs(np.asarray(vds, float)))
        if np.ndim(ids) == 0:
            return float(ids)
        return ids

    def transconductance(self, vgs, vds):
        """gm = dId/dVgs at the given bias (device sense, always >= 0)."""
        pol = self.params.polarity
        vgs_d = pol * np.asarray(vgs, dtype=float)
        vds_d = pol * np.asarray(vds, dtype=float)
        swap = vds_d < 0
        vgs_eff = np.where(swap, vgs_d - vds_d, vgs_d)
        vds_eff = np.abs(vds_d)
        n = self.params.n
        vt0 = self.params.vt0
        dfwd = self._dbranch(vgs_eff - vt0)
        drev = self._dbranch(vgs_eff - vt0 - n * vds_eff)
        gm = self.unit_current * (dfwd - drev)
        gm = gm * (1.0 + self.params.lambda_ * vds_eff)
        if np.ndim(gm) == 0:
            return float(gm)
        return gm

    def output_conductance(self, vgs, vds):
        """gds = dId/dVds at the given bias (device sense, >= 0)."""
        pol = self.params.polarity
        vgs_d = pol * np.asarray(vgs, dtype=float)
        vds_d = pol * np.asarray(vds, dtype=float)
        swap = vds_d < 0
        vgs_eff = np.where(swap, vgs_d - vds_d, vgs_d)
        vds_eff = np.abs(vds_d)
        n = self.params.n
        vt0 = self.params.vt0
        lam = self.params.lambda_
        fwd = self._branch(vgs_eff - vt0)
        rev_arg = vgs_eff - vt0 - n * vds_eff
        rev = self._branch(rev_arg)
        drev = self._dbranch(rev_arg)
        gds = self.unit_current * (n * drev * (1.0 + lam * vds_eff)
                                   + (fwd - rev) * lam)
        if np.ndim(gds) == 0:
            return float(gds)
        return gds

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def gate_voltage_for_current(self, target: float) -> float:
        """Invert the grounded-source saturation law.

        Returns the device-oriented gate voltage magnitude whose
        saturation current equals ``target``.  Bisection on a monotone
        function; used for sizing checks in tests and calibration.
        """
        if target <= 0:
            raise ValueError("target current must be positive")
        pol = self.params.polarity
        lo, hi = -1.0, 3.0
        if self.saturation_current(pol * hi) < target:
            raise ValueError("target current unreachable below |VGS| = 3 V")
        for _ in range(100):
            mid = 0.5 * (lo + hi)
            if self.saturation_current(pol * mid) > target:
                hi = mid
            else:
                lo = mid
        return 0.5 * (lo + hi)

    def resized(self, w: Optional[float] = None,
                l: Optional[float] = None) -> "MosModel":
        """Return a copy with new dimensions (model card shared)."""
        return MosModel(self.params, w if w is not None else self.w,
                        l if l is not None else self.l)

    def with_params(self, params: MosParams) -> "MosModel":
        """Return a copy with a different model card (same W/L)."""
        return MosModel(params, self.w, self.l)


def square_law_current(beta: float, vgs: float, vt: float) -> float:
    """Ideal square-law saturation current, the paper's analytic idealization.

    ``I = beta/2 (vgs - vt)^2`` above threshold, 0 below.  Used by tests
    to pin the smooth model's strong-inversion asymptote and by the
    closed-form boundary expectations in the benchmarks.
    """
    over = vgs - vt
    if over <= 0:
        return 0.0
    return 0.5 * beta * over * over
