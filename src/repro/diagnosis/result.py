"""Structured outcome of one fleet diagnosis.

A :class:`DiagnosisResult` is array-resident like the campaign result
it descends from: the full ``(N, F)`` die-to-fault distance matrix,
the top-k candidate table and per-die confidence margins all live in
NumPy arrays.  Per-die :class:`~repro.core.signature.Signature`
objects appear only at the report edge (:meth:`DiagnosisResult.die`),
mirroring the campaign engine's design.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.signature import Signature
from repro.core.signature_batch import SignatureBatch


def json_number(value) -> Optional[float]:
    """Float for JSON payloads: None when not finite.

    ``json.dumps`` happily emits the non-standard ``Infinity``/``NaN``
    literals that strict parsers reject; every numeric field of the
    diagnosis payloads goes through this instead.
    """
    value = float(value)
    return value if np.isfinite(value) else None


@dataclass(frozen=True)
class DieDiagnosis:
    """One die's diagnosis, unpacked for a human report.

    The candidate list pairs fault labels with their distances, best
    first; ``signature`` is the die's observed signature when the
    matcher retained the batch.
    """

    die_label: str
    candidates: Tuple[Tuple[str, float], ...]
    margin: float
    signature: Optional[Signature] = None

    @property
    def best(self) -> str:
        """Top-1 fault label."""
        return self.candidates[0][0]

    def __str__(self) -> str:
        ranked = ", ".join(f"{label} ({distance:.4f})"
                           for label, distance in self.candidates)
        return (f"{self.die_label}: {self.best} "
                f"[margin {self.margin:.4f}; {ranked}]")


@dataclass
class DiagnosisResult:
    """Verdict of matching a fleet batch against a fault dictionary.

    Attributes
    ----------
    distances:
        ``(N, F)`` die-to-fault distance matrix (NDF or dwell metric).
    top_indices:
        ``(N, k)`` fault indices, best first (stable tie-break by
        fault index).
    top_distances:
        ``(N, k)`` distances aligned with ``top_indices``.
    fault_labels:
        Dictionary fault labels, column order.
    metric:
        Distance metric that produced the matrix.
    die_labels:
        One identifier per diagnosed die (defaults to die indices).
    batch:
        The observed rows (retained so :meth:`die` can unpack per-die
        signatures at the report edge); may be None.
    timing:
        Wall-clock seconds per matcher stage.
    """

    distances: np.ndarray
    top_indices: np.ndarray
    top_distances: np.ndarray
    fault_labels: List[str]
    metric: str = "ndf"
    die_labels: Optional[List[str]] = None
    batch: Optional[SignatureBatch] = None
    timing: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.distances = np.atleast_2d(np.asarray(self.distances,
                                                  dtype=float))
        self.top_indices = np.atleast_2d(np.asarray(self.top_indices,
                                                    dtype=np.int64))
        self.top_distances = np.atleast_2d(
            np.asarray(self.top_distances, dtype=float))
        if self.top_indices.shape != self.top_distances.shape \
                or self.top_indices.shape[0] != self.distances.shape[0]:
            raise ValueError("top-k tables must align with the "
                             "distance matrix")
        if self.die_labels is None:
            self.die_labels = [f"die{i:05d}"
                               for i in range(self.num_dies)]

    # ------------------------------------------------------------------
    @property
    def num_dies(self) -> int:
        """Diagnosed population size N."""
        return int(self.distances.shape[0])

    @property
    def num_faults(self) -> int:
        """Dictionary size F."""
        return int(self.distances.shape[1])

    @property
    def top_k(self) -> int:
        """Candidates retained per die."""
        return int(self.top_indices.shape[1])

    @property
    def best_indices(self) -> np.ndarray:
        """Top-1 fault index per die."""
        return self.top_indices[:, 0]

    def matches(self) -> List[str]:
        """Top-1 fault label per die."""
        return [self.fault_labels[i] for i in self.best_indices]

    def margins(self) -> np.ndarray:
        """Per-die confidence margin: distance gap runner-up - best.

        A zero margin means the top two candidates are exactly tied --
        the die sits on an ambiguity group and the top-1 label alone
        should not be trusted.
        """
        if self.top_k < 2:
            return np.full(self.num_dies, np.inf)
        return self.top_distances[:, 1] - self.top_distances[:, 0]

    def ambiguous(self, epsilon: float = 1e-12) -> np.ndarray:
        """Mask of dies whose top-2 candidates tie within epsilon."""
        return self.margins() <= epsilon

    def accuracy(self, true_indices) -> float:
        """Top-1 accuracy against ground-truth fault indices."""
        true_indices = np.asarray(true_indices)
        if true_indices.shape != (self.num_dies,):
            raise ValueError("ground truth must give one fault index "
                             "per die")
        if self.num_dies == 0:
            return float("nan")
        return float(np.mean(self.best_indices == true_indices))

    def group_accuracy(self, true_indices, groups) -> float:
        """Top-1 accuracy up to ambiguity groups.

        A top-1 prediction inside the true fault's group counts as
        correct -- the fair score when the dictionary provably cannot
        separate group members (see
        :func:`repro.diagnosis.ambiguity_groups`).  Faults absent
        from ``groups`` are treated as singletons.
        """
        true_indices = np.asarray(true_indices)
        if true_indices.shape != (self.num_dies,):
            raise ValueError("ground truth must give one fault index "
                             "per die")
        if self.num_dies == 0:
            return float("nan")
        member = {}
        for group in groups:
            for index in group:
                member[index] = set(group)
        hits = [int(best) in member.get(int(truth), {int(truth)})
                for best, truth in zip(self.best_indices,
                                       true_indices)]
        return float(np.mean(hits))

    def topk_accuracy(self, true_indices) -> float:
        """Fraction of dies whose true fault appears in the top-k."""
        true_indices = np.asarray(true_indices)
        if self.num_dies == 0:
            return float("nan")
        hits = np.any(self.top_indices == true_indices[:, None],
                      axis=1)
        return float(np.mean(hits))

    # ------------------------------------------------------------------
    # Report edge
    # ------------------------------------------------------------------
    def die(self, i: int) -> DieDiagnosis:
        """Per-die report object (Signature unpacked here only)."""
        candidates = tuple(
            (self.fault_labels[j], float(d))
            for j, d in zip(self.top_indices[i], self.top_distances[i]))
        signature = self.batch.row(i) if self.batch is not None else None
        return DieDiagnosis(self.die_labels[i], candidates,
                            float(self.margins()[i]), signature)

    def summary(self, max_rows: int = 10) -> str:
        """Human-readable block (CLI / report output)."""
        lines = [f"diagnosed:   {self.num_dies} dies x "
                 f"{self.num_faults} dictionary faults "
                 f"({self.metric} metric, top-{self.top_k})"]
        if self.num_dies:
            counts: Dict[str, int] = {}
            for label in self.matches():
                counts[label] = counts.get(label, 0) + 1
            ranked = sorted(counts.items(), key=lambda kv: -kv[1])
            lines.append("matches:     " + ", ".join(
                f"{label} x{count}" for label, count in ranked))
            ambiguous = int(np.count_nonzero(self.ambiguous()))
            lines.append(f"ambiguous:   {ambiguous} dies tie their "
                         f"top-2 candidates")
            for i in range(min(max_rows, self.num_dies)):
                lines.append(f"  {self.die(i)}")
            if self.num_dies > max_rows:
                lines.append(f"  ... {self.num_dies - max_rows} more")
        total = self.timing.get("total")
        if total:
            lines.append(f"throughput:  {self.num_dies / total:,.0f} "
                         f"dies/s ({total * 1e3:.1f} ms total)")
        return "\n".join(lines)

    def to_payload(self) -> dict:
        """JSON-ready machine summary (CLI ``--json``).

        Non-finite values (the infinite margin of a top-1-only match,
        NaN accuracies) become None -- strict JSON has no
        Infinity/NaN literals.
        """
        return {
            "dies": self.num_dies,
            "faults": self.num_faults,
            "metric": self.metric,
            "top_k": self.top_k,
            "matches": [
                {"die": self.die_labels[i],
                 "candidates": [
                     {"fault": self.fault_labels[j],
                      "distance": float(d)}
                     for j, d in zip(self.top_indices[i],
                                     self.top_distances[i])],
                 "margin": json_number(m)}
                for i, m in enumerate(self.margins())],
            "ambiguous_dies": int(np.count_nonzero(self.ambiguous())),
            "timing": self.timing,
        }
