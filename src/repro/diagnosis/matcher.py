"""Batched dictionary matching: fleet batch -> nearest faults.

The matcher scores an entire failing fleet's packed
:class:`~repro.core.signature_batch.SignatureBatch` against every
dictionary fault without materializing per-die objects:

* the ``"ndf"`` metric reuses the one-pass fleet-NDF kernel -- one
  :meth:`SignatureBatch.ndf_to` call per dictionary fault fills one
  column of the ``(N, F)`` distance matrix, so the cost is F flat
  kernels over the fleet, never N x F Python-level comparisons;
* the ``"dwell"`` metric compares alignment-free zone-dwell feature
  vectors (total-variation distance) in a single broadcast, trading
  time-alignment sensitivity for an F-independent pass over the
  codes.

Top-k candidates, tie-stable ordering and confidence margins are
derived from the matrix with one ``argsort``.  The per-die reference
loop (:meth:`DictionaryMatcher.match_reference`) exists for the
equivalence tests and produces identical results, die by die.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence

import numpy as np

from repro.core.ndf import ndf as scalar_ndf
from repro.core.signature import Signature
from repro.core.signature_batch import SignatureBatch
from repro.diagnosis.dictionary import FaultDictionary, dwell_features
from repro.diagnosis.result import DiagnosisResult

_METRICS = ("ndf", "dwell")


class DictionaryMatcher:
    """Scores observed signature batches against a fault dictionary."""

    def __init__(self, dictionary: FaultDictionary) -> None:
        self.dictionary = dictionary
        # Fault signatures are unpacked once per matcher: they are the
        # shared references every ndf_to column pass scores against.
        self._fault_signatures: Optional[List[Signature]] = None

    def _signatures(self) -> List[Signature]:
        if self._fault_signatures is None:
            self._fault_signatures = self.dictionary.batch.to_signatures()
        return self._fault_signatures

    # ------------------------------------------------------------------
    def distance_matrix(self, batch: SignatureBatch,
                        metric: str = "ndf") -> np.ndarray:
        """``(N, F)`` die-to-fault distances for a whole fleet batch."""
        if metric not in _METRICS:
            raise ValueError(f"unknown metric {metric!r}; "
                             f"choose from {_METRICS}")
        n = len(batch)
        f = len(self.dictionary)
        if n == 0:
            return np.empty((0, f))
        if metric == "ndf":
            columns = [batch.ndf_to(signature)
                       for signature in self._signatures()]
            return np.stack(columns, axis=1)
        observed = dwell_features(batch, self.dictionary.num_bits)
        deltas = observed[:, None, :] - self.dictionary.features[None, :, :]
        return 0.5 * np.abs(deltas).sum(axis=2)

    def match(self, batch: SignatureBatch, top_k: int = 3,
              metric: str = "ndf",
              die_labels: Optional[Sequence[str]] = None
              ) -> DiagnosisResult:
        """Diagnose every row of a fleet batch in one pass.

        Ties are broken by fault index (stable argsort), so results
        are deterministic and identical to the per-die reference.
        """
        start = time.perf_counter()
        timing = {}
        t0 = time.perf_counter()
        distances = self.distance_matrix(batch, metric)
        timing["distances"] = time.perf_counter() - t0
        k = max(1, min(int(top_k), len(self.dictionary)))
        t0 = time.perf_counter()
        order = np.argsort(distances, axis=1, kind="stable")[:, :k]
        top_distances = np.take_along_axis(distances, order, axis=1)
        timing["rank"] = time.perf_counter() - t0
        timing["total"] = time.perf_counter() - start
        return DiagnosisResult(
            distances=distances, top_indices=order,
            top_distances=top_distances,
            fault_labels=self.dictionary.labels, metric=metric,
            die_labels=(list(die_labels) if die_labels is not None
                        else None),
            batch=batch, timing=timing)

    # ------------------------------------------------------------------
    # Per-die reference (equivalence baseline, report-edge semantics)
    # ------------------------------------------------------------------
    def match_signature(self, signature: Signature, top_k: int = 3,
                        metric: str = "ndf") -> DiagnosisResult:
        """Diagnose one unpacked die signature (report edge)."""
        return self.match(SignatureBatch.from_signatures([signature]),
                          top_k=top_k, metric=metric)

    def match_reference(self, batch: SignatureBatch, top_k: int = 3,
                        metric: str = "ndf",
                        die_labels: Optional[Sequence[str]] = None
                        ) -> DiagnosisResult:
        """Per-die loop over unpacked signatures (the slow baseline).

        Exists so the equivalence tests can assert the batched matcher
        reproduces the naive flow exactly: same distances (the fleet
        kernel is bit-compatible with :func:`repro.core.ndf.ndf`),
        same candidate order, same margins.
        """
        if metric not in _METRICS:
            raise ValueError(f"unknown metric {metric!r}; "
                             f"choose from {_METRICS}")
        rows = []
        references = self._signatures()
        for observed in batch.to_signatures():
            if metric == "ndf":
                rows.append([scalar_ndf(observed, reference)
                             for reference in references])
            else:
                single = dwell_features(
                    SignatureBatch.from_signatures([observed]),
                    self.dictionary.num_bits)[0]
                deltas = single[None, :] - self.dictionary.features
                rows.append(list(0.5 * np.abs(deltas).sum(axis=1)))
        distances = (np.asarray(rows, dtype=float) if rows
                     else np.empty((0, len(self.dictionary))))
        k = max(1, min(int(top_k), len(self.dictionary)))
        order = np.argsort(distances, axis=1, kind="stable")[:, :k] \
            if rows else np.empty((0, k), dtype=np.int64)
        top_distances = (np.take_along_axis(distances, order, axis=1)
                         if rows else np.empty((0, k)))
        return DiagnosisResult(
            distances=distances, top_indices=order,
            top_distances=top_distances,
            fault_labels=self.dictionary.labels, metric=metric,
            die_labels=(list(die_labels) if die_labels is not None
                        else None),
            batch=batch)
