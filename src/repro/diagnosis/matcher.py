"""Batched dictionary matching: fleet batch -> nearest faults.

The matcher scores an entire failing fleet's packed
:class:`~repro.core.signature_batch.SignatureBatch` against every
dictionary fault without materializing per-die objects:

* the ``"ndf"`` metric reuses the one-pass fleet-NDF kernel -- one
  :meth:`SignatureBatch.ndf_to` call per dictionary fault fills one
  column of the ``(N, F)`` distance matrix, so the cost is F flat
  kernels over the fleet, never N x F Python-level comparisons;
* the ``"dwell"`` metric compares alignment-free zone-dwell feature
  vectors (total-variation distance) in a single broadcast, trading
  time-alignment sensitivity for an F-independent pass over the
  codes.

Top-k candidates, tie-stable ordering and confidence margins are
derived from the matrix with one ``argsort``.  The per-die reference
loop (:meth:`DictionaryMatcher.match_reference`) exists for the
equivalence tests and produces identical results, die by die.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence

import numpy as np

from repro.core.multi_signature_batch import MultiSignatureBatch
from repro.core.ndf import ndf as scalar_ndf
from repro.core.signature import Signature
from repro.core.signature_batch import SignatureBatch
from repro.diagnosis.dictionary import (
    FaultDictionary,
    MultiFaultDictionary,
    dwell_features,
)
from repro.diagnosis.result import DiagnosisResult
from repro.obs.trace import span

_METRICS = ("ndf", "dwell")


def _rank(distances: np.ndarray, num_faults: int, top_k: int
          ) -> "tuple[np.ndarray, np.ndarray]":
    """Shared top-k ranking: stable argsort, fault-index tie-break.

    One definition serves the single- and multi-channel matchers, so
    their candidate ordering can never silently diverge.
    """
    k = max(1, min(int(top_k), num_faults))
    order = np.argsort(distances, axis=1, kind="stable")[:, :k]
    return order, np.take_along_axis(distances, order, axis=1)


def _match_from_distances(compute_distances, fault_labels,
                          report_batch, top_k: int, metric: str,
                          die_labels) -> DiagnosisResult:
    """Shared match body: time the distance pass, rank, assemble.

    Both matchers delegate here so their timing keys, ranking
    semantics and :class:`DiagnosisResult` assembly stay one
    definition; ``report_batch`` is what the result retains for the
    per-die report edge (the primary-channel batch).
    """
    start = time.perf_counter()
    timing = {}
    t0 = time.perf_counter()
    distances = compute_distances()
    timing["distances"] = time.perf_counter() - t0
    t0 = time.perf_counter()
    order, top_distances = _rank(distances, len(fault_labels), top_k)
    timing["rank"] = time.perf_counter() - t0
    timing["total"] = time.perf_counter() - start
    return DiagnosisResult(
        distances=distances, top_indices=order,
        top_distances=top_distances,
        fault_labels=fault_labels, metric=metric,
        die_labels=(list(die_labels) if die_labels is not None
                    else None),
        batch=report_batch, timing=timing)


class DictionaryMatcher:
    """Scores observed signature batches against a fault dictionary."""

    def __init__(self, dictionary: FaultDictionary) -> None:
        self.dictionary = dictionary
        # Fault signatures are unpacked once per matcher: they are the
        # shared references every ndf_to column pass scores against.
        self._fault_signatures: Optional[List[Signature]] = None

    def _signatures(self) -> List[Signature]:
        if self._fault_signatures is None:
            self._fault_signatures = self.dictionary.batch.to_signatures()
        return self._fault_signatures

    # ------------------------------------------------------------------
    def distance_matrix(self, batch: SignatureBatch,
                        metric: str = "ndf") -> np.ndarray:
        """``(N, F)`` die-to-fault distances for a whole fleet batch."""
        if metric not in _METRICS:
            raise ValueError(f"unknown metric {metric!r}; "
                             f"choose from {_METRICS}")
        n = len(batch)
        f = len(self.dictionary)
        if n == 0:
            return np.empty((0, f))
        if metric == "ndf":
            columns = [batch.ndf_to(signature)
                       for signature in self._signatures()]
            return np.stack(columns, axis=1)
        observed = dwell_features(batch, self.dictionary.num_bits)
        deltas = observed[:, None, :] - self.dictionary.features[None, :, :]
        return 0.5 * np.abs(deltas).sum(axis=2)

    def match(self, batch: SignatureBatch, top_k: int = 3,
              metric: str = "ndf",
              die_labels: Optional[Sequence[str]] = None
              ) -> DiagnosisResult:
        """Diagnose every row of a fleet batch in one pass.

        Ties are broken by fault index (stable argsort), so results
        are deterministic and identical to the per-die reference.
        """
        with span("dictionary.match", dies=len(batch),
                  faults=len(self.dictionary), metric=metric):
            return _match_from_distances(
                lambda: self.distance_matrix(batch, metric),
                self.dictionary.labels, batch, top_k, metric,
                die_labels)

    # ------------------------------------------------------------------
    # Per-die reference (equivalence baseline, report-edge semantics)
    # ------------------------------------------------------------------
    def match_signature(self, signature: Signature, top_k: int = 3,
                        metric: str = "ndf") -> DiagnosisResult:
        """Diagnose one unpacked die signature (report edge)."""
        return self.match(SignatureBatch.from_signatures([signature]),
                          top_k=top_k, metric=metric)

    def match_reference(self, batch: SignatureBatch, top_k: int = 3,
                        metric: str = "ndf",
                        die_labels: Optional[Sequence[str]] = None
                        ) -> DiagnosisResult:
        """Per-die loop over unpacked signatures (the slow baseline).

        Exists so the equivalence tests can assert the batched matcher
        reproduces the naive flow exactly: same distances (the fleet
        kernel is bit-compatible with :func:`repro.core.ndf.ndf`),
        same candidate order, same margins.
        """
        if metric not in _METRICS:
            raise ValueError(f"unknown metric {metric!r}; "
                             f"choose from {_METRICS}")
        rows = []
        references = self._signatures()
        for observed in batch.to_signatures():
            if metric == "ndf":
                rows.append([scalar_ndf(observed, reference)
                             for reference in references])
            else:
                single = dwell_features(
                    SignatureBatch.from_signatures([observed]),
                    self.dictionary.num_bits)[0]
                deltas = single[None, :] - self.dictionary.features
                rows.append(list(0.5 * np.abs(deltas).sum(axis=1)))
        distances = (np.asarray(rows, dtype=float) if rows
                     else np.empty((0, len(self.dictionary))))
        k = max(1, min(int(top_k), len(self.dictionary)))
        order = np.argsort(distances, axis=1, kind="stable")[:, :k] \
            if rows else np.empty((0, k), dtype=np.int64)
        top_distances = (np.take_along_axis(distances, order, axis=1)
                         if rows else np.empty((0, k)))
        return DiagnosisResult(
            distances=distances, top_indices=order,
            top_distances=top_distances,
            fault_labels=self.dictionary.labels, metric=metric,
            die_labels=(list(die_labels) if die_labels is not None
                        else None),
            batch=batch)


class MultiDictionaryMatcher:
    """Scores multi-signature batches against a K-channel dictionary.

    Channel ``k`` of the observed batch is scored against channel
    ``k`` of the dictionary with the plain :class:`DictionaryMatcher`
    machinery; the K per-channel ``(N, F)`` matrices -- the
    concatenated ``(N, K*F)`` view is exposed by
    :meth:`stacked_distances` -- combine channel-0-dominant::

        combined = d_0 + tie_break * (d_1 + ... + d_{K-1})

    Channel 0 is the production signature the dictionary and band
    were designed around; the extra channels exist to *split its
    ambiguity groups*, whose member faults sit at exactly equal
    channel-0 distance from every observed die (their channel-0
    signatures coincide).  A small ``tie_break`` weight therefore
    lets the second signature decide precisely where channel 0 is
    blind, without letting its re-partitioned zone map outvote
    channel 0 anywhere else -- the multi study's group-aware accuracy
    provably cannot drop below the single-channel one at a
    sufficiently small weight, and the defaults sit well inside the
    stable plateau (see the second-signature tests).

    Two degeneracy properties the diagnosis flow relies on:

    * with K = 1 the combined matrix *is* the single-channel matrix,
      so multi matching equals :class:`DictionaryMatcher` exactly
      (same distances, same candidate order, same margins);
    * a fault pair at combined distance zero is indistinguishable in
      *every* channel -- one channel separating the pair is enough to
      split its ambiguity group.
    """

    def __init__(self, dictionary: MultiFaultDictionary,
                 tie_break: float = 1e-3) -> None:
        if tie_break <= 0.0:
            raise ValueError("tie_break weight must be positive (0 "
                             "would discard the extra channels)")
        self.dictionary = dictionary
        self.tie_break = float(tie_break)
        self._matchers = [DictionaryMatcher(channel)
                          for channel in dictionary.channels]

    def _check(self, batch: MultiSignatureBatch) -> None:
        if not isinstance(batch, MultiSignatureBatch):
            raise TypeError("multi-channel matching needs a "
                            "MultiSignatureBatch (run the campaign "
                            "with encoders=dictionary.encoders)")
        if batch.num_channels != self.dictionary.num_channels:
            raise ValueError(
                f"batch carries {batch.num_channels} channels but the "
                f"dictionary has {self.dictionary.num_channels}")

    # ------------------------------------------------------------------
    def channel_distances(self, batch: MultiSignatureBatch,
                          metric: str = "ndf") -> List[np.ndarray]:
        """Per-channel ``(N, F)`` distance matrices, channel order."""
        self._check(batch)
        return [matcher.distance_matrix(batch.channel(k), metric)
                for k, matcher in enumerate(self._matchers)]

    def stacked_distances(self, batch: MultiSignatureBatch,
                          metric: str = "ndf") -> np.ndarray:
        """The concatenated ``(N, K*F)`` die-to-(channel, fault) view."""
        return np.hstack(self.channel_distances(batch, metric))

    def distance_matrix(self, batch: MultiSignatureBatch,
                        metric: str = "ndf") -> np.ndarray:
        """Combined ``(N, F)`` distances, channel-0-dominant.

        Channel 0 at full weight plus the extra channels at the
        ``tie_break`` weight; with K = 1 this returns the
        single-channel matrix unchanged.
        """
        columns = self.channel_distances(batch, metric)
        combined = columns[0]
        for extra in columns[1:]:
            combined = combined + self.tie_break * extra
        return combined

    def match(self, batch: MultiSignatureBatch, top_k: int = 3,
              metric: str = "ndf",
              die_labels: Optional[Sequence[str]] = None
              ) -> DiagnosisResult:
        """Diagnose every die through all channels in one pass.

        Identical ranking semantics to :meth:`DictionaryMatcher.match`
        (stable argsort, fault-index tie-break; both delegate to one
        shared body) on the combined matrix; the returned result's
        ``batch`` is channel 0, so the per-die report edge unpacks
        the production signature.
        """
        self._check(batch)
        with span("dictionary.match", dies=len(batch),
                  faults=len(self.dictionary), metric=metric,
                  channels=batch.num_channels):
            return _match_from_distances(
                lambda: self.distance_matrix(batch, metric),
                self.dictionary.labels, batch.channel(0), top_k,
                metric, die_labels)
