"""Ambiguity, coverage and confusion analysis of a fault dictionary.

Compiling a dictionary is only half the story: diagnosis is limited by
how far apart the faults land in signature space.  This module
quantifies that:

* :func:`fault_distance_matrix` -- pairwise fault-to-fault NDF (or
  dwell) distances, computed with the same fleet kernel the matcher
  uses;
* :func:`ambiguity_groups` -- connected components of faults closer
  than an epsilon: within a group the signature cannot tell members
  apart, so a diagnosis should report the whole group;
* :func:`detectability_report` -- which faults the calibrated
  :class:`~repro.core.decision.DecisionBand` flags at all (an
  undetectable fault never reaches diagnosis);
* :func:`confusion_study` -- the end-to-end proof: a Monte
  Carlo-perturbed fleet of faulty dies is screened and diagnosed, and
  the true-fault x predicted-fault confusion matrix shows where
  diagnosis holds up and where ambiguity bites.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.campaign.scenarios import CutListPopulation
from repro.diagnosis.dictionary import FaultDictionary
from repro.diagnosis.matcher import DictionaryMatcher
from repro.diagnosis.result import DiagnosisResult, json_number
from repro.filters.faults import Fault
from repro.filters.towthomas import TowThomasBiquad, TowThomasValues

#: Entropy-domain tag ("Diag") mixed into the perturbed-fleet seed
#: root, so diagnosis fleets never share per-die streams with the
#: campaign population builders or the noise campaigns.
DIAGNOSIS_SEED_DOMAIN = 0x44696167

_COMPONENTS = ("r1", "r2", "r3", "r4", "r5", "c1", "c2")


def fault_distance_matrix(dictionary: FaultDictionary,
                          metric: str = "ndf") -> np.ndarray:
    """Pairwise ``(F, F)`` fault-to-fault distances.

    Column ``j`` is one fleet-kernel pass of the whole dictionary
    batch against fault ``j``'s signature -- the same operation the
    matcher performs for observed dies, so dictionary-space geometry
    and matching geometry agree exactly.  The NDF is symmetric, hence
    so is the matrix (up to identical float operations); the diagonal
    is exactly zero.
    """
    matcher = DictionaryMatcher(dictionary)
    return matcher.distance_matrix(dictionary.batch, metric)


def ambiguity_groups(dictionary: FaultDictionary,
                     epsilon: float = 1e-9,
                     matrix: Optional[np.ndarray] = None,
                     metric: str = "ndf") -> List[List[int]]:
    """Cluster faults the signature cannot tell apart.

    Two faults are directly ambiguous when their distance is at most
    ``epsilon``; groups are the connected components of that relation
    (union-find), so chains of near-identical signatures merge.
    Returns index groups in first-member order; singleton groups mean
    the fault is uniquely identifiable at this epsilon.
    """
    if matrix is None:
        matrix = fault_distance_matrix(dictionary, metric)
    f = len(dictionary)
    parent = list(range(f))

    def find(a: int) -> int:
        while parent[a] != a:
            parent[a] = parent[parent[a]]
            a = parent[a]
        return a

    for i in range(f):
        for j in range(i + 1, f):
            if matrix[i, j] <= epsilon:
                ri, rj = find(i), find(j)
                if ri != rj:
                    parent[max(ri, rj)] = min(ri, rj)
    groups: Dict[int, List[int]] = {}
    for i in range(f):
        groups.setdefault(find(i), []).append(i)
    return [groups[root] for root in sorted(groups)]


@dataclass
class FaultCoverage:
    """Detectability of a fault universe under one decision band."""

    labels: List[str]
    ndfs: np.ndarray
    threshold: float
    detectable: np.ndarray

    @property
    def coverage(self) -> float:
        """Fraction of the universe the band detects (1.0 if empty)."""
        if self.detectable.size == 0:
            return 1.0
        return float(np.mean(self.detectable))

    @property
    def escapes(self) -> List[str]:
        """Labels of the faults the screen never flags."""
        return [label for label, hit in zip(self.labels,
                                            self.detectable)
                if not hit]

    def summary(self) -> str:
        lines = [f"coverage:    "
                 f"{int(np.count_nonzero(self.detectable))}/"
                 f"{self.detectable.size} faults detectable "
                 f"({self.coverage:.0%} at threshold "
                 f"{self.threshold:.4f})"]
        if self.escapes:
            lines.append("escapes:     " + ", ".join(self.escapes))
        return "\n".join(lines)


def detectability_report(dictionary: FaultDictionary,
                         threshold: Optional[float] = None
                         ) -> FaultCoverage:
    """Per-fault detectability under the calibrated decision band."""
    detectable = dictionary.detectable(threshold)
    threshold = threshold if threshold is not None \
        else dictionary.threshold
    return FaultCoverage(dictionary.labels,
                         dictionary.ndfs.copy(), float(threshold),
                         detectable)


# ----------------------------------------------------------------------
# Monte Carlo-perturbed fault fleets
# ----------------------------------------------------------------------
def perturbed_fault_fleet(values: TowThomasValues,
                          faults: Sequence[Fault],
                          per_fault: int = 20,
                          sigma: float = 0.02,
                          seed: int = 0
                          ) -> Tuple[CutListPopulation, np.ndarray]:
    """A fleet of faulty dies with process spread on top of the fault.

    Die ``(j, m)`` injects fault ``j`` into ``values`` and then
    scatters *every* component by an independent relative Gaussian
    (``sigma`` = 1-sigma fraction), modelling that real defective dies
    also carry process variation.  Perturbation happens after fault
    injection, so a short stays a short and an open stays an open.
    Seeding is a pure function of ``(seed, j, m)`` through spawned
    :class:`numpy.random.SeedSequence` children in a diagnosis-owned
    entropy domain -- fleets are reproducible and independent of the
    campaign's own Monte Carlo streams.

    Returns the population plus the aligned ground-truth fault index
    per die.
    """
    if per_fault < 1:
        raise ValueError("need at least one die per fault")
    if sigma < 0:
        raise ValueError("sigma must be non-negative")
    children = np.random.SeedSequence(
        [seed, DIAGNOSIS_SEED_DOMAIN]).spawn(len(faults) * per_fault)
    cuts: List[TowThomasBiquad] = []
    labels: List[str] = []
    truth: List[int] = []
    for j, fault in enumerate(faults):
        base = fault.apply_to_values(values)
        for m in range(per_fault):
            rng = np.random.default_rng(children[j * per_fault + m])
            factors = {name: 1.0 + sigma * rng.standard_normal()
                       for name in _COMPONENTS}
            cuts.append(TowThomasBiquad(base.scaled(**factors)))
            labels.append(f"{fault.label}#{m:03d}")
            truth.append(j)
    return (CutListPopulation(cuts, labels),
            np.asarray(truth, dtype=np.int64))


@dataclass
class ConfusionStudy:
    """End-to-end screen+diagnose outcome over a perturbed fleet.

    Attributes
    ----------
    matrix:
        ``(F, F)`` counts: row = injected fault, column = diagnosed
        top-1 fault, over the dies the screen flagged FAIL.
    labels:
        Fault labels shared by both axes.
    detected:
        Per-fault count of dies the screen flagged (diagnosable).
    injected:
        Per-fault count of dies injected.
    diagnosis:
        The fleet :class:`DiagnosisResult` (failing dies only).
    true_indices:
        Ground-truth fault index of each diagnosed (failing) die,
        aligned with the diagnosis rows.
    timing:
        Wall-clock seconds: screening vs matching.
    """

    matrix: np.ndarray
    labels: List[str]
    detected: np.ndarray
    injected: np.ndarray
    diagnosis: DiagnosisResult
    true_indices: np.ndarray
    timing: Dict[str, float] = field(default_factory=dict)

    @property
    def accuracy(self) -> float:
        """Top-1 accuracy over the detected dies (NaN when none)."""
        return self.diagnosis.accuracy(self.true_indices)

    @property
    def detection_rate(self) -> float:
        """Fraction of injected dies the screen flagged at all."""
        total = float(self.injected.sum())
        if total == 0:
            return float("nan")
        return float(self.detected.sum()) / total

    def group_accuracy(self, groups: Sequence[Sequence[int]]) -> float:
        """Top-1 accuracy up to ambiguity groups.

        Delegates to :meth:`DiagnosisResult.group_accuracy` -- one
        canonical definition of "a prediction inside the injected
        fault's group counts as correct".
        """
        return self.diagnosis.group_accuracy(self.true_indices, groups)

    def summary(self) -> str:
        lines = [f"fleet:       {int(self.injected.sum())} faulty "
                 f"dies ({len(self.labels)} faults x "
                 f"{int(self.injected[0]) if self.injected.size else 0}"
                 f" perturbed instances)",
                 f"detected:    {int(self.detected.sum())} "
                 f"({self.detection_rate:.0%} of injected)",
                 f"top-1:       {self.accuracy:.1%} of detected dies "
                 f"diagnosed to the injected fault"]
        worst = []
        for i, label in enumerate(self.labels):
            if self.detected[i]:
                hit = self.matrix[i, i] / self.detected[i]
                if hit < 1.0:
                    worst.append((hit, label))
        if worst:
            worst.sort()
            lines.append("confused:    " + ", ".join(
                f"{label} ({hit:.0%})" for hit, label in worst[:6]))
        total = self.timing.get("total")
        if total:
            lines.append(f"wall-clock:  {total * 1e3:.1f} ms "
                         f"(screen {self.timing.get('screen', 0) * 1e3:.1f}"
                         f" / match {self.timing.get('match', 0) * 1e3:.1f})")
        return "\n".join(lines)

    def to_payload(self) -> dict:
        """JSON-ready machine summary (CLI / CI artifacts)."""
        return {
            "labels": list(self.labels),
            "matrix": self.matrix.tolist(),
            "injected": self.injected.tolist(),
            "detected": self.detected.tolist(),
            "accuracy": json_number(self.accuracy),
            "detection_rate": json_number(self.detection_rate),
            "timing": self.timing,
        }


def confusion_study(engine, dictionary,
                    values: Optional[TowThomasValues] = None,
                    per_fault: int = 10, sigma: float = 0.02,
                    seed: int = 0, metric: str = "ndf",
                    top_k: int = 3) -> ConfusionStudy:
    """Screen and diagnose a Monte Carlo-perturbed fault fleet.

    The fleet runs through the campaign engine once
    (``keep_signatures=True``); the dies the band flags FAIL are
    matched against the dictionary and tallied into the confusion
    matrix.  Dies the screen passes (escapes) count against the
    detection rate but never reach the matcher -- exactly the
    production flow.

    ``dictionary`` may be a single-channel :class:`FaultDictionary`
    or a K-channel
    :class:`~repro.diagnosis.dictionary.MultiFaultDictionary`.  In
    the multi case the fleet screens through the dictionary's own
    encoder list (the front half still runs once per die) and the
    FAIL gate stays the *channel-0* verdict at the channel-0
    threshold -- so single and multi studies over the same seed
    diagnose exactly the same failing dies, and accuracy deltas
    measure the second signature alone.

    The dictionary must have been compiled for this engine's
    configuration: a dictionary loaded from disk that was built on a
    different stimulus, encoder or capture grid lives in a different
    signature space, and matching across spaces silently degrades --
    so the golden signatures are compared up front.
    """
    import time

    from repro.diagnosis.dictionary import MultiFaultDictionary

    multi = isinstance(dictionary, MultiFaultDictionary)
    primary = dictionary.channel(0) if multi else dictionary
    if values is None:
        values = TowThomasValues.from_spec(engine.config.golden_spec)
    if primary.golden_signature != engine.golden().signature:
        raise ValueError(
            "dictionary was compiled for a different configuration "
            "(its golden signature does not match this engine's); "
            "recompile with compile_fault_dictionary(engine) or screen "
            "with the configuration the dictionary was saved from")
    threshold = dictionary.threshold
    if threshold is None:
        raise ValueError("dictionary carries no decision threshold")
    population, truth = perturbed_fault_fleet(
        values, dictionary.faults, per_fault, sigma, seed)
    t0 = time.perf_counter()
    result = engine.run(population, band=float(threshold),
                        keep_signatures=True,
                        encoders=dictionary.encoders if multi else None)
    t_screen = time.perf_counter() - t0
    failing = result.failing_indices()
    t0 = time.perf_counter()
    diagnosis = result.diagnose(dictionary, top_k=top_k,
                                failing_only=True, metric=metric)
    t_match = time.perf_counter() - t0
    f = len(dictionary)
    matrix = np.zeros((f, f), dtype=np.int64)
    true_failing = truth[failing]
    np.add.at(matrix, (true_failing, diagnosis.best_indices), 1)
    injected = np.bincount(truth, minlength=f)
    detected = np.bincount(true_failing, minlength=f)
    return ConfusionStudy(
        matrix=matrix, labels=dictionary.labels, detected=detected,
        injected=injected, diagnosis=diagnosis,
        true_indices=true_failing,
        timing={"screen": t_screen, "match": t_match,
                "total": t_screen + t_match})
