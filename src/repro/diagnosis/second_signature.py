"""Adaptive second-signature search: split ambiguity groups.

PR 3's geometry analysis proved that some faults are *indistinguishable
in single-signature space*: their zone-code trajectories coincide for
the whole period, so every matcher must confuse them (e.g.
``{r1-open, r5-short}``, which kill the same gain path).  The
fault-trajectory literature resolves such collisions by observing the
CUT through additional response views.  This module automates the
choice of that second view:

1. start from a compiled dictionary's ambiguity groups
   (:func:`repro.diagnosis.ambiguity_groups`);
2. synthesize the fault universe's traces **once** through the
   campaign front half (the stacked-MNA sweep of
   :func:`repro.campaign.batch.batch_netlist_traces`);
3. re-encode those same traces through every candidate monitor bank
   (:func:`repro.monitor.second_signature.default_candidates`: Table I
   bias shifts and Y-level detectors, via the fused bank encoder) and
   measure the intra-group fault separations each candidate achieves;
4. classify: pairs whose *traces* already coincide are **invisible by
   construction** -- no monitor bank can ever split them (the matched
   inverter pair ``r4-open``/``r4-short``); pairs split by no
   candidate are unresolved *by this family*; the rest are resolvable;
5. pick the candidate maximizing the worst-case separation over the
   resolvable pairs (ties: more pairs split, then higher mean
   separation, then candidate order).

The chosen bank becomes signature channel 1: compile a
:class:`~repro.diagnosis.dictionary.MultiFaultDictionary` with
``search.encoders`` and screen with
``engine.run(..., encoders=search.encoders)`` -- channel 0 stays
bit-identical to the production flow while the combined distances
separate the split groups.  See ``docs/ambiguity.md`` for the
resulting geometry and ``examples/second_signature.py`` for the full
walk-through.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.campaign.batch import (
    batch_codes,
    batch_extract,
    batch_multitone_eval,
    batch_netlist_traces,
    batch_responses,
)
from repro.core.signature_batch import SignatureBatch
from repro.diagnosis.analysis import ambiguity_groups, fault_distance_matrix
from repro.diagnosis.dictionary import FaultDictionary
from repro.filters.towthomas import TowThomasValues
from repro.monitor.second_signature import (
    SecondBankCandidate,
    default_candidates,
)

#: Two fault traces closer than this (volts, max-abs over the period)
#: are the *same response*: no monitor bank, present or future, can
#: tell them apart -- "invisible by construction".
TRACE_ATOL = 1e-9


@dataclass
class GroupResolution:
    """Outcome of the search for one single-signature ambiguity group.

    ``status`` is one of:

    * ``"resolved"`` -- the combined two-channel distances split the
      group into singletons;
    * ``"partial"`` -- the group broke up, but some members remain
      together (typically around an invisible pair);
    * ``"invisible"`` -- every pair of the group shares one response
      trace; unresolvable by any boundary configuration;
    * ``"unresolved"`` -- traces differ, but no candidate bank
      separated them (e.g. responses saturating far outside the
      signal window, identical through every in-window boundary).
    """

    labels: List[str]
    status: str
    subgroups_after: List[List[str]]


@dataclass
class SecondSignatureSearch:
    """Result of one adaptive second-signature search.

    Attributes
    ----------
    best:
        Winning candidate (None when there was nothing to split).
    encoders:
        ``[channel-0 encoder, best second encoder]`` -- ready for
        ``engine.run(..., encoders=...)`` and
        :func:`~repro.diagnosis.dictionary.compile_multi_fault_dictionary`.
    labels:
        Dictionary fault labels (row order of the matrices).
    groups_before / groups_after:
        Multi-member ambiguity groups in channel-0 space and in the
        combined two-channel space (index groups).
    resolutions:
        Per-group outcome, aligned with ``groups_before``.
    pair_separations:
        ``{candidate name: {(i, j): second-channel separation}}`` over
        the intra-group pairs.
    scores:
        ``{candidate name: worst-case separation over the resolvable
        pairs}`` -- the search objective.
    second_matrix:
        The best candidate's full ``(F, F)`` second-channel distance
        matrix (None when no candidate was chosen).
    timing:
        Wall-clock seconds per stage (traces synthesized once;
        ``encode`` covers all candidates together).
    """

    best: Optional[SecondBankCandidate]
    encoders: List
    labels: List[str]
    groups_before: List[List[int]]
    groups_after: List[List[int]]
    resolutions: List[GroupResolution]
    pair_separations: Dict[str, Dict[Tuple[int, int], float]]
    scores: Dict[str, float]
    second_matrix: Optional[np.ndarray] = None
    timing: Dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def _by_status(self, status: str) -> List[List[str]]:
        return [r.labels for r in self.resolutions
                if r.status == status]

    @property
    def resolved_groups(self) -> List[List[str]]:
        """Groups the second signature splits into singletons."""
        return self._by_status("resolved")

    @property
    def partial_groups(self) -> List[List[str]]:
        """Groups that split, with some members still colliding."""
        return self._by_status("partial")

    @property
    def invisible_groups(self) -> List[List[str]]:
        """Groups whose members share one response trace."""
        return self._by_status("invisible")

    @property
    def unresolved_groups(self) -> List[List[str]]:
        """Distinct-trace groups no candidate bank separated."""
        return self._by_status("unresolved")

    def summary(self) -> str:
        """Human-readable block (CLI / example output)."""
        chosen = self.best.name if self.best is not None else "(none)"
        lines = [f"second bank: {chosen} "
                 f"(searched {len(self.scores)} candidates)"]
        for resolution in self.resolutions:
            members = ", ".join(resolution.labels)
            if resolution.status in ("resolved", "partial"):
                after = " | ".join(
                    "{" + ", ".join(sub) + "}"
                    for sub in resolution.subgroups_after)
                lines.append(f"  {resolution.status:<11}"
                             f"{{{members}}} -> {after}")
            else:
                lines.append(f"  {resolution.status:<11}{{{members}}}")
        total = self.timing.get("total")
        if total:
            lines.append(f"search:      {total * 1e3:.1f} ms "
                         f"(traces "
                         f"{self.timing.get('traces', 0) * 1e3:.1f} / "
                         f"encode "
                         f"{self.timing.get('encode', 0) * 1e3:.1f})")
        return "\n".join(lines)


def _fault_trace_stack(engine, dictionary: FaultDictionary,
                       values: Optional[TowThomasValues]
                       ) -> Tuple[np.ndarray, np.ndarray, float,
                                  np.ndarray]:
    """(x, times, period, (F, T) trace stack) of the fault universe."""
    golden = engine.golden()
    if values is None:
        values = TowThomasValues.from_spec(engine.config.golden_spec)
    cuts = [fault.apply_to_biquad(values)
            for fault in dictionary.faults]
    stack = batch_netlist_traces(cuts, engine.config.stimulus,
                                 golden.times)
    if stack is None:
        responses = batch_responses(cuts, engine.config.stimulus)
        stack = batch_multitone_eval(responses, golden.times)
    return golden.x, golden.times, golden.period, np.asarray(stack)


def _intra_pairs(groups: Sequence[Sequence[int]]
                 ) -> List[Tuple[int, int]]:
    pairs = []
    for group in groups:
        for a in range(len(group)):
            for b in range(a + 1, len(group)):
                pairs.append((group[a], group[b]))
    return pairs


def _pair_separation(batch: SignatureBatch, i: int, j: int) -> float:
    """Second-channel NDF distance between fault rows i and j."""
    return float(batch.select(np.asarray([i])).ndf_to(batch.row(j))[0])


def search_second_signature(engine, dictionary: FaultDictionary,
                            candidates: Optional[
                                Sequence[SecondBankCandidate]] = None,
                            values: Optional[TowThomasValues] = None,
                            epsilon: float = 1e-9
                            ) -> SecondSignatureSearch:
    """Search candidate second banks that split ambiguity groups.

    ``dictionary`` is the engine's compiled single-channel dictionary;
    its ambiguity groups (at ``epsilon``) define what needs splitting.
    ``candidates`` defaults to
    :func:`repro.monitor.second_signature.default_candidates`.  The
    expensive front half -- synthesizing the fault universe's traces
    -- runs exactly once; each candidate only pays one fused encode of
    the shared ``(F, T)`` stack.

    The whole search lives in exact-NDF signature space -- the metric
    the paper's signature defines and the one the fleet matcher's
    combined distances use; the alignment-free ``"dwell"`` matching
    metric has a different (coarser) geometry and is deliberately not
    an option here.
    """
    start = time.perf_counter()
    timing: Dict[str, float] = {}
    candidates = list(candidates) if candidates is not None \
        else default_candidates()
    matrix0 = fault_distance_matrix(dictionary, "ndf")
    groups_before = [group for group in
                     ambiguity_groups(dictionary, epsilon, matrix0,
                                      "ndf")
                     if len(group) > 1]
    labels = dictionary.labels

    t0 = time.perf_counter()
    x, times, period, stack = _fault_trace_stack(engine, dictionary,
                                                 values)
    timing["traces"] = time.perf_counter() - t0

    pairs = _intra_pairs(groups_before)
    invisible = {
        (i, j) for i, j in pairs
        if float(np.max(np.abs(stack[i] - stack[j]),
                        initial=0.0)) <= TRACE_ATOL}
    eligible = [pair for pair in pairs if pair not in invisible]

    t0 = time.perf_counter()
    pair_separations: Dict[str, Dict[Tuple[int, int], float]] = {}
    batches: Dict[str, SignatureBatch] = {}
    for candidate in candidates:
        codes = batch_codes(candidate.encoder, x, stack)
        batch = batch_extract(times, codes, period)
        batches[candidate.name] = batch
        pair_separations[candidate.name] = {
            pair: _pair_separation(batch, *pair) for pair in eligible}
    timing["encode"] = time.perf_counter() - t0

    # A pair is *resolvable* when at least one candidate separates it;
    # the objective is the worst case over exactly those pairs, so one
    # out-of-reach pair (e.g. two responses saturating outside the
    # window) does not flatten every candidate's score to zero.
    resolvable = [pair for pair in eligible
                  if any(seps[pair] > epsilon
                         for seps in pair_separations.values())]

    def score(candidate: SecondBankCandidate) -> Tuple[float, int, float]:
        seps = pair_separations[candidate.name]
        if not resolvable:
            return (0.0, 0, 0.0)
        values_ = [seps[pair] for pair in resolvable]
        split = sum(1 for v in values_ if v > epsilon)
        return (min(values_), split, float(np.mean(values_)))

    scores = {c.name: score(c)[0] for c in candidates}
    best: Optional[SecondBankCandidate] = None
    if resolvable:
        best = max(candidates, key=score)

    # Combined two-channel geometry: channel-0 distances plus the best
    # candidate's full second-channel matrix.
    second_matrix = None
    groups_after = groups_before
    if best is not None:
        batch = batches[best.name]
        signatures = batch.to_signatures()
        second_matrix = np.stack(
            [batch.ndf_to(signature) for signature in signatures],
            axis=1)
        combined = matrix0 + second_matrix
        groups_after = [group for group in
                        ambiguity_groups(dictionary, epsilon, combined,
                                         "ndf")
                        if len(group) > 1]

    after_member: Dict[int, List[int]] = {}
    for group in groups_after:
        for index in group:
            after_member[index] = group
    resolutions = []
    for group in groups_before:
        group_pairs = _intra_pairs([group])
        subgroups: List[List[int]] = []
        seen: set = set()
        for index in group:
            if index in seen:
                continue
            sub = [i for i in after_member.get(index, [index])
                   if i in group]
            seen.update(sub)
            subgroups.append(sub)
        if all(pair in invisible for pair in group_pairs):
            status = "invisible"
        elif all(len(sub) == 1 for sub in subgroups):
            status = "resolved"
        elif len(subgroups) == 1:
            status = "unresolved"
        else:
            status = "partial"
        resolutions.append(GroupResolution(
            [labels[i] for i in group], status,
            [[labels[i] for i in sub] for sub in subgroups]))

    timing["total"] = time.perf_counter() - start
    return SecondSignatureSearch(
        best=best,
        encoders=[engine.config.encoder]
        + ([best.encoder] if best is not None else []),
        labels=list(labels),
        groups_before=groups_before, groups_after=groups_after,
        resolutions=resolutions, pair_separations=pair_separations,
        scores=scores, second_matrix=second_matrix, timing=timing)
