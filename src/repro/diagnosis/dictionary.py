"""Fault-dictionary compilation: the signature of every known fault.

The paper's digital signature is more than a pass/fail oracle -- a
failing die's signature *shape* says which defect produced it.  The
classic fault-dictionary flow compiles that knowledge once per test
configuration:

1. every fault of the universe (catastrophic opens/shorts of the
   Tow-Thomas components plus parametric deviation classes) is injected
   into the structural netlist and simulated through the *same*
   :class:`~repro.campaign.engine.CampaignEngine` front half that
   screens production dies -- the faulted circuits share the
   Tow-Thomas topology, so their traces synthesize through one
   stacked-MNA sweep (:func:`repro.circuits.ac.ac_analysis_batch`:
   one batched ``np.linalg.solve`` per tone frequency plus one
   batched DC pass) instead of per-cut, per-frequency rebuild/solve
   loops, with bit-identical rows to the sequential compile;
2. each fault's packed signature row, its NDF against the golden and a
   code-space feature vector (fraction of the period dwelt in each
   zone code) are stored in a :class:`FaultDictionary`;
3. the dictionary is content-keyed in the campaign's
   :class:`~repro.campaign.cache.GoldenCache` -- recompiling for the
   same (stimulus, encoder, golden, sampling, fault universe,
   component values) is a cache hit, exactly like golden signatures --
   and serializes to ``.npz`` for cross-process reuse
   (:meth:`FaultDictionary.save` / :meth:`FaultDictionary.load`).

The matcher (:mod:`repro.diagnosis.matcher`) scores failing fleets
against the dictionary; the analysis module
(:mod:`repro.diagnosis.analysis`) quantifies which faults the
dictionary can actually tell apart.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.campaign.scenarios import CutListPopulation
from repro.core.signature import Signature
from repro.core.signature_batch import SignatureBatch
from repro.filters.faults import (
    Fault,
    FaultKind,
    catastrophic_fault_universe,
    parametric_sweep,
)
from repro.filters.towthomas import TowThomasValues
from repro.obs.trace import span

#: Parametric deviation classes compiled into the default dictionary:
#: clearly-failing shifts of each behavioural parameter, one class per
#: sign, mirroring the paper's "different degrees of deviation".
DEFAULT_PARAMETRIC_CLASSES: Tuple[Tuple[str, float], ...] = (
    ("f0", -0.15), ("f0", +0.15),
    ("q", -0.35), ("q", +0.35),
    ("gain", -0.35), ("gain", +0.35),
)


def default_fault_universe(parametric: bool = True) -> List[Fault]:
    """The dictionary's default universe.

    All single opens/shorts of the Tow-Thomas components, plus (unless
    ``parametric`` is False) the :data:`DEFAULT_PARAMETRIC_CLASSES`
    deviation classes.
    """
    faults = catastrophic_fault_universe()
    if parametric:
        for target, deviation in DEFAULT_PARAMETRIC_CLASSES:
            faults.extend(parametric_sweep((target,), (deviation,)))
    return faults


def fault_key(fault: Fault) -> Tuple:
    """Hashable content key of one fault."""
    return (fault.kind.value, fault.target, float(fault.deviation))


def values_key(values: TowThomasValues) -> Tuple:
    """Hashable content key of a Tow-Thomas component set."""
    return (values.r1, values.r2, values.r3, values.r4, values.r5,
            values.c1, values.c2)


def dwell_features(batch: SignatureBatch, num_bits: int) -> np.ndarray:
    """Code-space feature vectors: per-row zone-dwell fractions.

    Row ``i`` of the result is the fraction of the period row ``i``
    spends in each of the ``2**num_bits`` zone codes -- an
    alignment-free summary of the signature used by the fast
    ``"dwell"`` matching metric and by human-readable fault reports.
    One scatter-add pass over the flat CSR arrays, no per-row loops.
    """
    n = len(batch)
    width = 1 << int(num_bits)
    if batch.codes.size and int(batch.codes.max()) >= width:
        raise ValueError("batch carries codes wider than num_bits")
    features = np.zeros((n, width))
    if n == 0 or batch.codes.size == 0:
        return features
    rows = np.repeat(np.arange(n), batch.runs_per_row)
    np.add.at(features, (rows, batch.codes), batch.durations)
    return features / batch.periods[:, None]


@dataclass
class FaultDictionary:
    """Signature-space dictionary of a fault universe.

    Attributes
    ----------
    batch:
        Packed signatures, one row per fault (universe order).
    ndfs:
        Per-fault NDF against the golden signature -- the fault's
        "distance from healthy", which decides detectability.
    features:
        ``(F, 2**num_bits)`` zone-dwell fractions per fault.
    faults:
        The fault universe, aligned with the rows.
    golden_signature:
        The configuration's golden reference (matching is relative to
        the same capture the dies were screened with).
    num_bits:
        Monitor-bank width (codes live in ``[0, 2**num_bits)``).
    period:
        Signature period in seconds.
    threshold:
        NDF decision threshold of the compiling engine's calibrated
        band (None when compiled without a band); used by the
        detectability analysis.
    """

    batch: SignatureBatch
    ndfs: np.ndarray
    features: np.ndarray
    faults: List[Fault]
    golden_signature: Signature
    num_bits: int
    period: float
    threshold: Optional[float] = None

    def __post_init__(self) -> None:
        self.ndfs = np.asarray(self.ndfs, dtype=float)
        f = len(self.faults)
        if len(self.batch) != f or self.ndfs.shape != (f,) \
                or self.features.shape[0] != f:
            raise ValueError("dictionary rows must align with the "
                             "fault universe")

    def __len__(self) -> int:
        return len(self.faults)

    @property
    def labels(self) -> List[str]:
        """Human-readable fault identifiers, row order."""
        return [fault.label for fault in self.faults]

    def signature(self, i: int) -> Signature:
        """Unpack fault ``i``'s signature (report edge only)."""
        return self.batch.row(i)

    def detectable(self, threshold: Optional[float] = None) -> np.ndarray:
        """Boolean mask of faults the decision band flags at all.

        A fault whose own NDF sits inside the acceptance band never
        reaches the diagnosis stage -- it is a test escape, not a
        diagnosis candidate.
        """
        threshold = threshold if threshold is not None else self.threshold
        if threshold is None:
            raise ValueError("need a decision threshold (compile with "
                             "a band or pass one explicitly)")
        return self.ndfs > float(threshold)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def save(self, path) -> str:
        """Serialize to a ``.npz`` archive (portable, content-complete).

        Everything needed to rebuild the dictionary travels in the
        archive: the packed CSR arrays, the golden signature's runs,
        the feature matrix and a JSON header with the fault universe.
        Returns the actual file path written: ``numpy.savez`` appends
        ``.npz`` to bare names, so the suffix is normalized here
        rather than silently diverging from the requested path.
        """
        path = str(path)
        if not path.endswith(".npz"):
            path += ".npz"
        meta = {
            "num_bits": int(self.num_bits),
            "period": float(self.period),
            "threshold": (None if self.threshold is None
                          else float(self.threshold)),
            "faults": [{"kind": fault.kind.value,
                        "target": fault.target,
                        "deviation": float(fault.deviation)}
                       for fault in self.faults],
        }
        np.savez_compressed(
            path,
            codes=self.batch.codes, durations=self.batch.durations,
            row_offsets=self.batch.row_offsets,
            periods=self.batch.periods,
            ndfs=self.ndfs, features=self.features,
            golden_codes=np.asarray(self.golden_signature.codes(),
                                    dtype=np.int64),
            golden_durations=self.golden_signature.durations(),
            meta=np.asarray(json.dumps(meta)))
        return path

    @classmethod
    def load(cls, path) -> "FaultDictionary":
        """Rebuild a dictionary saved with :meth:`save`.

        Accepts the path with or without the ``.npz`` suffix (save
        normalizes to ``.npz``).
        """
        import os

        path = str(path)
        if not os.path.exists(path) and not path.endswith(".npz") \
                and os.path.exists(path + ".npz"):
            path += ".npz"
        with np.load(path, allow_pickle=False) as archive:
            meta = json.loads(str(archive["meta"]))
            batch = SignatureBatch(archive["codes"],
                                   archive["durations"],
                                   archive["row_offsets"],
                                   archive["periods"])
            golden = Signature.from_pairs(
                zip(archive["golden_codes"].tolist(),
                    archive["golden_durations"].tolist()),
                meta["period"])
            faults = [Fault(FaultKind(entry["kind"]), entry["target"],
                            entry["deviation"])
                      for entry in meta["faults"]]
            return cls(batch=batch, ndfs=archive["ndfs"],
                       features=archive["features"], faults=faults,
                       golden_signature=golden,
                       num_bits=meta["num_bits"],
                       period=meta["period"],
                       threshold=meta["threshold"])


@dataclass
class MultiFaultDictionary:
    """K per-channel fault dictionaries over one fault universe.

    The multi-signature analogue of :class:`FaultDictionary`: channel
    ``k`` holds the fault universe's packed signatures as seen through
    monitor bank ``k`` (channel 0 is the production bank -- its
    dictionary is bit-identical to a plain
    :func:`compile_fault_dictionary` run).  The matcher sums the
    per-channel distance matrices, so faults that collide in channel
    0's signature space separate as soon as *any* channel tells them
    apart -- this is what splits ambiguity groups.

    Attributes
    ----------
    channels:
        One :class:`FaultDictionary` per signature channel, all over
        the same fault universe (row-aligned).
    encoders:
        The monitor banks the channels were compiled with, in channel
        order; pass these to ``engine.run(..., encoders=...)`` so the
        screened fleet lives in the same K signature spaces.
    """

    channels: List[FaultDictionary]
    encoders: List

    def __post_init__(self) -> None:
        if not self.channels:
            raise ValueError("need at least one channel dictionary")
        if len(self.encoders) != len(self.channels):
            raise ValueError("need one encoder per channel")
        head = self.channels[0].labels
        for channel in self.channels[1:]:
            if channel.labels != head:
                raise ValueError("channel dictionaries must share the "
                                 "fault universe, row for row")

    def __len__(self) -> int:
        return len(self.channels[0])

    @property
    def num_channels(self) -> int:
        """Signature channels K."""
        return len(self.channels)

    @property
    def faults(self) -> List[Fault]:
        """The shared fault universe (channel order = row order)."""
        return self.channels[0].faults

    @property
    def labels(self) -> List[str]:
        """Human-readable fault identifiers, row order."""
        return self.channels[0].labels

    @property
    def threshold(self) -> Optional[float]:
        """Channel 0's decision threshold (the production screen)."""
        return self.channels[0].threshold

    def channel(self, k: int) -> FaultDictionary:
        """The single-channel dictionary of channel ``k``."""
        return self.channels[k]

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def save(self, path) -> str:
        """Serialize all K channels into one ``.npz`` archive.

        Mirrors :meth:`FaultDictionary.save`: channel ``k``'s packed
        CSR arrays, NDFs, features and golden runs travel under
        ``ch{k}_``-prefixed names, and one JSON header carries the
        shared fault universe plus per-channel scalars and encoder
        fingerprints.  Encoders themselves are *not* serialized (they
        are live objects); :meth:`load` re-attaches the ones you pass
        it after checking their fingerprints against the header.
        Returns the actual path written (``.npz`` suffix normalized).
        """
        from repro.campaign.cache import encoder_key

        path = str(path)
        if not path.endswith(".npz"):
            path += ".npz"
        arrays = {}
        channel_meta = []
        for k, channel in enumerate(self.channels):
            prefix = f"ch{k}_"
            arrays[prefix + "codes"] = channel.batch.codes
            arrays[prefix + "durations"] = channel.batch.durations
            arrays[prefix + "row_offsets"] = channel.batch.row_offsets
            arrays[prefix + "periods"] = channel.batch.periods
            arrays[prefix + "ndfs"] = channel.ndfs
            arrays[prefix + "features"] = channel.features
            arrays[prefix + "golden_codes"] = np.asarray(
                channel.golden_signature.codes(), dtype=np.int64)
            arrays[prefix + "golden_durations"] = \
                channel.golden_signature.durations()
            encoder = self.encoders[k]
            channel_meta.append({
                "num_bits": int(channel.num_bits),
                "period": float(channel.period),
                "threshold": (None if channel.threshold is None
                              else float(channel.threshold)),
                "encoder_fingerprint": (None if encoder is None
                                        else encoder_key(encoder)),
            })
        meta = {
            "num_channels": len(self.channels),
            "channels": channel_meta,
            "faults": [{"kind": fault.kind.value,
                        "target": fault.target,
                        "deviation": float(fault.deviation)}
                       for fault in self.faults],
        }
        np.savez_compressed(path, meta=np.asarray(json.dumps(meta)),
                            **arrays)
        return path

    @classmethod
    def load(cls, path, encoders=None) -> "MultiFaultDictionary":
        """Rebuild a multi-channel dictionary saved with :meth:`save`.

        ``encoders`` re-attaches the live monitor banks in channel
        order; each one's fingerprint is verified against the saved
        header, so a dictionary can never be silently matched through
        the wrong bank.  When omitted, the loaded dictionary carries
        ``None`` placeholders -- fine for inspection and matching
        (the matcher only reads signature rows), but
        ``engine.run(..., encoders=...)`` then needs the real banks
        from elsewhere.
        """
        import os

        from repro.campaign.cache import encoder_key

        path = str(path)
        if not os.path.exists(path) and not path.endswith(".npz") \
                and os.path.exists(path + ".npz"):
            path += ".npz"
        with np.load(path, allow_pickle=False) as archive:
            meta = json.loads(str(archive["meta"]))
            num_channels = int(meta["num_channels"])
            if encoders is not None:
                encoders = list(encoders)
                if len(encoders) != num_channels:
                    raise ValueError(
                        f"archive holds {num_channels} channels but "
                        f"{len(encoders)} encoders were given")
            faults = [Fault(FaultKind(entry["kind"]), entry["target"],
                            entry["deviation"])
                      for entry in meta["faults"]]
            channels = []
            for k in range(num_channels):
                prefix = f"ch{k}_"
                entry = meta["channels"][k]
                if encoders is not None and encoders[k] is not None:
                    saved = entry.get("encoder_fingerprint")
                    live = encoder_key(encoders[k])
                    if saved is not None and saved != live:
                        raise ValueError(
                            f"channel {k} encoder fingerprint "
                            f"mismatch: archive has {saved!r}, "
                            f"given bank has {live!r}")
                batch = SignatureBatch(archive[prefix + "codes"],
                                       archive[prefix + "durations"],
                                       archive[prefix + "row_offsets"],
                                       archive[prefix + "periods"])
                golden = Signature.from_pairs(
                    zip(archive[prefix + "golden_codes"].tolist(),
                        archive[prefix + "golden_durations"].tolist()),
                    entry["period"])
                channels.append(FaultDictionary(
                    batch=batch, ndfs=archive[prefix + "ndfs"],
                    features=archive[prefix + "features"],
                    faults=faults, golden_signature=golden,
                    num_bits=entry["num_bits"],
                    period=entry["period"],
                    threshold=entry["threshold"]))
            return cls(channels,
                       encoders if encoders is not None
                       else [None] * num_channels)


def compile_multi_fault_dictionary(engine, encoders,
                                   faults: Optional[Sequence[Fault]] = None,
                                   values: Optional[TowThomasValues] = None,
                                   band="auto") -> MultiFaultDictionary:
    """Compile K-channel dictionary rows through one front-half pass.

    The fault universe's netlists solve and synthesize **once**
    (stacked MNA + batched through-evaluation, exactly like
    :func:`compile_fault_dictionary`); every listed encoder then
    re-encodes the same trace stacks into its own signature channel.
    Channel 0 -- compiled through ``encoders[0]`` -- is bit-identical
    to the single-channel dictionary of an engine configured with that
    encoder.

    Rows are content-cached under the engine cache like single-channel
    dictionaries, keyed by every channel's golden key; per-channel
    detectability thresholds resolve from each channel's own Fig. 8
    calibration (``band="auto"``) or from the raw value given.
    """
    encoders = list(encoders)
    if not encoders:
        raise ValueError("need at least one encoder")
    multi_engine = engine.with_encoders(encoders)
    config = multi_engine.config
    fault_list = list(faults) if faults is not None \
        else default_fault_universe()
    if values is None:
        values = TowThomasValues.from_spec(config.golden_spec)
    key = ("multi_fault_dictionary",
           tuple(config.channel_config(k).golden_key()
                 for k in range(config.num_channels)),
           values_key(values), tuple(fault_key(f) for f in fault_list))

    def compute() -> MultiFaultDictionary:
        with span("dictionary.compile", faults=len(fault_list),
                  channels=config.num_channels):
            return _compute_multi()

    def _compute_multi() -> MultiFaultDictionary:
        cuts = [fault.apply_to_biquad(values) for fault in fault_list]
        population = CutListPopulation(
            cuts, [fault.label for fault in fault_list])
        result = multi_engine.run(population, band=None,
                                  keep_signatures=True)
        channels = []
        for k in range(config.num_channels):
            sub = multi_engine.channel_engine(k)
            num_bits = sub.config.encoder.num_bits
            if result.multi_signature_batch is not None:
                batch = result.multi_signature_batch.channel(k)
                ndfs = result.channel_ndfs[:, k]
            else:
                # K = 1 degenerates to the single-channel flow (an
                # encoder list of one is valid: the search returns it
                # when no group is resolvable).
                batch = result.signature_batch
                ndfs = result.ndfs
            channels.append(FaultDictionary(
                batch=batch, ndfs=ndfs,
                features=dwell_features(batch, num_bits),
                faults=fault_list,
                golden_signature=sub.golden().signature,
                num_bits=num_bits,
                period=sub.golden().period, threshold=None))
        return MultiFaultDictionary(channels, encoders)

    dictionary = engine.cache.get_or_compute(key, compute)
    thresholds = multi_engine.channel_thresholds(band)
    channels = []
    for k, channel in enumerate(dictionary.channels):
        threshold = None if thresholds is None else float(thresholds[k])
        if threshold != channel.threshold:
            channel = replace(channel, threshold=threshold)
        channels.append(channel)
    return MultiFaultDictionary(channels, dictionary.encoders)


def compile_fault_dictionary(engine, faults: Optional[Sequence[Fault]] = None,
                             values: Optional[TowThomasValues] = None,
                             band="auto") -> FaultDictionary:
    """Compile (or fetch from cache) the dictionary for one engine.

    Every fault is injected into the structural Tow-Thomas netlist
    (``values``, synthesized from the engine's golden spec when
    omitted) and simulated through the engine's own campaign front
    half -- same stimulus, capture grid and encoder as production
    screening, so dictionary rows live in the same signature space as
    the dies they will be matched against.  The faulted netlists share
    one topology, so the front half solves them as a single stacked
    MNA sweep (:func:`repro.circuits.ac.ac_analysis_batch`) rather
    than one AC analysis per fault per frequency; rows stay
    bit-identical to the sequential compile.

    The compiled rows are content-keyed in ``engine.cache`` under the
    engine's golden key plus the fault universe and component values,
    so repeated compilations (including across campaigns sharing a
    configuration) are cache hits.  ``band`` resolves the detectability
    threshold exactly like :meth:`CampaignEngine.run` and is attached
    after the cache lookup -- dictionaries compiled at different
    tolerances share their signature rows.
    """
    config = engine.config
    fault_list = list(faults) if faults is not None \
        else default_fault_universe()
    if values is None:
        values = TowThomasValues.from_spec(config.golden_spec)
    key = ("fault_dictionary", config.golden_key(),
           values_key(values), tuple(fault_key(f) for f in fault_list))

    def compute() -> FaultDictionary:
        with span("dictionary.compile", faults=len(fault_list),
                  channels=1):
            cuts = [fault.apply_to_biquad(values)
                    for fault in fault_list]
            population = CutListPopulation(
                cuts, [fault.label for fault in fault_list])
            result = engine.run(population, band=None,
                                keep_signatures=True)
            num_bits = config.encoder.num_bits
            return FaultDictionary(
                batch=result.signature_batch, ndfs=result.ndfs,
                features=dwell_features(result.signature_batch,
                                        num_bits),
                faults=fault_list,
                golden_signature=engine.golden().signature,
                num_bits=num_bits,
                period=engine.golden().period, threshold=None)

    dictionary = engine.cache.get_or_compute(key, compute)
    threshold = engine._resolve_threshold(band)
    if threshold != dictionary.threshold:
        dictionary = replace(dictionary, threshold=threshold)
    return dictionary
