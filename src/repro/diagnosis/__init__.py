"""Signature-space fault diagnosis: from "die failed" to "fault F".

The fourth pipeline stage of the reproduction.  The campaign engine
answers *whether* a die fails; this package answers *why*, with the
classic fault-dictionary method lifted into the repo's packed
signature representation:

* compile (:mod:`repro.diagnosis.dictionary`): simulate the fault
  universe once through the campaign front half and store each
  fault's packed signature row, NDF and code-space feature vector in
  a content-cached, serializable :class:`FaultDictionary`;
* match (:mod:`repro.diagnosis.matcher`): score an entire failing
  fleet's :class:`~repro.core.signature_batch.SignatureBatch` against
  the dictionary in one pass -- distance matrix, top-k candidates and
  confidence margins, per-die ``Signature`` objects only at the
  report edge;
* analyze (:mod:`repro.diagnosis.analysis`): pairwise fault
  distances, ambiguity-group clustering, detectability under the
  calibrated band, and confusion matrices over Monte Carlo-perturbed
  fault fleets.

Quick start (mirrors ``examples/fault_diagnosis.py``)::

    from repro import paper_setup
    from repro.diagnosis import compile_fault_dictionary

    setup = paper_setup(samples_per_period=2048)
    engine = setup.campaign_engine(tolerance=0.05)
    dictionary = compile_fault_dictionary(engine)      # cached
    result = engine.run(population, keep_signatures=True)
    diagnosis = result.diagnose(dictionary, top_k=3)
    print(diagnosis.summary())
"""

from repro.diagnosis.analysis import (
    DIAGNOSIS_SEED_DOMAIN,
    ConfusionStudy,
    FaultCoverage,
    ambiguity_groups,
    confusion_study,
    detectability_report,
    fault_distance_matrix,
    perturbed_fault_fleet,
)
from repro.diagnosis.dictionary import (
    DEFAULT_PARAMETRIC_CLASSES,
    FaultDictionary,
    MultiFaultDictionary,
    compile_fault_dictionary,
    compile_multi_fault_dictionary,
    default_fault_universe,
    dwell_features,
)
from repro.diagnosis.matcher import DictionaryMatcher, MultiDictionaryMatcher
from repro.diagnosis.result import (
    DieDiagnosis,
    DiagnosisResult,
    json_number,
)
from repro.diagnosis.second_signature import (
    GroupResolution,
    SecondSignatureSearch,
    search_second_signature,
)

__all__ = [
    "DIAGNOSIS_SEED_DOMAIN",
    "ConfusionStudy",
    "FaultCoverage",
    "ambiguity_groups",
    "confusion_study",
    "detectability_report",
    "fault_distance_matrix",
    "perturbed_fault_fleet",
    "DEFAULT_PARAMETRIC_CLASSES",
    "FaultDictionary",
    "MultiFaultDictionary",
    "compile_fault_dictionary",
    "compile_multi_fault_dictionary",
    "default_fault_universe",
    "dwell_features",
    "DictionaryMatcher",
    "MultiDictionaryMatcher",
    "DieDiagnosis",
    "DiagnosisResult",
    "json_number",
    "GroupResolution",
    "SecondSignatureSearch",
    "search_second_signature",
]
