"""Test-support machinery shipped with the package.

:mod:`repro.testing.faultinject` provides the named fault points the
robustness suite (and the crash-restart CI smoke) uses to make the
crash-safety layer fail on demand: store write tears, checksum
corruption, handler exceptions, slow engines, mid-stream crashes.
Production code paths call :func:`~repro.testing.faultinject.should_fail`
at their instrumented sites; the call is a dictionary probe that is
inert unless a fault was armed explicitly, so shipping the hooks costs
nothing.
"""

from repro.testing.faultinject import (
    FaultInjected,
    active_faults,
    arm,
    disarm_all,
    inject,
    should_fail,
)

__all__ = [
    "FaultInjected",
    "active_faults",
    "arm",
    "disarm_all",
    "inject",
    "should_fail",
]
