"""Named fault points: make the crash-safety layer fail on demand.

The robustness suite needs deterministic failures at exact moments --
a store payload torn between write and rename, an engine raising
mid-batch, a handler crashing after the rate limiter admitted the
request, a checkpointed stream dying between chunks.  Each such moment
is a *fault point*: production code calls
``should_fail("store.write.tear")`` at the instrumented site, which is
an inert dictionary probe unless that name was armed.

Arming happens two ways:

* in-process, scoped, via the :func:`inject` context manager::

      with inject("session.submit.error"):
          ...  # the next pass through the site trips once

* cross-process, via the ``REPRO_FAULTS`` environment variable, parsed
  on first use (the crash-restart smoke boots ``repro serve`` with
  faults armed)::

      REPRO_FAULTS="server.handler.error:2,session.slow" repro serve ...

Each armed fault carries ``times`` (how many trips fire; ``-1`` =
every trip) and ``after`` (trips skipped before the first firing) so a
test can kill the Nth store write or the Kth streamed chunk precisely.

Well-known fault points wired through the codebase:

=============================  =========================================
``store.write.tear``           truncate a store payload after fsync,
                               before rename (simulated torn write)
``store.index.tear``           truncate the JSON index mid-rewrite
``store.read.corrupt``         flip payload bytes on disk before a read
``session.submit.error``       raise inside ``ScreeningSession.submit``
``session.slow``               sleep inside ``ScreeningSession.submit``
                               (``REPRO_FAULT_SLOW_S`` secs, def. 0.2)
``server.handler.error``       raise inside the request handler after
                               admission (rendered as HTTP 500)
``server.handler.close``       drop the connection without a response
                               (clients see a connection reset)
``stream.chunk.crash``         raise between streamed-campaign chunks,
                               after the checkpoint write
``shard.worker.kill``          SIGKILL a shard worker right after a
                               progress report (armed in the worker's
                               environment; the coordinator forwards
                               ``REPRO_SHARD_WORKER_FAULTS`` to its
                               first spawn only)
``shard.worker.error``         raise inside a shard assignment (the
                               worker reports ``error`` and exits 1)
``shard.transport.drop``       silently discard one protocol line on
                               a shard transport (either direction)
``shard.transport.delay``      deliver one shard protocol line late
                               (``REPRO_FAULT_SLOW_S`` seconds) --
                               latency, never loss
``shard.transport.partition``  sever a shard worker channel abruptly
                               (socket close / pipe kill mid-line),
                               as a network partition would
=============================  =========================================
"""

from __future__ import annotations

import os
import threading
from typing import Dict, List, Optional

#: Environment variable holding comma-separated armed faults, each
#: ``name``, ``name:times`` or ``name:times:after``.
ENV_VAR = "REPRO_FAULTS"


class FaultInjected(RuntimeError):
    """The error an armed fault point raises by default."""

    def __init__(self, name: str) -> None:
        super().__init__(f"injected fault at {name!r}")
        self.fault = name


class _Fault:
    """One armed fault point's firing schedule."""

    __slots__ = ("name", "times", "after", "fired")

    def __init__(self, name: str, times: int, after: int) -> None:
        self.name = name
        self.times = int(times)
        self.after = int(after)
        self.fired = 0

    def trip(self) -> bool:
        """Account one pass through the site; True when it fires."""
        if self.after > 0:
            self.after -= 1
            return False
        if self.times < 0:
            self.fired += 1
            return True
        if self.fired < self.times:
            self.fired += 1
            return True
        return False

    @property
    def exhausted(self) -> bool:
        return self.times >= 0 and self.fired >= self.times

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"_Fault({self.name!r}, times={self.times}, "
                f"after={self.after}, fired={self.fired})")


_LOCK = threading.Lock()
_FAULTS: Dict[str, _Fault] = {}
_ENV_LOADED = False


def _load_env_locked() -> None:
    """Arm faults named by ``REPRO_FAULTS`` (idempotent)."""
    global _ENV_LOADED
    if _ENV_LOADED:
        return
    _ENV_LOADED = True
    spec = os.environ.get(ENV_VAR, "").strip()
    if not spec:
        return
    for entry in spec.split(","):
        entry = entry.strip()
        if not entry:
            continue
        parts = entry.split(":")
        name = parts[0]
        times = int(parts[1]) if len(parts) > 1 and parts[1] else 1
        after = int(parts[2]) if len(parts) > 2 and parts[2] else 0
        _FAULTS[name] = _Fault(name, times, after)


def arm(name: str, times: int = 1, after: int = 0) -> _Fault:
    """Arm ``name`` to fire ``times`` trips (-1 = forever) after
    skipping the first ``after`` trips.  Re-arming replaces the
    schedule.  Returns the schedule object (its ``fired`` counter
    keeps counting even after the fault exhausts and unregisters)."""
    with _LOCK:
        _load_env_locked()
        fault = _Fault(name, times, after)
        _FAULTS[name] = fault
        return fault


def disarm(name: str) -> None:
    """Remove one armed fault (no-op when not armed)."""
    with _LOCK:
        _load_env_locked()
        _FAULTS.pop(name, None)


def disarm_all() -> None:
    """Remove every armed fault (test teardown)."""
    with _LOCK:
        _load_env_locked()
        _FAULTS.clear()


def active_faults() -> List[str]:
    """Names currently armed (env faults included)."""
    with _LOCK:
        _load_env_locked()
        return sorted(_FAULTS)


def should_fail(name: str) -> bool:
    """Account one pass through fault point ``name``.

    Returns True when the site must fail *now* (the caller implements
    the failure: raise, truncate, sleep, drop the connection).  Inert
    -- one lock acquisition and a dict probe -- unless armed.
    """
    with _LOCK:
        _load_env_locked()
        fault = _FAULTS.get(name)
        if fault is None:
            return False
        fire = fault.trip()
        if fault.exhausted:
            del _FAULTS[name]
        return fire


def fail_if_armed(name: str) -> None:
    """Raise :class:`FaultInjected` when the site must fail now."""
    if should_fail(name):
        raise FaultInjected(name)


class inject:
    """Context manager arming one fault for the enclosed block.

    ::

        with inject("session.submit.error"):
            ...         # first trip inside the block raises

    On exit the fault is disarmed even if it never fired, so a test
    cannot leak an armed fault into its neighbours.
    """

    def __init__(self, name: str, times: int = 1, after: int = 0) -> None:
        self.name = name
        self.times = times
        self.after = after
        self._fault: Optional[_Fault] = None

    def __enter__(self) -> "inject":
        self._fault = arm(self.name, self.times, self.after)
        return self

    def __exit__(self, *exc) -> None:
        disarm(self.name)

    @property
    def fired(self) -> int:
        """Trips fired so far (valid during and after the block)."""
        return self._fault.fired if self._fault is not None else 0


def slow_seconds(default: float = 0.2) -> float:
    """Sleep duration of the ``session.slow`` fault point."""
    try:
        return float(os.environ.get("REPRO_FAULT_SLOW_S", default))
    except (TypeError, ValueError):
        return default


def reset_env_cache() -> None:
    """Forget the parsed ``REPRO_FAULTS`` value (tests monkeypatching
    the environment call this to force a re-parse)."""
    global _ENV_LOADED
    with _LOCK:
        _ENV_LOADED = False


__all__ = [
    "ENV_VAR",
    "FaultInjected",
    "active_faults",
    "arm",
    "disarm",
    "disarm_all",
    "fail_if_armed",
    "inject",
    "reset_env_cache",
    "should_fail",
    "slow_seconds",
]
