"""KHN state-variable realization of the Biquad CUT.

A second, independent structural realization of the same second-order
transfer functions (the Tow-Thomas loop being the first).  Two reasons
to have it:

* **cross-validation** -- both netlists must agree with the behavioural
  model and with each other; a bug in the MNA engine or the op-amp
  stamp would break one realization before the other;
* **multi-output testing** -- the KHN topology exposes the high-pass,
  band-pass and low-pass taps at once, which feeds the multi-channel
  signature extension with a physically simultaneous three-tap CUT.

Topology (three op-amps, summing stage + two integrators)::

    hp = (1 + R6/R5)/(1 + R3/R4) * vin - (R6/R5) lp
         + ((1 + R6/R5) * R3/(R3 + R4)) bp        (classic KHN algebra)
    bp = -1/(s R1 C1) hp
    lp = -1/(s R2 C2) bp

With equal integrators ``R1 C1 = R2 C2 = 1/w0`` and ``R5 = R6`` the
standard design gives ``Q = (1 + R6/R5) / (1 + R3/R4) ...``; rather
than carry the textbook algebra in code, the implementation uses the
equal-component normal form below and *verifies* the realized spec via
AC analysis in the tests (f0 from the BP peak, Q from its bandwidth).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.circuits import (
    Circuit,
    Capacitor,
    IdealOpAmp,
    Resistor,
    VoltageSource,
    ac_analysis,
)
from repro.filters.biquad import BiquadKind, BiquadSpec
from repro.signals.lissajous import LissajousTrace
from repro.signals.multitone import Multitone
from repro.signals.waveform import Waveform


@dataclass(frozen=True)
class KhnValues:
    """Component values of the KHN loop (ohms and farads).

    ``r_int``/``c_int`` set the two (equal) integrators:
    ``w0 = 1 / (r_int c_int)``.  ``r_q`` against ``r_qg`` sets the
    damping fed from the band-pass tap; ``r_in``, ``r_f1``, ``r_f2``
    form the summing stage (equal for unity gain).
    """

    r_int: float
    c_int: float
    r_in: float = 10e3
    r_f1: float = 10e3
    r_f2: float = 10e3
    r_q: float = 10e3
    r_qg: float = 10e3

    @classmethod
    def from_spec(cls, spec: BiquadSpec, c: float = 10e-9) -> "KhnValues":
        """Equal-component synthesis for a given f0 and Q.

        For this exact topology (equal summing resistors, damping fed
        to the summer's non-inverting input through the R_q/R_qg
        divider with attenuation ``alpha = R_qg / (R_q + R_qg)``) the
        loop algebra gives::

            H_lp(s) = -G w0^2 / (s^2 + 3 alpha w0 s + w0^2)

        so ``Q = 1 / (3 alpha)``; the synthesis inverts that.  The
        realized spec is re-measured from the netlist's AC response in
        the tests (BP peak and -3 dB bandwidth).
        """
        if spec.q <= 1.0 / 3.0:
            raise ValueError(
                "equal-component KHN needs Q > 1/3 (alpha < 1)")
        w0 = spec.omega0
        r_int = 1.0 / (w0 * c)
        alpha = 1.0 / (3.0 * spec.q)
        r_qg = 10e3
        r_q = r_qg * (1.0 - alpha) / alpha
        return cls(r_int=r_int, c_int=c, r_q=r_q, r_qg=r_qg)


class KhnBiquad:
    """Structural KHN filter with hp/bp/lp taps on the MNA engine.

    Node names: ``vin``, ``hp``, ``bp``, ``lp``.
    """

    IN_NODE = "vin"

    def __init__(self, values: KhnValues,
                 stimulus: Optional[Multitone] = None) -> None:
        self.values = values
        self.stimulus = stimulus
        self.circuit = self._build(stimulus)
        self.system = self.circuit.assemble()

    def _build(self, stimulus: Optional[Multitone]) -> Circuit:
        v = self.values
        ckt = Circuit("khn biquad")
        drive = stimulus if stimulus is not None else 0.0
        ckt.add(VoltageSource("Vin", "vin", "0", dc=drive, ac=1.0))
        # Damping attenuator from the band-pass tap into the summer's
        # non-inverting input.
        ckt.add(Resistor("Rq", "bp", "qn", v.r_q))
        ckt.add(Resistor("Rqg", "qn", "0", v.r_qg))
        # Summing stage A1: hp = -(Rf1/Rin) vin - (Rf1/Rf2) lp + ...
        ckt.add(Resistor("Rin", "vin", "sn", v.r_in))
        ckt.add(Resistor("Rf2", "lp", "sn", v.r_f2))
        ckt.add(Resistor("Rf1", "sn", "hp", v.r_f1))
        ckt.add(IdealOpAmp("A1", "qn", "sn", "hp"))
        # Integrator A2: bp = -hp / (s R C).
        ckt.add(Resistor("R1", "hp", "i1", v.r_int))
        ckt.add(Capacitor("C1", "i1", "bp", v.c_int))
        ckt.add(IdealOpAmp("A2", "0", "i1", "bp"))
        # Integrator A3: lp = -bp / (s R C).
        ckt.add(Resistor("R2", "bp", "i2", v.r_int))
        ckt.add(Capacitor("C2", "i2", "lp", v.c_int))
        ckt.add(IdealOpAmp("A3", "0", "i2", "lp"))
        return ckt

    # ------------------------------------------------------------------
    def transfer_at(self, freqs, node: str = "lp") -> np.ndarray:
        """Complex H(f) = V(node)/V(vin) via AC analysis."""
        result = ac_analysis(self.system, freqs)
        return result.transfer(node, self.IN_NODE)

    def transfer(self, freq_hz: float, node: str = "lp") -> complex:
        """Single-frequency transfer; f = 0 via a real DC solve."""
        if freq_hz <= 0.0:
            from repro.circuits.dc import dc_operating_point

            source = self.circuit.element("Vin")
            saved = source.dc
            source.dc = 1.0
            try:
                solution = dc_operating_point(self.system)
                return complex(solution.voltage(self.system, node))
            finally:
                source.dc = saved
        return complex(self.transfer_at([float(freq_hz)], node)[0])

    def measured_spec(self) -> BiquadSpec:
        """(f0, Q) measured from the band-pass response.

        f0 is the BP magnitude peak; Q = f0 / (f_hi - f_lo) at the
        -3 dB points of the BP response.
        """
        # Coarse-to-fine peak search; the fine window spans a full
        # decade around the peak so low-Q (wide) resonances keep their
        # -3 dB points inside the grid.
        freqs = np.linspace(1e3, 60e3, 400)
        mag = np.abs(self.transfer_at(freqs, "bp"))
        f_peak = float(freqs[int(np.argmax(mag))])
        fine = np.geomspace(f_peak / 4.0, f_peak * 4.0, 800)
        mag = np.abs(self.transfer_at(fine, "bp"))
        i_peak = int(np.argmax(mag))
        f0 = float(fine[i_peak])
        peak = float(mag[i_peak])
        half = peak / math.sqrt(2.0)
        lo_side = fine[:i_peak][mag[:i_peak] <= half]
        hi_side = fine[i_peak:][mag[i_peak:] <= half]
        if lo_side.size and hi_side.size:
            bandwidth = float(hi_side[0] - lo_side[-1])
            q = f0 / bandwidth
        else:
            q = float("nan")
        gain = abs(self.transfer(100.0, "lp"))
        return BiquadSpec(f0, q, gain, BiquadKind.LOWPASS)

    # ------------------------------------------------------------------
    def lissajous_of(self, channel: str, stimulus: Multitone,
                     samples_per_period: int) -> LissajousTrace:
        """Multi-channel CUT protocol: one tap's composition.

        The hp/bp taps swing around 0 V; they are rebiased to the
        0.5 V window centre as the physical instrument would.
        """
        if channel not in ("lp", "bp", "hp"):
            raise ValueError(f"unknown channel {channel!r}")
        response = stimulus.through(
            lambda f: self.transfer(f, channel))
        if channel in ("bp", "hp"):
            response = response.with_offset(0.5)
        period = stimulus.period()
        x = Waveform.from_function(stimulus, period, samples_per_period)
        y = Waveform.from_function(response, period, samples_per_period)
        return LissajousTrace(x, y, period)

    def lissajous(self, stimulus: Multitone,
                  samples_per_period: int = 4096) -> LissajousTrace:
        """Single-channel CUT protocol (the low-pass tap)."""
        return self.lissajous_of("lp", stimulus, samples_per_period)
