"""The Biquad circuit under test (CUT) and its fault models.

* :mod:`repro.filters.biquad` -- spec + exact behavioural model
* :mod:`repro.filters.towthomas` -- structural active-RC netlist
* :mod:`repro.filters.faults` -- parametric and catastrophic faults
"""

from repro.filters.biquad import BiquadFilter, BiquadKind, BiquadSpec
from repro.filters.towthomas import TowThomasBiquad, TowThomasValues
from repro.filters.statevariable import KhnBiquad, KhnValues
from repro.filters.faults import (
    Fault,
    FaultKind,
    catastrophic_fault_universe,
    f0_deviation,
    parametric_sweep,
)

__all__ = [
    "BiquadFilter",
    "BiquadKind",
    "BiquadSpec",
    "TowThomasBiquad",
    "TowThomasValues",
    "KhnBiquad",
    "KhnValues",
    "Fault",
    "FaultKind",
    "catastrophic_fault_universe",
    "f0_deviation",
    "parametric_sweep",
]
