"""Biquad filter specification and analytic transfer functions.

The paper's case study is a low-pass Biquad whose *natural frequency*
``f0`` is the parameter under verification.  The second-order transfer
functions are the textbook forms::

    LP:  H(s) = G w0^2            / (s^2 + (w0/Q) s + w0^2)
    BP:  H(s) = G (w0/Q) s        / (s^2 + (w0/Q) s + w0^2)
    HP:  H(s) = G s^2             / (s^2 + (w0/Q) s + w0^2)

The behavioural model evaluates these exactly; the structural
Tow-Thomas netlist (:mod:`repro.filters.towthomas`) realizes the same
LP/BP responses with ideal op-amps and is cross-checked against this
module in the integration tests.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, replace
from typing import Sequence, Tuple, Union

import numpy as np

from repro.signals.lissajous import LissajousTrace
from repro.signals.multitone import Multitone


class BiquadKind(enum.Enum):
    """Which second-order response the output tap realizes."""

    LOWPASS = "lowpass"
    BANDPASS = "bandpass"
    HIGHPASS = "highpass"


@dataclass(frozen=True)
class BiquadSpec:
    """Design parameters of a Biquad section.

    Attributes
    ----------
    f0_hz:
        Natural frequency in hertz -- the parameter the paper verifies.
    q:
        Quality factor.
    gain:
        In-band gain G (DC gain for the low-pass tap).
    kind:
        Which response the observable output realizes.
    """

    f0_hz: float = 13e3
    q: float = 1.5
    gain: float = 1.0
    kind: BiquadKind = BiquadKind.LOWPASS

    def __post_init__(self) -> None:
        if self.f0_hz <= 0:
            raise ValueError("f0 must be positive")
        if self.q <= 0:
            raise ValueError("Q must be positive")

    @property
    def omega0(self) -> float:
        """Natural frequency in rad/s."""
        return 2.0 * math.pi * self.f0_hz

    def with_f0_deviation(self, fraction: float) -> "BiquadSpec":
        """Spec with ``f0`` shifted by a relative fraction (+0.10 = +10 %).

        This is the paper's fault model for Figs. 1, 6, 7 and 8.
        """
        if fraction <= -1.0:
            raise ValueError("deviation must keep f0 positive")
        return replace(self, f0_hz=self.f0_hz * (1.0 + fraction))

    def with_q_deviation(self, fraction: float) -> "BiquadSpec":
        """Spec with Q shifted by a relative fraction."""
        if fraction <= -1.0:
            raise ValueError("deviation must keep Q positive")
        return replace(self, q=self.q * (1.0 + fraction))

    def with_gain_deviation(self, fraction: float) -> "BiquadSpec":
        """Spec with gain shifted by a relative fraction."""
        return replace(self, gain=self.gain * (1.0 + fraction))


class BiquadFilter:
    """Behavioural (exact) Biquad model.

    The filter is linear, so its steady-state response to a multitone is
    computed tone-by-tone from ``H(j w)`` with no numerical integration
    -- see :meth:`repro.signals.multitone.Multitone.through`.
    """

    def __init__(self, spec: BiquadSpec) -> None:
        self.spec = spec

    # ------------------------------------------------------------------
    # Frequency domain
    # ------------------------------------------------------------------
    def transfer_s(self, s: complex) -> complex:
        """H(s) at a complex frequency."""
        w0 = self.spec.omega0
        den = s * s + (w0 / self.spec.q) * s + w0 * w0
        if self.spec.kind is BiquadKind.LOWPASS:
            num = self.spec.gain * w0 * w0
        elif self.spec.kind is BiquadKind.BANDPASS:
            num = self.spec.gain * (w0 / self.spec.q) * s
        else:
            num = self.spec.gain * s * s
        return num / den

    def transfer(self, freq_hz: float) -> complex:
        """H(j 2 pi f); accepts f = 0 (DC)."""
        return self.transfer_s(1j * 2.0 * math.pi * freq_hz)

    def magnitude(self, freq_hz) -> Union[float, np.ndarray]:
        """|H| at frequency/frequencies in hertz.

        ``transfer_s`` is written in element-wise operations, so the
        whole frequency grid evaluates as one complex broadcast -- no
        Python call per point.
        """
        freq_arr = np.asarray(freq_hz, dtype=float)
        s = 1j * 2.0 * math.pi * freq_arr
        vals = np.abs(self.transfer_s(s))
        if freq_arr.ndim == 0:
            return float(vals)
        return vals

    # ------------------------------------------------------------------
    # Time domain (exact steady state)
    # ------------------------------------------------------------------
    def response(self, stimulus: Multitone) -> Multitone:
        """Exact steady-state output for a multitone stimulus."""
        return stimulus.through(self.transfer)

    def lissajous(self, stimulus: Multitone,
                  samples_per_period: int = 4096) -> LissajousTrace:
        """Compose stimulus (X) against filter output (Y), one period.

        This is the paper's Fig. 1: "Lissajous composition of a
        multitone input signal and the low pass output of a Biquad
        filter."
        """
        return LissajousTrace.from_multitones(stimulus,
                                              self.response(stimulus),
                                              samples_per_period)

    # ------------------------------------------------------------------
    # Characteristics
    # ------------------------------------------------------------------
    def pole_pair(self) -> complex:
        """Upper-half-plane pole of the section."""
        w0 = self.spec.omega0
        q = self.spec.q
        re = -w0 / (2.0 * q)
        im_sq = w0 * w0 - re * re
        return complex(re, math.sqrt(im_sq)) if im_sq > 0 else complex(
            re + math.sqrt(-im_sq), 0.0)

    def settling_time(self, tolerance: float = 1e-3) -> float:
        """Time for transients to decay to ``tolerance`` of initial size.

        Used by the structural simulation path to decide how many
        periods to discard before capturing the steady-state signature.
        """
        re = abs(self.pole_pair().real)
        return math.log(1.0 / tolerance) / re


# ----------------------------------------------------------------------
# Batched (population-wide) transfer evaluation
# ----------------------------------------------------------------------
def _cpython_complex_quot(num_r: np.ndarray, num_i: np.ndarray,
                          den_r: np.ndarray, den_i: np.ndarray
                          ) -> Tuple[np.ndarray, np.ndarray]:
    """CPython's ``_Py_c_quot`` (Smith's method), vectorized.

    :func:`batch_transfer` must be bit-identical to the per-die
    ``transfer_s``, which runs on Python ``complex`` scalars -- and
    numpy's own complex division rounds differently from CPython's, so
    ``num / den`` on ``complex128`` arrays is *not* an option.  This
    replays CPython's exact branch structure and expression order with
    real-array IEEE ops, which numpy and CPython round identically.
    """
    first = np.abs(den_r) >= np.abs(den_i)
    with np.errstate(divide="ignore", invalid="ignore"):
        # |den.real| >= |den.imag|: divide top and bottom by den.real.
        r1 = den_i / den_r
        d1 = den_r + den_i * r1
        q1_r = (num_r + num_i * r1) / d1
        q1_i = (num_i - num_r * r1) / d1
        # Otherwise divide top and bottom by den.imag.
        r2 = den_r / den_i
        d2 = den_r * r2 + den_i
        q2_r = (num_r * r2 + num_i) / d2
        q2_i = (num_i * r2 - num_r) / d2
    return np.where(first, q1_r, q2_r), np.where(first, q1_i, q2_i)


def spec_arrays(specs: Sequence[BiquadSpec]
                ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Stacked ``(omega0, q, gain)`` parameter arrays of a population.

    ``omega0`` replicates :attr:`BiquadSpec.omega0` exactly
    (``2.0 * pi * f0``), so downstream array math matches the per-die
    scalar path bit for bit.
    """
    n = len(specs)
    omega0 = np.empty(n)
    q = np.empty(n)
    gain = np.empty(n)
    for i, spec in enumerate(specs):
        omega0[i] = 2.0 * math.pi * spec.f0_hz
        q[i] = spec.q
        gain[i] = spec.gain
    return omega0, q, gain


def batch_transfer_arrays(omega0: np.ndarray, q: np.ndarray,
                          gain: np.ndarray, kind: BiquadKind,
                          freq_hz: float
                          ) -> Tuple[np.ndarray, np.ndarray]:
    """``H(j 2 pi f)`` from pre-stacked parameter arrays, one kind.

    The array-native core of :func:`batch_transfer`: callers that
    evaluate several frequencies for the same population (the trace
    synthesizer does, once per tone plus DC) stack the parameters once
    with :func:`spec_arrays` instead of re-walking the spec list per
    frequency.
    """
    n = omega0.shape[0]
    # transfer() forms s = 1j * 2 pi f, i.e. exactly (0.0, w).
    w = 2.0 * math.pi * freq_hz
    k = omega0 / q
    # den = s*s + (w0/q)*s + w0*w0 evaluated on Python complex:
    #   real: (0*0 - w*w) + 0 + w0*w0     imag: 0 + (w0/q)*w + 0
    den_r = (0.0 - w * w) + omega0 * omega0
    den_i = k * w
    if kind is BiquadKind.LOWPASS:
        num_r = gain * omega0 * omega0
        num_i = np.zeros(n)
    elif kind is BiquadKind.BANDPASS:
        num_r = np.zeros(n)
        num_i = (gain * k) * w
    else:  # highpass: gain*s*s -> ((gain*w)*w negated, 0)
        num_r = 0.0 - (gain * w) * w
        num_i = np.zeros(n)
    return _cpython_complex_quot(num_r, num_i, den_r, den_i)


def batch_transfer(specs: Sequence[BiquadSpec], freq_hz: float
                   ) -> Tuple[np.ndarray, np.ndarray]:
    """``H(j 2 pi f)`` of N specs at one frequency -> ``(real, imag)``.

    Bit-identical to ``[BiquadFilter(s).transfer(freq_hz) for s in
    specs]``: the scalar path evaluates ``transfer_s`` with Python
    ``complex`` arithmetic, so the naive complex product and Smith
    division are replayed here component-wise on real arrays (including
    the exactly-zero real/imaginary parts the scalar expressions
    produce).  Accepts ``freq_hz = 0`` for the DC gain; mixed response
    kinds in one population are evaluated group by group.
    """
    n = len(specs)
    if n == 0:
        return np.empty(0), np.empty(0)
    kinds = [spec.kind for spec in specs]
    if any(kind is not kinds[0] for kind in kinds):
        out_r = np.empty(n)
        out_i = np.empty(n)
        for kind in set(kinds):
            idx = [i for i, k in enumerate(kinds) if k is kind]
            sub_r, sub_i = batch_transfer([specs[i] for i in idx], freq_hz)
            out_r[idx] = sub_r
            out_i[idx] = sub_i
        return out_r, out_i
    omega0, q, gain = spec_arrays(specs)
    return batch_transfer_arrays(omega0, q, gain, kinds[0], freq_hz)
