"""Biquad filter specification and analytic transfer functions.

The paper's case study is a low-pass Biquad whose *natural frequency*
``f0`` is the parameter under verification.  The second-order transfer
functions are the textbook forms::

    LP:  H(s) = G w0^2            / (s^2 + (w0/Q) s + w0^2)
    BP:  H(s) = G (w0/Q) s        / (s^2 + (w0/Q) s + w0^2)
    HP:  H(s) = G s^2             / (s^2 + (w0/Q) s + w0^2)

The behavioural model evaluates these exactly; the structural
Tow-Thomas netlist (:mod:`repro.filters.towthomas`) realizes the same
LP/BP responses with ideal op-amps and is cross-checked against this
module in the integration tests.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, replace
from typing import Union

import numpy as np

from repro.signals.lissajous import LissajousTrace
from repro.signals.multitone import Multitone


class BiquadKind(enum.Enum):
    """Which second-order response the output tap realizes."""

    LOWPASS = "lowpass"
    BANDPASS = "bandpass"
    HIGHPASS = "highpass"


@dataclass(frozen=True)
class BiquadSpec:
    """Design parameters of a Biquad section.

    Attributes
    ----------
    f0_hz:
        Natural frequency in hertz -- the parameter the paper verifies.
    q:
        Quality factor.
    gain:
        In-band gain G (DC gain for the low-pass tap).
    kind:
        Which response the observable output realizes.
    """

    f0_hz: float = 13e3
    q: float = 1.5
    gain: float = 1.0
    kind: BiquadKind = BiquadKind.LOWPASS

    def __post_init__(self) -> None:
        if self.f0_hz <= 0:
            raise ValueError("f0 must be positive")
        if self.q <= 0:
            raise ValueError("Q must be positive")

    @property
    def omega0(self) -> float:
        """Natural frequency in rad/s."""
        return 2.0 * math.pi * self.f0_hz

    def with_f0_deviation(self, fraction: float) -> "BiquadSpec":
        """Spec with ``f0`` shifted by a relative fraction (+0.10 = +10 %).

        This is the paper's fault model for Figs. 1, 6, 7 and 8.
        """
        if fraction <= -1.0:
            raise ValueError("deviation must keep f0 positive")
        return replace(self, f0_hz=self.f0_hz * (1.0 + fraction))

    def with_q_deviation(self, fraction: float) -> "BiquadSpec":
        """Spec with Q shifted by a relative fraction."""
        if fraction <= -1.0:
            raise ValueError("deviation must keep Q positive")
        return replace(self, q=self.q * (1.0 + fraction))

    def with_gain_deviation(self, fraction: float) -> "BiquadSpec":
        """Spec with gain shifted by a relative fraction."""
        return replace(self, gain=self.gain * (1.0 + fraction))


class BiquadFilter:
    """Behavioural (exact) Biquad model.

    The filter is linear, so its steady-state response to a multitone is
    computed tone-by-tone from ``H(j w)`` with no numerical integration
    -- see :meth:`repro.signals.multitone.Multitone.through`.
    """

    def __init__(self, spec: BiquadSpec) -> None:
        self.spec = spec

    # ------------------------------------------------------------------
    # Frequency domain
    # ------------------------------------------------------------------
    def transfer_s(self, s: complex) -> complex:
        """H(s) at a complex frequency."""
        w0 = self.spec.omega0
        den = s * s + (w0 / self.spec.q) * s + w0 * w0
        if self.spec.kind is BiquadKind.LOWPASS:
            num = self.spec.gain * w0 * w0
        elif self.spec.kind is BiquadKind.BANDPASS:
            num = self.spec.gain * (w0 / self.spec.q) * s
        else:
            num = self.spec.gain * s * s
        return num / den

    def transfer(self, freq_hz: float) -> complex:
        """H(j 2 pi f); accepts f = 0 (DC)."""
        return self.transfer_s(1j * 2.0 * math.pi * freq_hz)

    def magnitude(self, freq_hz) -> Union[float, np.ndarray]:
        """|H| at frequency/frequencies in hertz."""
        freq_arr = np.asarray(freq_hz, dtype=float)
        s = 1j * 2.0 * math.pi * freq_arr
        vals = np.abs(np.vectorize(self.transfer_s)(s))
        if freq_arr.ndim == 0:
            return float(vals)
        return vals

    # ------------------------------------------------------------------
    # Time domain (exact steady state)
    # ------------------------------------------------------------------
    def response(self, stimulus: Multitone) -> Multitone:
        """Exact steady-state output for a multitone stimulus."""
        return stimulus.through(self.transfer)

    def lissajous(self, stimulus: Multitone,
                  samples_per_period: int = 4096) -> LissajousTrace:
        """Compose stimulus (X) against filter output (Y), one period.

        This is the paper's Fig. 1: "Lissajous composition of a
        multitone input signal and the low pass output of a Biquad
        filter."
        """
        return LissajousTrace.from_multitones(stimulus,
                                              self.response(stimulus),
                                              samples_per_period)

    # ------------------------------------------------------------------
    # Characteristics
    # ------------------------------------------------------------------
    def pole_pair(self) -> complex:
        """Upper-half-plane pole of the section."""
        w0 = self.spec.omega0
        q = self.spec.q
        re = -w0 / (2.0 * q)
        im_sq = w0 * w0 - re * re
        return complex(re, math.sqrt(im_sq)) if im_sq > 0 else complex(
            re + math.sqrt(-im_sq), 0.0)

    def settling_time(self, tolerance: float = 1e-3) -> float:
        """Time for transients to decay to ``tolerance`` of initial size.

        Used by the structural simulation path to decide how many
        periods to discard before capturing the steady-state signature.
        """
        re = abs(self.pole_pair().real)
        return math.log(1.0 / tolerance) / re
