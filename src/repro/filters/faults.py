"""Fault models for the Biquad CUT.

Two families, mirroring the paper's discussion in Sections I-II:

* **Parametric deviations** -- the paper's headline experiment shifts
  the natural frequency ``f0`` by a percentage ("different degrees of
  deviation in the natural frequency of the filter"); Q and gain
  deviations are included for the extension studies.
* **Catastrophic structural faults** -- shorts and opens of individual
  components, the classic defect universe of structural analog test
  ("typically shorts and opens").  These act on the Tow-Thomas netlist:
  an *open* multiplies a resistance by 1e6 (or divides a capacitance by
  1e6), a *short* replaces the component with a 1-ohm equivalent (or a
  huge capacitance), keeping the circuit solvable while representing
  the defect limit.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.filters.biquad import BiquadSpec
from repro.filters.towthomas import TowThomasBiquad, TowThomasValues
from repro.signals.multitone import Multitone

#: Resistance multiplier representing an open defect.
OPEN_FACTOR = 1e6
#: Resistance value (ohms) representing a short defect.
SHORT_RESISTANCE = 1.0


class FaultKind(enum.Enum):
    """Fault taxonomy."""

    PARAMETRIC = "parametric"
    OPEN = "open"
    SHORT = "short"


_PARAMETRIC_TARGETS = ("f0", "q", "gain")
_COMPONENT_TARGETS = ("r1", "r2", "r3", "r4", "r5", "c1", "c2")


@dataclass(frozen=True)
class Fault:
    """A single injectable fault.

    Attributes
    ----------
    kind:
        Parametric deviation, open, or short.
    target:
        ``"f0"``/``"q"``/``"gain"`` for parametric faults, a component
        name (``"r1"``...``"c2"``) for catastrophic ones.
    deviation:
        Relative deviation for parametric faults (+0.10 = +10 %);
        ignored for opens/shorts.
    """

    kind: FaultKind
    target: str
    deviation: float = 0.0

    def __post_init__(self) -> None:
        if self.kind is FaultKind.PARAMETRIC:
            if self.target not in _PARAMETRIC_TARGETS:
                raise ValueError(
                    f"parametric fault target must be one of "
                    f"{_PARAMETRIC_TARGETS}, got {self.target!r}")
        else:
            if self.target not in _COMPONENT_TARGETS:
                raise ValueError(
                    f"catastrophic fault target must be one of "
                    f"{_COMPONENT_TARGETS}, got {self.target!r}")

    @property
    def label(self) -> str:
        """Short human-readable identifier used in reports."""
        if self.kind is FaultKind.PARAMETRIC:
            return f"{self.target}{self.deviation:+.1%}"
        return f"{self.target}-{self.kind.value}"

    # ------------------------------------------------------------------
    # Application
    # ------------------------------------------------------------------
    def apply_to_spec(self, spec: BiquadSpec) -> BiquadSpec:
        """Deviated behavioural spec (parametric faults only)."""
        if self.kind is not FaultKind.PARAMETRIC:
            raise ValueError(
                f"{self.label}: catastrophic faults need the netlist path")
        if self.target == "f0":
            return spec.with_f0_deviation(self.deviation)
        if self.target == "q":
            return spec.with_q_deviation(self.deviation)
        return spec.with_gain_deviation(self.deviation)

    def apply_to_values(self, values: TowThomasValues) -> TowThomasValues:
        """Faulted component set for the structural netlist."""
        if self.kind is FaultKind.PARAMETRIC:
            # Map the parameter shift onto components exactly:
            #   w0^2 = 1/(R3 R5 C1 C2); Q = R2 C1 w0; G = R5/R1.
            d = 1.0 + self.deviation
            if self.target == "f0":
                # Scale R3 and R5 together by 1/d^... w0 ~ 1/sqrt(R3 R5):
                # scaling both by 1/d^2 would change Q; scale R3,R5 by
                # 1/d and R2 by 1/d keeps Q and G untouched.
                return values.scaled(r3=1.0 / d, r5=1.0 / d, r2=1.0 / d,
                                     r1=1.0 / d)
            if self.target == "q":
                return values.scaled(r2=d)
            return values.scaled(r1=1.0 / d)
        if self.target.startswith("r"):
            if self.kind is FaultKind.OPEN:
                return values.scaled(**{self.target: OPEN_FACTOR})
            return values.replaced(**{self.target: SHORT_RESISTANCE})
        # Capacitors: open = lose capacitance; short = huge capacitance.
        if self.kind is FaultKind.OPEN:
            return values.scaled(**{self.target: 1.0 / OPEN_FACTOR})
        return values.scaled(**{self.target: OPEN_FACTOR})

    def apply_to_biquad(self, values: TowThomasValues,
                        stimulus: Optional[Multitone] = None) -> TowThomasBiquad:
        """Build a faulted structural Biquad."""
        return TowThomasBiquad(self.apply_to_values(values), stimulus)


def f0_deviation(fraction: float) -> Fault:
    """The paper's fault: relative shift of the natural frequency."""
    return Fault(FaultKind.PARAMETRIC, "f0", fraction)


def catastrophic_fault_universe() -> List[Fault]:
    """All single opens and shorts of the Tow-Thomas components."""
    faults = []
    for component in _COMPONENT_TARGETS:
        faults.append(Fault(FaultKind.OPEN, component))
        faults.append(Fault(FaultKind.SHORT, component))
    return faults


def parametric_sweep(targets: Iterable[str],
                     deviations: Iterable[float]) -> List[Fault]:
    """Cartesian product of parametric faults for sweep experiments."""
    return [Fault(FaultKind.PARAMETRIC, target, dev)
            for target in targets for dev in deviations]
