"""Tow-Thomas active-RC realization of the Biquad CUT.

The paper tests "a Biquad filter circuit" at transistor/board level; the
classic Tow-Thomas two-integrator loop is the standard realization of
the low-pass + band-pass pair and is the structural model used here.

Topology (three ideal op-amps)::

    vin --R1--+---------+                +---------+
              |  A1     |--- bp ---R3---|  A2      |--- lp
              +--[C1 || R2]--+          +--[C2]----+
              ^ feedback R5 from fb (= -lp via A3 inverter)

Design equations (derived in the module tests)::

    H_lp(s) = (R2/R1) / (s^2 R2 R3 C1 C2 + s R3 C2 + R2/R5)
            = (R5/R1) w0^2 / (s^2 + (w0/Q) s + w0^2)

    w0 = 1/sqrt(R3 R5 C1 C2),   Q = R2 C1 w0,   DC gain = R5/R1

With ``C1 = C2 = C`` and ``R3 = R5 = R = 1/(w0 C)``: ``R2 = Q R`` and
``R1 = R / G``.

The netlist runs on :mod:`repro.circuits`; faults are injected by
rebuilding with modified component values
(:mod:`repro.filters.faults`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Optional

import numpy as np

from repro.circuits import (
    Circuit,
    IdealOpAmp,
    Capacitor,
    Resistor,
    VoltageSource,
    ac_analysis,
    transient,
)
from repro.filters.biquad import BiquadFilter, BiquadKind, BiquadSpec
from repro.signals.multitone import Multitone
from repro.signals.lissajous import LissajousTrace
from repro.signals.waveform import Waveform


@dataclass(frozen=True)
class TowThomasValues:
    """Component values of the two-integrator loop (ohms and farads)."""

    r1: float
    r2: float
    r3: float
    r4: float  # both inverter resistors (matched)
    r5: float
    c1: float
    c2: float

    @classmethod
    def from_spec(cls, spec: BiquadSpec, c: float = 10e-9) -> "TowThomasValues":
        """Synthesize equal-C values realizing ``spec`` (low-pass tap)."""
        w0 = spec.omega0
        r = 1.0 / (w0 * c)
        return cls(r1=r / spec.gain, r2=spec.q * r, r3=r, r4=10e3, r5=r,
                   c1=c, c2=c)

    def realized_spec(self, kind: BiquadKind = BiquadKind.LOWPASS) -> BiquadSpec:
        """Recover (f0, Q, G) from component values (exact inversion)."""
        w0 = 1.0 / math.sqrt(self.r3 * self.r5 * self.c1 * self.c2)
        q = self.r2 * self.c1 * w0
        gain = self.r5 / self.r1
        return BiquadSpec(w0 / (2.0 * math.pi), q, gain, kind)

    def scaled(self, **factors: float) -> "TowThomasValues":
        """Copy with named components multiplied by factors.

        ``values.scaled(r3=1.1, c1=0.9)`` models parametric component
        drift for the fault-injection experiments.
        """
        updates = {}
        for name, factor in factors.items():
            if not hasattr(self, name):
                raise ValueError(f"unknown component {name!r}")
            updates[name] = getattr(self, name) * factor
        return replace(self, **updates)

    def replaced(self, **values: float) -> "TowThomasValues":
        """Copy with named components replaced by absolute values."""
        for name in values:
            if not hasattr(self, name):
                raise ValueError(f"unknown component {name!r}")
        return replace(self, **values)


class TowThomasBiquad:
    """Structural Biquad: a netlist on the repro MNA engine.

    Parameters
    ----------
    values:
        Component values (build from a spec with
        :meth:`TowThomasValues.from_spec`).
    stimulus:
        Optional multitone input; when provided the voltage source
        follows it in transient analysis.

    Node names: ``vin`` (input), ``bp`` (band-pass tap), ``lp``
    (low-pass tap, the paper's observable output), ``fb`` (inverted
    low-pass).
    """

    #: Output node of the low-pass tap observed by the monitor.
    LP_NODE = "lp"
    BP_NODE = "bp"
    IN_NODE = "vin"

    #: Batched-synthesis protocol consumed by
    #: :func:`repro.campaign.batch.batch_netlist_traces`: the default
    #: observable transfer is ``V(ac_output_node)/V(ac_input_node)``
    #: of ``self.system``, and ``ac_input_source`` names the source
    #: driven to 1 V DC for the offset gain (mirroring
    #: :meth:`dc_gain`).  Any linear netlist CUT class exposing these
    #: three attributes plus ``system``/``circuit`` joins the stacked
    #: MNA fast path.
    ac_output_node = LP_NODE
    ac_input_node = IN_NODE
    ac_input_source = "Vin"

    def __init__(self, values: TowThomasValues,
                 stimulus: Optional[Multitone] = None) -> None:
        self.values = values
        self.stimulus = stimulus
        self.circuit = self._build(stimulus)
        self.system = self.circuit.assemble()

    def _build(self, stimulus: Optional[Multitone]) -> Circuit:
        v = self.values
        ckt = Circuit("tow-thomas biquad")
        drive = stimulus if stimulus is not None else 0.0
        ckt.add(VoltageSource("Vin", "vin", "0", dc=drive, ac=1.0))
        # A1: lossy integrator (bp = band-pass tap).
        ckt.add(Resistor("R1", "vin", "n1", v.r1))
        ckt.add(Resistor("R2", "n1", "bp", v.r2))
        ckt.add(Capacitor("C1", "n1", "bp", v.c1))
        ckt.add(IdealOpAmp("A1", "0", "n1", "bp"))
        # A2: integrator (lp = low-pass tap).
        ckt.add(Resistor("R3", "bp", "n2", v.r3))
        ckt.add(Capacitor("C2", "n2", "lp", v.c2))
        ckt.add(IdealOpAmp("A2", "0", "n2", "lp"))
        # A3: unity inverter closing the loop.
        ckt.add(Resistor("R4a", "lp", "n3", v.r4))
        ckt.add(Resistor("R4b", "n3", "fb", v.r4))
        ckt.add(IdealOpAmp("A3", "0", "n3", "fb"))
        # Loop feedback into the A1 summing node.
        ckt.add(Resistor("R5", "fb", "n1", v.r5))
        return ckt

    # ------------------------------------------------------------------
    # Frequency domain
    # ------------------------------------------------------------------
    def transfer_at(self, freqs, node: str = LP_NODE) -> np.ndarray:
        """Complex H(f) = V(node)/V(vin) from AC analysis."""
        result = ac_analysis(self.system, freqs)
        return result.transfer(node, self.IN_NODE)

    def transfer(self, freq_hz: float, node: str = LP_NODE) -> complex:
        """Single-frequency H; f = 0 uses a true (real) DC solve."""
        if freq_hz <= 0.0:
            return complex(self.dc_gain(node))
        return complex(self.transfer_at([float(freq_hz)], node)[0])

    def dc_gain(self, node: str = LP_NODE) -> float:
        """DC gain V(node)/V(vin) from a real operating-point solve.

        Capacitors open at DC, so this stays well-defined (and real)
        even for catastrophically faulted component sets where the
        near-DC AC response has a slow pole.
        """
        from repro.circuits.dc import dc_operating_point

        source = self.circuit.element("Vin")
        saved = source.dc
        source.dc = 1.0
        try:
            solution = dc_operating_point(self.system)
            return solution.voltage(self.system, node)
        finally:
            source.dc = saved

    def response(self, stimulus: Multitone, node: str = LP_NODE) -> Multitone:
        """Exact steady state through the *netlist* transfer function.

        This is how catastrophically faulted circuits (still linear) are
        pushed through the signature flow without transient simulation.
        """
        return stimulus.through(lambda f: self.transfer(f, node))

    def lissajous(self, stimulus: Multitone,
                  samples_per_period: int = 4096,
                  node: str = LP_NODE) -> LissajousTrace:
        """One steady-state Lissajous period via the netlist response.

        The (stimulus, samples_per_period) signature matches the CUT
        protocol expected by :class:`repro.core.testflow.SignatureTester`.
        """
        return LissajousTrace.from_multitones(
            stimulus, self.response(stimulus, node), samples_per_period)

    # ------------------------------------------------------------------
    # Time domain
    # ------------------------------------------------------------------
    def simulate_steady_period(self, samples_per_period: int = 2048,
                               settle_periods: Optional[int] = None,
                               node: str = LP_NODE) -> LissajousTrace:
        """Transient-simulate to steady state and return one period.

        Slower than :meth:`response` but exercises the full integrator
        path; the integration tests verify both agree.
        """
        if self.stimulus is None:
            raise ValueError("construct with a stimulus for transient runs")
        period = self.stimulus.period()
        if settle_periods is None:
            spec = self.values.realized_spec()
            settle = BiquadFilter(spec).settling_time(1e-4)
            settle_periods = max(1, int(math.ceil(settle / period)))
        dt = period / samples_per_period
        t_stop = (settle_periods + 1) * period
        result = transient(self.system, t_stop, dt)
        t_start = settle_periods * period
        n0 = int(round(t_start / dt))
        times = result.time[n0:n0 + samples_per_period]
        x = np.asarray(self.stimulus(times), dtype=float)
        y = result.voltage(node)[n0:n0 + samples_per_period]
        return LissajousTrace(Waveform(times, x), Waveform(times, y), period)
