"""Yield, test escapes and threshold economics.

The paper sets the decision threshold from a tolerance band on a single
deviation sweep.  In production, the CUT population itself is spread by
process variation, so a threshold trades **yield loss** (good units
failed) against **test escapes** (bad units passed).  This module runs
that analysis on top of the signature flow:

* a :class:`CutPopulation` draws Biquad units with normally distributed
  parameter deviations;
* :func:`yield_escape_analysis` classifies every unit by ground truth
  (inside/outside the spec tolerance) and by the NDF verdict, for one
  or many thresholds;
* :func:`roc_curve` sweeps the threshold to expose the full
  detection/false-alarm trade-off, and
  :func:`optimal_threshold` picks the cost-minimizing point.

This is an extension experiment (the paper's Fig. 8 discussion
motivates it but stops at the band construction).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.testflow import SignatureTester
from repro.filters.biquad import BiquadFilter, BiquadSpec


@dataclass
class CutUnit:
    """One manufactured unit: its true deviation and measured NDF."""

    f0_deviation: float
    ndf: float

    def is_good(self, tolerance: float) -> bool:
        """Ground truth: inside the spec tolerance."""
        return abs(self.f0_deviation) <= tolerance


class CutPopulation:
    """Monte Carlo population of Biquad units under process spread.

    Parameters
    ----------
    golden_spec:
        Nominal design.
    sigma_f0:
        One-sigma relative spread of the natural frequency (dominated
        by RC-product variation; a few percent is typical for
        integrated active-RC filters).
    rng:
        Seed or generator.
    """

    def __init__(self, golden_spec: BiquadSpec, sigma_f0: float = 0.03,
                 rng=0) -> None:
        self.golden_spec = golden_spec
        self.sigma_f0 = float(sigma_f0)
        self.rng = (rng if isinstance(rng, np.random.Generator)
                    else np.random.default_rng(rng))

    def draw_deviations(self, count: int) -> np.ndarray:
        """Relative f0 deviations of ``count`` units."""
        return self.rng.normal(0.0, self.sigma_f0, size=count)

    def measure(self, tester: SignatureTester,
                count: int = 100) -> List[CutUnit]:
        """Draw and measure a population through the signature flow.

        This is the per-die reference path; production-sized
        populations should go through :meth:`campaign`, which batches
        the same flow at fleet scale.
        """
        units = []
        for deviation in self.draw_deviations(count):
            cut = BiquadFilter(
                self.golden_spec.with_f0_deviation(float(deviation)))
            units.append(CutUnit(float(deviation), tester.ndf_of(cut)))
        return units

    def spec_population(self, count: int = 100):
        """Draw a campaign population (lazy import keeps layers apart)."""
        from repro.campaign.scenarios import SpecPopulation

        deviations = self.draw_deviations(count)
        specs = [self.golden_spec.with_f0_deviation(float(d))
                 for d in deviations]
        labels = [f"unit{i:05d}" for i in range(count)]
        return SpecPopulation(specs, deviations,
                              np.zeros(count), labels)

    def campaign(self, engine, count: int = 100, band="auto"):
        """Measure the population batched -> ``CampaignResult``.

        ``engine`` is a :class:`repro.campaign.CampaignEngine` whose
        configuration carries the stimulus/encoder/golden; the verdict
        band defaults to the engine's calibrated Fig. 8 band.
        """
        return engine.run(self.spec_population(count), band=band)


@dataclass
class YieldReport:
    """Confusion matrix of one threshold over a measured population."""

    threshold: float
    tolerance: float
    true_pass: int
    true_fail: int
    yield_loss: int   # good units failed (overkill)
    escapes: int      # bad units passed

    @property
    def total(self) -> int:
        """Population size."""
        return (self.true_pass + self.true_fail + self.yield_loss
                + self.escapes)

    @property
    def yield_loss_rate(self) -> float:
        """Fraction of *good* units wrongly failed."""
        good = self.true_pass + self.yield_loss
        return self.yield_loss / good if good else 0.0

    @property
    def escape_rate(self) -> float:
        """Fraction of *bad* units wrongly passed."""
        bad = self.true_fail + self.escapes
        return self.escapes / bad if bad else 0.0


def yield_report_from_arrays(f0_deviations: np.ndarray, ndfs: np.ndarray,
                             threshold: float,
                             tolerance: float) -> YieldReport:
    """Vectorized confusion matrix over deviation/NDF arrays.

    Shared by the list-based :func:`yield_escape_analysis` and by
    :meth:`repro.campaign.result.CampaignResult.yield_report`.
    """
    deviations = np.asarray(f0_deviations, dtype=float)
    ndfs = np.asarray(ndfs, dtype=float)
    if deviations.shape != ndfs.shape:
        raise ValueError("deviations and NDFs must align")
    if np.any(np.isnan(deviations)):
        raise ValueError(
            "ground-truth deviations contain NaN (unknown truth); "
            "yield economics need a population that knows its "
            "deviations")
    good = np.abs(deviations) <= tolerance
    passed = ndfs <= threshold
    return YieldReport(
        threshold=float(threshold), tolerance=float(tolerance),
        true_pass=int(np.count_nonzero(good & passed)),
        true_fail=int(np.count_nonzero(~good & ~passed)),
        yield_loss=int(np.count_nonzero(good & ~passed)),
        escapes=int(np.count_nonzero(~good & passed)))


def yield_escape_analysis(units: Sequence[CutUnit], threshold: float,
                          tolerance: float) -> YieldReport:
    """Classify a measured population against one NDF threshold."""
    return yield_report_from_arrays(
        np.asarray([u.f0_deviation for u in units]),
        np.asarray([u.ndf for u in units]), threshold, tolerance)


def roc_curve(units: Sequence[CutUnit], tolerance: float,
              thresholds: Optional[Sequence[float]] = None
              ) -> List[YieldReport]:
    """Yield reports across a threshold sweep (the test's ROC)."""
    if thresholds is None:
        ndfs = sorted({u.ndf for u in units})
        thresholds = np.unique(np.concatenate(
            [[0.0], np.asarray(ndfs), [max(ndfs) * 1.01 + 1e-9]]))
    return [yield_escape_analysis(units, float(t), tolerance)
            for t in thresholds]


def optimal_threshold(units: Sequence[CutUnit], tolerance: float,
                      escape_cost: float = 10.0,
                      overkill_cost: float = 1.0) -> YieldReport:
    """Threshold minimizing total cost over the measured population.

    ``escape_cost`` expresses how much worse shipping a bad unit is
    than scrapping a good one (field returns vs yield loss) -- the
    classic asymmetric test economics.
    """
    best: Optional[YieldReport] = None
    best_cost = float("inf")
    for report in roc_curve(units, tolerance):
        cost = (escape_cost * report.escapes
                + overkill_cost * report.yield_loss)
        if cost < best_cost:
            best, best_cost = report, cost
    assert best is not None
    return best
