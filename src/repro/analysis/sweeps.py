"""Sweep and population studies over the signature test bench.

Drivers for the evaluation campaigns behind Fig. 8 and the extension
experiments:

* :func:`deviation_sweep` -- the Fig. 8 NDF-vs-deviation curve for any
  parameter (f0, Q, gain);
* :func:`noise_detection_study` -- Section IV-C: noisy NDF populations
  of the golden unit and small deviations, yielding the minimum
  detectable deviation;
* :func:`process_variation_study` -- NDF of fault-free dies whose
  *monitors* vary (test-escape/yield-loss perspective; an extension the
  paper's Monte Carlo discussion motivates);
* :func:`catastrophic_coverage` -- NDF and verdict for every open/short
  in the Tow-Thomas fault universe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.core.decision import DecisionBand, ThresholdCalibration
from repro.core.ndf import ndf
from repro.core.testflow import SignatureTester
from repro.core.zones import ZoneEncoder
from repro.filters.biquad import BiquadFilter, BiquadSpec
from repro.filters.faults import Fault, catastrophic_fault_universe
from repro.filters.towthomas import TowThomasValues
from repro.monitor.comparator import MonitorBoundary
from repro.monitor.montecarlo import encoder_samples
from repro.devices.process import MonteCarloSampler
from repro.signals.noise import NoiseModel


def deviation_sweep(tester: SignatureTester, golden_spec: BiquadSpec,
                    deviations: Sequence[float],
                    parameter: str = "f0") -> ThresholdCalibration:
    """NDF sweep of one Biquad parameter around the golden spec."""
    def make(dev: float) -> BiquadFilter:
        if parameter == "f0":
            return BiquadFilter(golden_spec.with_f0_deviation(dev))
        if parameter == "q":
            return BiquadFilter(golden_spec.with_q_deviation(dev))
        if parameter == "gain":
            return BiquadFilter(golden_spec.with_gain_deviation(dev))
        raise ValueError(f"unknown parameter {parameter!r}")

    return tester.sweep_with(list(deviations), make)


@dataclass
class NoiseStudyResult:
    """Outcome of the Section IV-C noise experiment."""

    golden_population: np.ndarray
    deviation_populations: Dict[float, np.ndarray]
    threshold: float

    def detection_rates(self) -> Dict[float, float]:
        """Fraction of noisy runs flagged FAIL per deviation."""
        return {dev: float(np.mean(pop > self.threshold))
                for dev, pop in self.deviation_populations.items()}

    def false_alarm_rate(self) -> float:
        """Fraction of golden runs wrongly flagged FAIL."""
        return float(np.mean(self.golden_population > self.threshold))

    def min_fully_detected(self) -> float:
        """Smallest |deviation| with a 100 % detection rate."""
        rates = self.detection_rates()
        detected = [abs(d) for d, r in rates.items() if r >= 1.0]
        return min(detected) if detected else float("nan")


def noise_detection_study(tester: SignatureTester, golden_spec: BiquadSpec,
                          noise: NoiseModel,
                          deviations: Sequence[float] = (-0.02, -0.01,
                                                         0.01, 0.02),
                          repeats: int = 20,
                          guard_sigma: float = 3.0) -> NoiseStudyResult:
    """Noisy NDF populations and the resulting detection rates.

    The decision threshold is set from the golden noisy population
    (mean + ``guard_sigma`` standard deviations) -- the production
    calibration a test engineer would run.
    """
    golden_pop = tester.noisy_ndf_population(
        BiquadFilter(golden_spec), noise, repeats)
    threshold = float(np.mean(golden_pop)
                      + guard_sigma * np.std(golden_pop))
    populations = {}
    for dev in deviations:
        cut = BiquadFilter(golden_spec.with_f0_deviation(dev))
        populations[dev] = tester.noisy_ndf_population(cut, noise, repeats)
    return NoiseStudyResult(golden_pop, populations, threshold)


def process_variation_study(bank: Sequence[MonitorBoundary],
                            tester_factory: Callable[[ZoneEncoder],
                                                     SignatureTester],
                            golden_cut,
                            sampler: MonteCarloSampler,
                            num_dies: int = 20) -> np.ndarray:
    """NDF of a *fault-free* CUT measured by process-varied monitors.

    Each die's monitor bank differs from the golden (typical) bank, so
    the same perfect CUT shows a non-zero NDF: the monitor's own
    variability consumes test margin.  Returns the NDF per die;
    comparing against the Fig. 8 sweep converts it into an equivalent
    f0 guard band.

    The reference signature is captured once through the *nominal*
    bank, and every die's signature through its own varied bank.  (An
    earlier revision re-derived the golden through each varied bank,
    which compares a signature against itself and measures exactly
    zero.)  Campaign-scale versions of this study should go through
    :class:`repro.campaign.CampaignEngine` with an
    :class:`repro.campaign.EncoderPopulation`, which shares the trace
    across dies.
    """
    nominal_tester = tester_factory(ZoneEncoder(list(bank)))
    golden_signature = nominal_tester.signature_of(golden_cut)
    values = []
    for encoder in encoder_samples(bank, sampler, num_dies):
        tester = tester_factory(encoder)
        values.append(ndf(tester.signature_of(golden_cut),
                          golden_signature))
    return np.asarray(values)


@dataclass
class FaultCoverageRow:
    """One catastrophic fault's outcome."""

    fault: Fault
    ndf: float
    detected: bool


def catastrophic_coverage(tester: SignatureTester,
                          values: TowThomasValues,
                          band: DecisionBand,
                          faults: Optional[Sequence[Fault]] = None
                          ) -> List[FaultCoverageRow]:
    """NDF and verdict for each open/short of the Tow-Thomas CUT."""
    faults = list(faults) if faults is not None \
        else catastrophic_fault_universe()
    rows = []
    for fault in faults:
        cut = fault.apply_to_biquad(values)
        value = tester.ndf_of(cut)
        rows.append(FaultCoverageRow(fault, value,
                                     value > band.threshold))
    return rows
