"""Analysis utilities: chronograms, sweep drivers, report formatting.

* :mod:`repro.analysis.chronogram` -- Fig. 7 artifacts
* :mod:`repro.analysis.sweeps` -- Fig. 8 and extension campaigns
* :mod:`repro.analysis.reporting` -- paper-vs-measured report blocks
"""

from repro.analysis.chronogram import (
    ChronogramData,
    ascii_chronogram,
    build_chronogram,
    skipped_zone_events,
)
from repro.analysis.sweeps import (
    FaultCoverageRow,
    NoiseStudyResult,
    catastrophic_coverage,
    deviation_sweep,
    noise_detection_study,
    process_variation_study,
)
from repro.analysis.reporting import (
    Comparison,
    ascii_xy_plot,
    banner,
    close,
    comparison_table,
    format_table,
)
from repro.analysis.yield_model import (
    CutPopulation,
    CutUnit,
    YieldReport,
    optimal_threshold,
    roc_curve,
    yield_escape_analysis,
    yield_report_from_arrays,
)
from repro.analysis.multiparam import NdfSurface, ndf_surface

__all__ = [
    "ChronogramData",
    "ascii_chronogram",
    "build_chronogram",
    "skipped_zone_events",
    "FaultCoverageRow",
    "NoiseStudyResult",
    "catastrophic_coverage",
    "deviation_sweep",
    "noise_detection_study",
    "process_variation_study",
    "Comparison",
    "ascii_xy_plot",
    "banner",
    "close",
    "comparison_table",
    "format_table",
    "CutPopulation",
    "CutUnit",
    "YieldReport",
    "optimal_threshold",
    "roc_curve",
    "yield_escape_analysis",
    "yield_report_from_arrays",
    "NdfSurface",
    "ndf_surface",
]
