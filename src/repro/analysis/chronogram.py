"""Chronogram artifacts (paper Fig. 7).

Fig. 7 shows two staircase plots over one 200 us period: the decimal
zone codes of the golden and defective signatures, and below them the
instantaneous Hamming distance.  This module builds those series plus
an ASCII rendering for the benchmark reports, and extracts the
"skipped zone sequence" event the paper highlights (the defective trace
reaching 111110b = 62 where the golden sequence passes 30 -> 28 -> 60,
a Hamming-2 excursion near 48-50 us).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.core.ndf import hamming_chronogram, ndf
from repro.core.signature import Signature
from repro.core.zones import hamming_distance


@dataclass
class ChronogramData:
    """The Fig. 7 data bundle for one golden/observed pair."""

    times: np.ndarray
    golden_codes: np.ndarray
    observed_codes: np.ndarray
    hamming: np.ndarray
    ndf: float

    @property
    def period(self) -> float:
        """Signature period covered by the time axis."""
        return float(self.times[-1] + (self.times[1] - self.times[0]))

    def max_hamming(self) -> int:
        """Largest instantaneous Hamming distance."""
        return int(np.max(self.hamming))

    def excursions(self, level: int = 2) -> List[Tuple[float, float]]:
        """(start, end) intervals where dH >= level."""
        mask = self.hamming >= level
        if not np.any(mask):
            return []
        intervals = []
        in_run = False
        t0 = 0.0
        for i, flag in enumerate(mask):
            if flag and not in_run:
                in_run, t0 = True, self.times[i]
            elif not flag and in_run:
                in_run = False
                intervals.append((float(t0), float(self.times[i])))
        if in_run:
            intervals.append((float(t0), float(self.period)))
        return intervals


def build_chronogram(observed: Signature, golden: Signature,
                     num_points: int = 4000) -> ChronogramData:
    """Sample the Fig. 7 series from two signatures."""
    times, dh = hamming_chronogram(observed, golden, num_points)
    return ChronogramData(
        times=times,
        golden_codes=golden.code_at(times),
        observed_codes=observed.code_at(times),
        hamming=dh,
        ndf=ndf(observed, golden),
    )


def skipped_zone_events(observed: Signature,
                        golden: Signature) -> List[dict]:
    """Intervals where the observed trace visits a non-adjacent zone.

    Reproduces the paper's Fig. 6/7 commentary: the faulty trace
    "reaches zone 111110 (62) instead of the sequence 011110 (30),
    011100 (28), 111100 (60)".  Each event records the interval, the
    two codes and their Hamming distance (> 1).
    """
    cuts = np.unique(np.concatenate(
        [[0.0], observed.breakpoints(), golden.breakpoints(),
         [golden.period]]))
    events = []
    for t0, t1 in zip(cuts[:-1], cuts[1:]):
        mid = 0.5 * (t0 + t1)
        co = int(observed.code_at(mid))
        cg = int(golden.code_at(mid))
        d = hamming_distance(co, cg)
        if d >= 2:
            events.append({"start": float(t0), "end": float(t1),
                           "observed": co, "golden": cg, "hamming": d})
    return events


def ascii_chronogram(data: ChronogramData, width: int = 100,
                     height: int = 16) -> str:
    """ASCII rendering of the two staircases plus the Hamming track.

    Golden codes print as ``.``, observed as ``o`` (``#`` where they
    overlap); the bottom rows show the Hamming distance as digits.
    """
    max_code = int(max(data.golden_codes.max(), data.observed_codes.max(),
                       1))
    grid = [[" "] * width for _ in range(height)]
    n = len(data.times)
    for i in range(n):
        col = int(i * width / n)
        row_g = int((height - 1) * (1.0 - data.golden_codes[i] / max_code))
        row_o = int((height - 1) * (1.0 - data.observed_codes[i] / max_code))
        if grid[row_g][col] == " ":
            grid[row_g][col] = "."
        if row_o == row_g:
            grid[row_o][col] = "#"
        elif grid[row_o][col] in (" ", "."):
            grid[row_o][col] = "o"
    lines = ["".join(row) for row in grid]
    ham_row = []
    for col in range(width):
        i = min(n - 1, int(col * n / width))
        d = int(data.hamming[i])
        ham_row.append(str(d) if d > 0 else "-")
    lines.append("")
    lines.append("".join(ham_row) + "   (Hamming distance per time bin)")
    return "\n".join(lines)
