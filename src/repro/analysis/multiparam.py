"""Multi-parameter verification: the NDF over the (f0, Q) plane.

The paper verifies one parameter (f0).  Real specs constrain several;
this module maps the NDF response surface over a (f0, Q)-deviation
grid and quantifies two things:

* **coverage** -- which parameter combinations a given NDF threshold
  rejects (the acceptance region in parameter space);
* **ambiguity** -- the NDF is a scalar, so distinct parameter
  deviations can alias onto the same value; the ambiguity index
  measures how much of an NDF iso-contour spreads across parameter
  space, motivating the multi-channel extension
  (:mod:`repro.core.multichannel`) and the regression baseline for
  diagnosis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.core.testflow import SignatureTester
from repro.filters.biquad import BiquadFilter, BiquadSpec


@dataclass
class NdfSurface:
    """NDF sampled on a (f0 deviation, Q deviation) grid."""

    f0_deviations: np.ndarray
    q_deviations: np.ndarray
    ndf: np.ndarray  # shape (len(q_deviations), len(f0_deviations))

    def at(self, f0_dev: float, q_dev: float) -> float:
        """Bilinear interpolation on the surface."""
        from scipy.interpolate import RegularGridInterpolator

        interp = RegularGridInterpolator(
            (self.q_deviations, self.f0_deviations), self.ndf)
        return float(interp([[q_dev, f0_dev]])[0])

    def acceptance_region(self, threshold: float) -> np.ndarray:
        """Boolean mask of grid points passing the band."""
        return self.ndf <= threshold

    def accepted_fraction(self, threshold: float) -> float:
        """Share of the sampled grid inside the acceptance region."""
        return float(np.mean(self.acceptance_region(threshold)))

    def f0_only_profile(self) -> np.ndarray:
        """The Fig. 8 cut: NDF along q_dev = 0."""
        row = int(np.argmin(np.abs(self.q_deviations)))
        return self.ndf[row]

    def q_only_profile(self) -> np.ndarray:
        """NDF along f0_dev = 0 (the parameter the LP tap barely sees)."""
        col = int(np.argmin(np.abs(self.f0_deviations)))
        return self.ndf[:, col]

    def ambiguity_index(self, level: float,
                        tolerance: float = 0.1) -> float:
        """Spread of the NDF iso-contour at ``level`` in parameter space.

        Collects grid points whose NDF is within ``tolerance`` x level
        of the level and returns the RMS spread of their parameter
        coordinates (normalized by the grid half-range).  0 would mean
        the level pins the parameters uniquely; values near 1 mean the
        contour spans the whole grid -- the scalar NDF cannot localize
        the defect.
        """
        mask = np.abs(self.ndf - level) <= tolerance * level
        if not np.any(mask):
            return float("nan")
        qq, ff = np.meshgrid(self.q_deviations, self.f0_deviations,
                             indexing="ij")
        f_sel = ff[mask]
        q_sel = qq[mask]
        f_range = max(abs(self.f0_deviations[0]),
                      abs(self.f0_deviations[-1]))
        q_range = max(abs(self.q_deviations[0]),
                      abs(self.q_deviations[-1]))
        spread = np.sqrt(np.std(f_sel / f_range) ** 2
                         + np.std(q_sel / q_range) ** 2)
        return float(spread)


def ndf_surface(tester: Optional[SignatureTester], golden_spec: BiquadSpec,
                f0_deviations: Sequence[float],
                q_deviations: Sequence[float],
                cut_factory: Optional[Callable] = None,
                engine=None) -> NdfSurface:
    """Sample the NDF over the (f0, Q) deviation grid.

    ``cut_factory(f0_dev, q_dev)`` may override how CUTs are built
    (e.g. to use the multi-channel CUT); the default deviates the
    behavioural Biquad.

    When a :class:`repro.campaign.CampaignEngine` is passed as
    ``engine`` (and no custom factory is in play), the whole grid runs
    as one batched campaign instead of ``len(grid)`` per-die
    measurements; ``tester`` may then be None.
    """
    f0_deviations = np.asarray(list(f0_deviations), dtype=float)
    q_deviations = np.asarray(list(q_deviations), dtype=float)

    if engine is not None and cut_factory is None:
        from repro.campaign.scenarios import parameter_grid

        population = parameter_grid(golden_spec, f0_deviations,
                                    q_deviations)
        result = engine.run(population, band=None)
        surface = result.ndfs.reshape(q_deviations.size,
                                      f0_deviations.size)
        return NdfSurface(f0_deviations, q_deviations, surface)

    if tester is None:
        raise ValueError("need a tester when not running via an engine")
    if cut_factory is None:
        def cut_factory(f0_dev: float, q_dev: float):
            return BiquadFilter(golden_spec.with_f0_deviation(f0_dev)
                                .with_q_deviation(q_dev))

    surface = np.empty((q_deviations.size, f0_deviations.size))
    for i, q_dev in enumerate(q_deviations):
        for j, f0_dev in enumerate(f0_deviations):
            surface[i, j] = tester.ndf_of(cut_factory(float(f0_dev),
                                                      float(q_dev)))
    return NdfSurface(f0_deviations, q_deviations, surface)
