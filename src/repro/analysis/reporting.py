"""Plain-text reporting helpers shared by the benchmarks.

Every benchmark prints a "paper vs measured" block so deviations from
the published artifacts are visible in CI logs, never silent.  These
helpers keep the formatting consistent: fixed-width tables, an ASCII
x-y plot for sweep curves, and the comparison row type.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Union

import numpy as np

Value = Union[str, float, int, None]


def format_table(headers: Sequence[str],
                 rows: Iterable[Sequence[Value]]) -> str:
    """Fixed-width table with a header rule."""
    str_rows = [[_fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def line(cells):
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()
    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)


def _fmt(value: Value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e4 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4f}".rstrip("0").rstrip(".")
    return str(value)


@dataclass
class Comparison:
    """One paper-vs-measured line of an experiment report."""

    quantity: str
    paper: Value
    measured: Value
    match: Optional[bool] = None
    note: str = ""

    def row(self) -> List[Value]:
        """Row for :func:`format_table`."""
        verdict = "-" if self.match is None else ("ok" if self.match
                                                  else "DIFFERS")
        return [self.quantity, self.paper, self.measured, verdict,
                self.note]


def comparison_table(comparisons: Sequence[Comparison]) -> str:
    """The standard paper-vs-measured block."""
    return format_table(["quantity", "paper", "measured", "match", "note"],
                        [c.row() for c in comparisons])


def ascii_xy_plot(x: np.ndarray, y: np.ndarray, width: int = 72,
                  height: int = 20, marker: str = "*",
                  x_label: str = "x", y_label: str = "y") -> str:
    """Minimal scatter/curve plot for sweep benches (Fig. 8 style)."""
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    finite = np.isfinite(x) & np.isfinite(y)
    x, y = x[finite], y[finite]
    if x.size == 0:
        return "(no finite data)"
    x_lo, x_hi = float(x.min()), float(x.max())
    y_lo, y_hi = float(y.min()), float(y.max())
    x_span = x_hi - x_lo or 1.0
    y_span = y_hi - y_lo or 1.0
    grid = [[" "] * width for _ in range(height)]
    for xi, yi in zip(x, y):
        col = int((xi - x_lo) / x_span * (width - 1))
        row = int((1.0 - (yi - y_lo) / y_span) * (height - 1))
        grid[row][col] = marker
    lines = ["".join(r) for r in grid]
    lines.append(f"x: {x_label} in [{x_lo:.4g}, {x_hi:.4g}]   "
                 f"y: {y_label} in [{y_lo:.4g}, {y_hi:.4g}]")
    return "\n".join(lines)


def banner(title: str, char: str = "=") -> str:
    """Section banner used at the top of each benchmark report."""
    bar = char * max(len(title), 8)
    return f"{bar}\n{title}\n{bar}"


def close(measured: float, paper: float, rel_tol: float = 0.25,
          abs_tol: float = 0.0) -> bool:
    """Shape-level agreement test used in the comparison blocks.

    The reproduction runs on a surrogate substrate, so agreement means
    "same magnitude/shape", not bit-exactness; the default tolerance is
    25 % relative.
    """
    return abs(measured - paper) <= max(rel_tol * abs(paper), abs_tol)
