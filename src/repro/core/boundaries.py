"""Zone boundaries in the X-Y plane.

A boundary is any curve that splits the plane in two; the paper encodes
each side with one bit: "every monitor delivers a digital '0' for the
region containing the origin, and a digital '1' otherwise".

The abstraction is a signed, continuous *decision function* g(x, y)
whose zero level-set is the boundary.  The bit for a point is 1 when
the sign of g there differs from the sign of g at the origin.  When the
origin lies exactly on the curve (the paper's 45-degree line through
(0,0)), a reference point just off the curve defines the "origin side"
-- matching Fig. 6 where the all-zeros zone is the region below the
diagonal.

Concrete families:

* :class:`LinearBoundary` -- straight lines, the prior-work partitions
  ([12], [13]) used by the baseline;
* :class:`CallableBoundary` -- wraps any g(x, y);
* :class:`repro.monitor.comparator.MonitorBoundary` -- the paper's
  current-comparator curves (nonlinear), living in the monitor package.
"""

from __future__ import annotations

import abc
import math
from typing import Callable, Optional, Tuple

import numpy as np


class Boundary(abc.ABC):
    """Signed-decision-function view of a plane-splitting curve."""

    def __init__(self, name: str,
                 origin: Tuple[float, float] = (0.0, 0.0),
                 reference_point: Optional[Tuple[float, float]] = None) -> None:
        self.name = name
        self.origin = origin
        self._reference_point = reference_point
        self._origin_sign: Optional[float] = None

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def decision(self, x, y):
        """Signed decision value(s); zero on the boundary.

        Must accept scalars or broadcastable numpy arrays and be
        continuous across the plane.
        """

    # ------------------------------------------------------------------
    @property
    def origin_sign(self) -> float:
        """Sign of the decision function on the origin side (+1/-1).

        When a ``reference_point`` is provided it *always* defines the
        zero side: a comparator's digital polarity is fixed by design,
        not by the sub-threshold residue at the origin.  (Previously the
        reference was consulted only when the origin sat exactly on the
        curve; a Monte Carlo-varied near-origin boundary then inherited
        the arbitrary sign of a femtoampere imbalance, inverting its
        bit for the whole period.)
        """
        if self._origin_sign is None:
            if self._reference_point is not None:
                g0 = float(self.decision(*self._reference_point))
                if g0 == 0.0:
                    raise ValueError(
                        f"boundary {self.name!r}: reference point lies on "
                        f"the boundary")
            else:
                g0 = float(self.decision(*self.origin))
                scale = self._decision_scale()
                if abs(g0) <= 1e-9 * scale:
                    raise ValueError(
                        f"boundary {self.name!r} passes through the "
                        f"origin; provide reference_point to define the "
                        f"zero side")
            self._origin_sign = math.copysign(1.0, g0)
        return self._origin_sign

    def _decision_scale(self) -> float:
        """Typical |g| magnitude, for the on-boundary tolerance test."""
        probes = [(0.0, 1.0), (1.0, 0.0), (1.0, 1.0), (0.5, 0.5)]
        vals = [abs(float(self.decision(px, py))) for px, py in probes]
        return max(max(vals), 1e-30)

    # ------------------------------------------------------------------
    def bit(self, x, y):
        """0 on the origin side, 1 on the other side.

        Points exactly on the curve (g = 0) belong to the origin side;
        the measure-zero tie matches a real comparator's arbitrary but
        consistent resolution.
        """
        g = np.asarray(self.decision(x, y))
        bits = (g * self.origin_sign < 0).astype(np.uint8)
        if bits.ndim == 0:
            return int(bits)
        return bits

    # ------------------------------------------------------------------
    def locus_points(self, axis_values: np.ndarray, sweep: str = "x",
                     window: Tuple[float, float] = (0.0, 1.0),
                     tol: float = 1e-9) -> np.ndarray:
        """Numerically trace the zero level-set inside a square window.

        For each value on ``axis_values`` along the sweep axis, bisect
        the decision function along the other axis; NaN where the curve
        does not cross the window.  Used to reproduce Fig. 4.
        """
        lo, hi = window
        out = np.full(len(axis_values), np.nan)
        for i, v in enumerate(axis_values):
            if sweep == "x":
                f = lambda w: float(self.decision(v, w))
            else:
                f = lambda w: float(self.decision(w, v))
            f_lo, f_hi = f(lo), f(hi)
            if f_lo == 0.0:
                out[i] = lo
                continue
            if f_hi == 0.0:
                out[i] = hi
                continue
            if f_lo * f_hi > 0:
                continue
            a, b = lo, hi
            fa = f_lo
            while b - a > tol:
                mid = 0.5 * (a + b)
                fm = f(mid)
                if fm == 0.0:
                    a = b = mid
                    break
                if fa * fm < 0:
                    b = mid
                else:
                    a, fa = mid, fm
            out[i] = 0.5 * (a + b)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


class LinearBoundary(Boundary):
    """Straight line ``a x + b y + c = 0`` (the prior-work partitions)."""

    def __init__(self, name: str, a: float, b: float, c: float,
                 reference_point: Optional[Tuple[float, float]] = None) -> None:
        if a == 0.0 and b == 0.0:
            raise ValueError("degenerate line: a and b both zero")
        super().__init__(name, reference_point=reference_point)
        self.a = float(a)
        self.b = float(b)
        self.c = float(c)

    def decision(self, x, y):
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        out = self.a * x + self.b * y + self.c
        if out.ndim == 0:
            return float(out)
        return out

    @classmethod
    def vertical(cls, name: str, x0: float) -> "LinearBoundary":
        """The line x = x0."""
        return cls(name, 1.0, 0.0, -x0)

    @classmethod
    def horizontal(cls, name: str, y0: float) -> "LinearBoundary":
        """The line y = y0."""
        return cls(name, 0.0, 1.0, -y0)

    @classmethod
    def diagonal(cls, name: str,
                 reference_point: Tuple[float, float] = (0.5, 0.0)
                 ) -> "LinearBoundary":
        """The 45-degree line y = x; origin side defaults to below."""
        return cls(name, -1.0, 1.0, 0.0, reference_point=reference_point)


class CallableBoundary(Boundary):
    """Boundary defined by an arbitrary decision callable."""

    def __init__(self, name: str, func: Callable,
                 reference_point: Optional[Tuple[float, float]] = None) -> None:
        super().__init__(name, reference_point=reference_point)
        self._func = func

    def decision(self, x, y):
        return self._func(x, y)
