"""Zone encoding: a bank of boundaries maps (x, y) to an n-bit code.

Each boundary contributes one bit (0 on the origin side).  The first
boundary in the bank is the most significant bit, matching the paper's
Fig. 6 where curve 1 of Table I drives the MSB of the six-bit codes
(e.g. zone 000100 = 4 lies beyond curve 4's arc only).

Because a trace flips exactly one bit when it crosses exactly one
boundary, neighbouring zones differ in one bit -- "according to the
zone codification criterion, neighbouring zones only differ in one
bit. This is why the Hamming distance is suitable."  The
:meth:`ZoneEncoder.adjacency_report` verifies this Gray-like property
on a grid, flagging boundary tangencies/intersections that would break
it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.boundaries import Boundary


def hamming_distance(a: int, b: int) -> int:
    """Bit-level Hamming distance between two zone codes."""
    return bin(int(a) ^ int(b)).count("1")


def hamming_distances(a, b) -> np.ndarray:
    """Elementwise Hamming distance between two zone-code arrays."""
    xor = np.bitwise_xor(np.asarray(a, dtype=np.int64),
                         np.asarray(b, dtype=np.int64))
    return np.bitwise_count(xor).astype(np.int64)


class ZoneEncoder:
    """Orders a bank of boundaries into an n-bit zone code.

    Parameters
    ----------
    boundaries:
        MSB-first sequence of :class:`Boundary` objects.
    """

    def __init__(self, boundaries: Sequence[Boundary]) -> None:
        if not boundaries:
            raise ValueError("need at least one boundary")
        self.boundaries: Tuple[Boundary, ...] = tuple(boundaries)

    @property
    def num_bits(self) -> int:
        """Width of the zone code in bits."""
        return len(self.boundaries)

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def bits(self, x, y) -> np.ndarray:
        """Bit array for point(s); shape (..., num_bits), MSB first."""
        cols = [np.asarray(b.bit(x, y), dtype=np.uint8)
                for b in self.boundaries]
        return np.stack(cols, axis=-1)

    def code(self, x, y):
        """Integer zone code(s) for point(s)."""
        bits = self.bits(x, y)
        weights = 1 << np.arange(self.num_bits - 1, -1, -1, dtype=np.int64)
        codes = (bits.astype(np.int64) * weights).sum(axis=-1)
        if codes.ndim == 0:
            return int(codes)
        return codes

    def code_string(self, code: int) -> str:
        """Binary string of a code, MSB first (as printed in Fig. 6)."""
        return format(int(code), f"0{self.num_bits}b")

    # ------------------------------------------------------------------
    # Zone census
    # ------------------------------------------------------------------
    def zone_census(self, window: Tuple[float, float] = (0.0, 1.0),
                    grid: int = 256) -> Dict[int, int]:
        """Histogram of codes realized on a uniform grid of the window.

        Returns {code: cell count}; the keys are the *realized zones*
        (with 6 boundaries at most a few dozen of the 64 codes occur).
        """
        lo, hi = window
        axis = lo + (hi - lo) * (np.arange(grid) + 0.5) / grid
        xx, yy = np.meshgrid(axis, axis)
        codes = self.code(xx, yy)
        values, counts = np.unique(codes, return_counts=True)
        return {int(v): int(c) for v, c in zip(values, counts)}

    def origin_zone(self) -> int:
        """Code of the zone containing the origin (must be 0)."""
        return int(self.code(*self.boundaries[0].origin))

    def fingerprint(self, window: Tuple[float, float] = (0.0, 1.0),
                    grid: int = 24) -> str:
        """Content hash of the zone partition inside a window.

        Two encoders that draw the same boundaries (to the resolution
        of a ``grid`` x ``grid`` probe plus each boundary's decision
        values) share a fingerprint even when they were built from
        distinct objects.  The campaign golden-signature cache keys on
        this, so re-instantiating the Table I bank does not defeat
        caching, while a Monte Carlo-varied bank reliably misses.
        """
        import hashlib

        lo, hi = window
        axis = lo + (hi - lo) * (np.arange(grid) + 0.5) / grid
        xx, yy = np.meshgrid(axis, axis)
        hasher = hashlib.sha256()
        hasher.update(np.int64(self.num_bits).tobytes())
        hasher.update(np.ascontiguousarray(
            self.code(xx, yy).astype(np.int64)).tobytes())
        for boundary in self.boundaries:
            vals = np.asarray(boundary.decision(xx, yy), dtype=float)
            scale = float(np.max(np.abs(vals)))
            if scale > 0:
                vals = vals / scale
            hasher.update(np.ascontiguousarray(np.round(vals, 9)).tobytes())
        return hasher.hexdigest()

    # ------------------------------------------------------------------
    # Gray-adjacency verification
    # ------------------------------------------------------------------
    @dataclass
    class AdjacencyReport:
        """Result of the grid-based neighbour analysis.

        ``pairs`` maps each adjacent code pair to the number of pixel
        edges separating them.  ``point_contacts`` are multi-bit pairs
        touching only at isolated points (boundary intersections --
        measure zero, harmless for the NDF); ``violations`` are
        multi-bit pairs sharing an extended 1-D border, which would
        break the paper's "neighbouring zones only differ in one bit"
        property.
        """

        pairs: Dict[Tuple[int, int], int]
        point_contacts: List[Tuple[int, int]]
        violations: List[Tuple[int, int]]

        @property
        def is_gray(self) -> bool:
            """True when all extended zone borders flip exactly one bit."""
            return not self.violations

    def adjacency_report(self, window: Tuple[float, float] = (0.0, 1.0),
                         grid: int = 512) -> "ZoneEncoder.AdjacencyReport":
        """Check the one-bit-per-crossing property on a pixel grid.

        Two codes are *adjacent* when horizontally/vertically
        neighbouring pixels carry them.  A pair separated by an
        extended shared border produces O(grid) adjacent pixel edges;
        a pair touching only where two boundaries intersect produces
        O(1).  Multi-bit pairs are therefore classified by their pixel
        count: at most ``grid / 24`` edges means a point contact, more
        means a genuine Gray violation.
        """
        lo, hi = window
        axis = lo + (hi - lo) * (np.arange(grid) + 0.5) / grid
        xx, yy = np.meshgrid(axis, axis)
        codes = self.code(xx, yy)
        pairs: Dict[Tuple[int, int], int] = {}
        for a, b in ((codes[:, :-1], codes[:, 1:]),
                     (codes[:-1, :], codes[1:, :])):
            diff = a != b
            ca = a[diff]
            cb = b[diff]
            for u, v in zip(ca.ravel(), cb.ravel()):
                key = (int(min(u, v)), int(max(u, v)))
                pairs[key] = pairs.get(key, 0) + 1
        point_threshold = max(5, grid // 24)
        point_contacts = []
        violations = []
        for pair, count in pairs.items():
            if hamming_distance(*pair) == 1:
                continue
            if count <= point_threshold:
                point_contacts.append(pair)
            else:
                violations.append(pair)
        return ZoneEncoder.AdjacencyReport(pairs, point_contacts, violations)

    # ------------------------------------------------------------------
    def ascii_zone_map(self, window: Tuple[float, float] = (0.0, 1.0),
                       width: int = 64, height: int = 32) -> str:
        """Coarse ASCII map of zone codes (hex digits) for bench reports."""
        lo, hi = window
        xs = lo + (hi - lo) * (np.arange(width) + 0.5) / width
        ys = lo + (hi - lo) * (np.arange(height) + 0.5) / height
        rows = []
        alphabet = "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ-+"
        for y in ys[::-1]:
            codes = self.code(xs, np.full_like(xs, y))
            rows.append("".join(alphabet[int(c) % len(alphabet)]
                                for c in codes))
        return "\n".join(rows)
