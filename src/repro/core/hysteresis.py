"""Hysteretic zone capture (the M6/M7 positive-feedback pair).

The fabricated monitor's cross-coupled pMOS pair gives the comparator a
small amount of positive feedback.  Behaviourally that is hysteresis:
once a boundary bit has flipped, the trace must back off by a finite
margin before it flips back.  Two consequences matter for testing:

* **chatter suppression** -- with measurement noise the memoryless
  comparator toggles rapidly while the trace runs along a boundary;
  hysteresis larger than the noise amplitude removes the toggling;
* **systematic lag** -- every crossing is reported late by the
  hysteresis margin; golden and CUT captures lag alike, so the NDF
  penalty is second-order (quantified in the tests).

The hysteresis margin is expressed in *volts of trace motion* normal to
the boundary: the raw decision value is normalized by the local
gradient magnitude, giving a geometry-independent margin.
"""

from __future__ import annotations


import numpy as np

from repro.core.signature import Signature
from repro.core.zones import ZoneEncoder
from repro.signals.lissajous import LissajousTrace


class HystereticEncoder:
    """Stateful zone encoding along a trajectory.

    Parameters
    ----------
    encoder:
        The underlying (memoryless) zone encoder.
    margin_volts:
        Hysteresis half-width: a bit flips only when the trace is more
        than this far on the other side of the boundary (measured as
        signed distance, i.e. decision value over gradient magnitude).
    gradient_step:
        Finite-difference step for the gradient normalization.
    """

    def __init__(self, encoder: ZoneEncoder, margin_volts: float = 0.005,
                 gradient_step: float = 1e-5) -> None:
        if margin_volts < 0:
            raise ValueError("hysteresis margin must be non-negative")
        self.encoder = encoder
        self.margin_volts = float(margin_volts)
        self.gradient_step = float(gradient_step)

    # ------------------------------------------------------------------
    def signed_distances(self, boundary, xs: np.ndarray,
                         ys: np.ndarray) -> np.ndarray:
        """Signed boundary distance along the trajectory (volts).

        Positive on the bit-1 side (away from the origin side).
        """
        e = self.gradient_step
        g = np.asarray(boundary.decision(xs, ys), dtype=float)
        gx = (np.asarray(boundary.decision(xs + e, ys), dtype=float)
              - np.asarray(boundary.decision(xs - e, ys), dtype=float)) \
            / (2.0 * e)
        gy = (np.asarray(boundary.decision(xs, ys + e), dtype=float)
              - np.asarray(boundary.decision(xs, ys - e), dtype=float)) \
            / (2.0 * e)
        grad = np.hypot(gx, gy)
        grad[grad == 0.0] = np.inf  # flat spots: distance saturates to 0
        return -boundary.origin_sign * g / grad

    def bit_sequence(self, boundary, xs: np.ndarray,
                     ys: np.ndarray) -> np.ndarray:
        """Hysteretic bit stream of one boundary along the trajectory."""
        s = self.signed_distances(boundary, xs, ys)
        h = self.margin_volts
        bits = np.empty(len(s), dtype=np.uint8)
        state = bool(s[0] > 0.0)  # initial sample: memoryless decision
        for i, value in enumerate(s):
            if state and value < -h:
                state = False
            elif not state and value > h:
                state = True
            bits[i] = state
        return bits

    def code_sequence(self, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        """Hysteretic zone codes along the trajectory."""
        columns = [self.bit_sequence(b, xs, ys)
                   for b in self.encoder.boundaries]
        bits = np.stack(columns, axis=-1).astype(np.int64)
        weights = 1 << np.arange(self.encoder.num_bits - 1, -1, -1,
                                 dtype=np.int64)
        return (bits * weights).sum(axis=-1)

    # ------------------------------------------------------------------
    def capture(self, trace: LissajousTrace) -> Signature:
        """Capture a signature with hysteretic comparators.

        The state machine runs the trace *twice*: the first pass warms
        the comparator states so the reported period starts from the
        steady periodic state, not the arbitrary memoryless
        initialization.
        """
        xs, ys = trace.points()
        xs2 = np.concatenate([xs, xs])
        ys2 = np.concatenate([ys, ys])
        codes = self.code_sequence(xs2, ys2)[len(xs):]
        times = trace.times - trace.times[0]
        return Signature.from_samples(times, codes, trace.period)

    def chatter_count(self, trace: LissajousTrace) -> int:
        """Number of zone transitions in one captured period.

        The noise study uses this to show hysteresis collapsing the
        chatter: a noisy memoryless capture has hundreds of transitions,
        the hysteretic one close to the noise-free count.
        """
        return len(self.capture(trace)) - 1
