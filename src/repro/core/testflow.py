"""End-to-end test flow: golden signature, CUT measurement, verdict.

This module wires the pieces of the paper's method into one object:

1. a multitone stimulus drives the CUT;
2. the CUT's (x, y) composition is captured as a digital signature
   through the zone encoder (ideal capture by default, optionally the
   Fig. 5 asynchronous hardware model);
3. the NDF against the golden signature feeds the decision band.

Any object with a ``lissajous(stimulus, samples_per_period)`` method is
a CUT -- both :class:`repro.filters.biquad.BiquadFilter` (behavioural)
and :class:`repro.filters.towthomas.TowThomasBiquad` (structural)
qualify.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.core.capture import AsyncCapture, capture_signature
from repro.core.decision import (
    DecisionBand,
    TestVerdict,
    ThresholdCalibration,
)
from repro.core.ndf import ndf
from repro.core.signature import Signature
from repro.core.zones import ZoneEncoder
from repro.signals.filtering import BandLimiter
from repro.signals.lissajous import LissajousTrace
from repro.signals.multitone import Multitone
from repro.signals.noise import NoiseModel


@dataclass
class MeasurementResult:
    """Signature measurement of one CUT."""

    signature: Signature
    trace: LissajousTrace
    ndf: Optional[float] = None
    verdict: Optional[TestVerdict] = None


class SignatureTester:
    """Holds the test bench: stimulus, encoder, golden unit, capture.

    Parameters
    ----------
    encoder:
        Zone encoder (the monitor bank).
    stimulus:
        Multitone applied to the CUT input (also the X signal).
    golden_cut:
        The reference unit whose signature defines "defect-free".
    samples_per_period:
        Trace sampling density for capture.
    refine:
        Refine zone-crossing instants by bisection (ideal capture).
    capture:
        Optional :class:`AsyncCapture` hardware model; when given, all
        signatures (golden included) pass through its quantization.
    noise:
        Optional measurement-noise model applied to the traces; noisy
        captures disable refinement automatically.
    prefilter:
        Optional monitor front-end band limiter applied to every trace
        (clean and noisy alike), modelling the input pole that averages
        high-frequency noise.
    """

    def __init__(self, encoder: ZoneEncoder, stimulus: Multitone,
                 golden_cut, samples_per_period: int = 4096,
                 refine: bool = True,
                 capture: Optional[AsyncCapture] = None,
                 noise: Optional[NoiseModel] = None,
                 prefilter: Optional[BandLimiter] = None) -> None:
        self.encoder = encoder
        self.stimulus = stimulus
        self.golden_cut = golden_cut
        self.samples_per_period = int(samples_per_period)
        self.refine = bool(refine)
        self.capture = capture
        self.noise = noise
        self.prefilter = prefilter
        self._golden_signature: Optional[Signature] = None

    # ------------------------------------------------------------------
    # Signature acquisition
    # ------------------------------------------------------------------
    def trace_of(self, cut) -> LissajousTrace:
        """One steady-state Lissajous period of a CUT."""
        trace = cut.lissajous(self.stimulus, self.samples_per_period)
        if self.noise is not None:
            x, y = self.noise.corrupt_pair(trace.x, trace.y)
            trace = LissajousTrace(x, y, trace.period)
        if self.prefilter is not None:
            trace = self.prefilter.apply_trace(trace)
        return trace

    def _refine_allowed(self) -> bool:
        """Bisection refinement only makes sense on analytic traces."""
        return (self.refine and self.noise is None
                and self.prefilter is None)

    def signature_of(self, cut) -> Signature:
        """Captured signature of a CUT."""
        trace = self.trace_of(cut)
        refine = self._refine_allowed()
        if self.capture is not None:
            return self.capture.capture(trace, refine=refine)
        return capture_signature(self.encoder, trace, refine=refine)

    def golden_signature(self) -> Signature:
        """Cached signature of the golden unit."""
        if self._golden_signature is None:
            self._golden_signature = self.signature_of(self.golden_cut)
        return self._golden_signature

    # ------------------------------------------------------------------
    # Measurements
    # ------------------------------------------------------------------
    def ndf_of(self, cut) -> float:
        """NDF of a CUT against the golden signature."""
        return ndf(self.signature_of(cut), self.golden_signature())

    def measure(self, cut,
                band: Optional[DecisionBand] = None) -> MeasurementResult:
        """Full measurement: trace, signature, NDF, optional verdict."""
        trace = self.trace_of(cut)
        refine = self._refine_allowed()
        if self.capture is not None:
            signature = self.capture.capture(trace, refine=refine)
        else:
            signature = capture_signature(self.encoder, trace, refine=refine)
        value = ndf(signature, self.golden_signature())
        verdict = band.decide(value) if band is not None else None
        return MeasurementResult(signature, trace, value, verdict)

    # ------------------------------------------------------------------
    # Sweeps (Fig. 8)
    # ------------------------------------------------------------------
    def sweep(self, cuts_with_deviations: Sequence[Tuple[float, object]]
              ) -> ThresholdCalibration:
        """NDF sweep over (deviation, CUT) pairs -> calibration object."""
        pairs = sorted(cuts_with_deviations, key=lambda p: p[0])
        deviations = np.asarray([d for d, _ in pairs])
        ndfs = np.asarray([self.ndf_of(cut) for _, cut in pairs])
        return ThresholdCalibration(deviations, ndfs)

    def sweep_with(self, deviations: Iterable[float],
                   cut_factory: Callable[[float], object]
                   ) -> ThresholdCalibration:
        """Sweep using a factory mapping deviation -> CUT."""
        return self.sweep([(d, cut_factory(d)) for d in deviations])

    # ------------------------------------------------------------------
    # Noise studies (paper Section IV-C)
    # ------------------------------------------------------------------
    def noisy_ndf_population(self, cut, noise: NoiseModel,
                             repeats: int = 20) -> np.ndarray:
        """NDF samples of one CUT under repeated noisy measurements.

        The golden signature stays the (noise-free) reference; each
        repeat corrupts the CUT's trace with a fresh noise realization
        -- this is how the paper's "1 % deviations are detected with
        3-sigma 0.015 V noise" claim is evaluated.
        """
        golden = self.golden_signature()
        base_trace = cut.lissajous(self.stimulus, self.samples_per_period)
        values = []
        for _ in range(repeats):
            x, y = noise.corrupt_pair(base_trace.x, base_trace.y)
            trace = LissajousTrace(x, y, base_trace.period)
            if self.prefilter is not None:
                trace = self.prefilter.apply_trace(trace)
            if self.capture is not None:
                signature = self.capture.capture(trace, refine=False)
            else:
                signature = capture_signature(self.encoder, trace,
                                              refine=False)
            values.append(ndf(signature, golden))
        return np.asarray(values)

    def detection_rate(self, cut, noise: NoiseModel,
                       band: DecisionBand, repeats: int = 20) -> float:
        """Fraction of noisy measurements flagged FAIL for this CUT."""
        values = self.noisy_ndf_population(cut, noise, repeats)
        return float(np.mean(values > band.threshold))
