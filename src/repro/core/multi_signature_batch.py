"""Packed multi-channel signatures: K observation views per die.

The fault-trajectory literature resolves ambiguity groups -- faults
provably indistinguishable in one signature space -- by observing the
same CUT through *additional* response views; MISR-style BIST likewise
compacts several observation channels into one verdict.  A
:class:`MultiSignatureBatch` is the fleet-scale carrier for that idea:
K channels of the packed CSR :class:`~repro.core.signature_batch.
SignatureBatch` representation, all describing the *same* N dies, each
channel encoded by its own monitor bank from the same trace stack (the
expensive front half runs once; see
:meth:`repro.campaign.engine.CampaignEngine.run` with ``encoders=``).

Layout and contract
-------------------
Channel ``k`` is a full, independent :class:`SignatureBatch` -- same
flat CSR ``codes``/``durations``/``row_offsets`` arrays, same one-pass
fleet-NDF kernel.  Nothing is re-derived across channels, so:

* channel ``k`` of :meth:`ndf_to` is **bit-identical** to running
  ``self.channel(k).ndf_to(goldens[k])`` on an independent
  single-channel batch (asserted by the multichannel tests);
* :meth:`select`, :meth:`concatenate` and :meth:`empty` apply the
  single-channel operations channel by channel, so multi-signature
  results ride ``keep_signatures=True`` through every executor and
  streamed campaign exactly like single-channel ones;
* channel 0 of every engine result is bit-identical to the
  single-channel flow (the channel-0 bit-compatibility contract; see
  ``docs/paper_map.md``).

Per-die unpacking (:meth:`row`) exists only for the report edges,
mirroring :class:`~repro.core.multichannel.MultiSignature` -- the
per-die object this batch replaces at fleet scale.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.core.signature import Signature
from repro.core.signature_batch import SignatureBatch


class MultiSignatureBatch:
    """K packed :class:`SignatureBatch` channels over the same N dies.

    Parameters
    ----------
    channels:
        One :class:`SignatureBatch` per observation channel, all with
        the same row count (channel 0 is the primary screening
        channel).
    """

    def __init__(self, channels: Sequence[SignatureBatch]) -> None:
        channels = tuple(channels)
        if not channels:
            raise ValueError("need at least one channel")
        n = len(channels[0])
        if any(len(channel) != n for channel in channels[1:]):
            raise ValueError("channels must describe the same dies "
                             "(row counts differ)")
        self.channels: tuple = channels

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_code_stacks(cls, times: np.ndarray,
                         code_stacks: Sequence[np.ndarray],
                         period: float) -> "MultiSignatureBatch":
        """Run-length extract one ``(N, T)`` code stack per channel.

        Channel ``k`` equals ``SignatureBatch.from_code_stack(times,
        code_stacks[k], period)`` bit for bit -- the channels share the
        capture grid but nothing else.
        """
        return cls([SignatureBatch.from_code_stack(times, stack, period)
                    for stack in code_stacks])

    @classmethod
    def empty(cls, num_channels: int) -> "MultiSignatureBatch":
        """A zero-row batch with the given channel count."""
        if num_channels < 1:
            raise ValueError("need at least one channel")
        return cls([SignatureBatch.empty()
                    for __ in range(num_channels)])

    @classmethod
    def concatenate(cls, batches: Sequence["MultiSignatureBatch"]
                    ) -> "MultiSignatureBatch":
        """Stack batches row-wise, channel by channel.

        The streamed/chunked campaign merge: channel ``k`` of the
        result is ``SignatureBatch.concatenate`` of the source
        channel-``k`` batches, so every row stays bit-identical to its
        source.  All inputs must agree on the channel count.
        """
        batches = list(batches)
        if not batches:
            raise ValueError("need at least one batch to concatenate "
                             "(channel count would be ambiguous)")
        k = batches[0].num_channels
        if any(b.num_channels != k for b in batches[1:]):
            raise ValueError("batches must agree on the channel count")
        return cls([SignatureBatch.concatenate([b.channels[i]
                                                for b in batches])
                    for i in range(k)])

    def select(self, indices) -> "MultiSignatureBatch":
        """New batch holding the given rows of every channel.

        The diagnosis carve-out, channel-parallel: each channel's rows
        are gathered with :meth:`SignatureBatch.select`, so they stay
        bit-identical to their sources and aligned across channels.
        """
        return MultiSignatureBatch([channel.select(indices)
                                    for channel in self.channels])

    # ------------------------------------------------------------------
    # Introspection / conversion
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.channels[0])

    @property
    def num_channels(self) -> int:
        """Number of observation channels K."""
        return len(self.channels)

    def channel(self, k: int) -> SignatureBatch:
        """The packed single-channel batch of channel ``k``."""
        return self.channels[k]

    def row(self, i: int) -> List[Signature]:
        """Per-channel signatures of die ``i`` (report edge only)."""
        return [channel.row(i) for channel in self.channels]

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def ndf_to(self, goldens: Sequence[Signature]) -> np.ndarray:
        """``(N, K)`` NDFs against one golden signature per channel.

        Column ``k`` is one fleet-kernel pass of channel ``k`` against
        ``goldens[k]`` -- bit-identical to K independent single-channel
        :meth:`SignatureBatch.ndf_to` runs.
        """
        goldens = list(goldens)
        if len(goldens) != self.num_channels:
            raise ValueError("need one golden signature per channel")
        columns = [channel.ndf_to(golden)
                   for channel, golden in zip(self.channels, goldens)]
        return np.stack(columns, axis=1)
