"""The paper's core method: zoning, signatures, NDF, decision, flow.

* :mod:`repro.core.boundaries` -- plane-splitting decision functions
* :mod:`repro.core.zones` -- n-bit zone encoding and Gray adjacency
* :mod:`repro.core.signature` -- (zone, dwell) signatures (Eq. 1)
* :mod:`repro.core.capture` -- ideal + asynchronous (Fig. 5) capture
* :mod:`repro.core.ndf` -- the normalized discrepancy factor (Eq. 2)
* :mod:`repro.core.decision` -- acceptance bands and calibration
* :mod:`repro.core.testflow` -- end-to-end signature test bench
"""

from repro.core.boundaries import Boundary, CallableBoundary, LinearBoundary
from repro.core.zones import ZoneEncoder, hamming_distance
from repro.core.signature import Signature, SignatureEntry
from repro.core.signature_batch import SignatureBatch, fleet_ndf
from repro.core.multi_signature_batch import MultiSignatureBatch
from repro.core.capture import AsyncCapture, CaptureConfig, capture_signature
from repro.core.ndf import (
    hamming_chronogram,
    max_hamming_excursion,
    ndf,
    ndf_sampled,
)
from repro.core.decision import (
    DecisionBand,
    TestVerdict,
    ThresholdCalibration,
)
from repro.core.testflow import MeasurementResult, SignatureTester
from repro.core.hysteresis import HystereticEncoder
from repro.core.multichannel import (
    BiquadTwoTapCut,
    ChannelSpec,
    MultiChannelTester,
    MultiSignature,
)

__all__ = [
    "Boundary",
    "CallableBoundary",
    "LinearBoundary",
    "ZoneEncoder",
    "hamming_distance",
    "MultiSignatureBatch",
    "Signature",
    "SignatureBatch",
    "SignatureEntry",
    "fleet_ndf",
    "AsyncCapture",
    "CaptureConfig",
    "capture_signature",
    "ndf",
    "ndf_sampled",
    "hamming_chronogram",
    "max_hamming_excursion",
    "DecisionBand",
    "TestVerdict",
    "ThresholdCalibration",
    "MeasurementResult",
    "SignatureTester",
    "HystereticEncoder",
    "BiquadTwoTapCut",
    "ChannelSpec",
    "MultiChannelTester",
    "MultiSignature",
]
