"""The digital signature: a sequence of (zone code, dwell time) pairs.

Paper Eq. (1)::

    SIGNATURE = {(Z1, D1), (Z2, D2), ..., (Zk, Dk)}

where the Lissajous curve crosses zones Z1..Zk over one period and Di
is the time spent in zone Zi.  A :class:`Signature` stores exactly
that, normalized to start at t = 0, and offers the piecewise-constant
code function S(t) needed by the NDF integral of Eq. (2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

import numpy as np


def run_length_starts(codes: np.ndarray) -> np.ndarray:
    """Indices where a sampled code sequence starts a new run.

    The first sample always opens a run; a run boundary sits wherever
    the code differs from its predecessor.  This is the shared NumPy
    run-length kernel used by :meth:`Signature.from_samples` and by the
    batched campaign capture (:mod:`repro.campaign.batch`), replacing
    the per-sample Python merge loop.
    """
    codes = np.asarray(codes)
    if codes.ndim != 1 or codes.size == 0:
        raise ValueError("need a non-empty 1-D code sequence")
    return np.concatenate(
        [[0], np.flatnonzero(codes[1:] != codes[:-1]) + 1])


@dataclass(frozen=True)
class SignatureEntry:
    """One (zone code, dwell time) pair."""

    code: int
    duration: float

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError("dwell times must be positive")
        if self.code < 0:
            raise ValueError("zone codes are non-negative integers")


class Signature:
    """An ordered run of zone codes over one period.

    Consecutive entries always carry *different* codes (equal
    neighbours are merged at construction); the first and last entries
    may share a code -- the paper's signature starts at t = 0 regardless
    of where a zone began.
    """

    def __init__(self, entries: Sequence[SignatureEntry],
                 period: float = None) -> None:
        if not entries:
            raise ValueError("a signature needs at least one entry")
        merged: List[SignatureEntry] = []
        for entry in entries:
            if merged and merged[-1].code == entry.code:
                merged[-1] = SignatureEntry(
                    entry.code, merged[-1].duration + entry.duration)
            else:
                merged.append(SignatureEntry(entry.code, entry.duration))
        self.entries: Tuple[SignatureEntry, ...] = tuple(merged)
        total = sum(e.duration for e in self.entries)
        self.period = float(period) if period is not None else total
        if not np.isclose(total, self.period, rtol=1e-6, atol=1e-12):
            raise ValueError(
                f"entry durations sum to {total}, not the period "
                f"{self.period}")
        # The introspection arrays are all precomputed once here;
        # codes()/durations()/distinct_codes() and __hash__ serve from
        # them instead of re-walking the entry dataclasses per call.
        self._durations = np.asarray([e.duration for e in self.entries])
        starts = np.concatenate([[0.0], np.cumsum(self._durations)])
        self._starts = starts  # length k+1; last value == period
        self._codes = np.asarray([e.code for e in self.entries],
                                 dtype=np.int64)
        self._code_list: List[int] = self._codes.tolist()
        self._hash = hash((len(self.entries), tuple(self._code_list)))

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_pairs(cls, pairs: Iterable[Tuple[int, float]],
                   period: float = None) -> "Signature":
        """Build from (code, duration) tuples."""
        return cls([SignatureEntry(int(c), float(d)) for c, d in pairs],
                   period)

    @classmethod
    def from_samples(cls, times: np.ndarray, codes: np.ndarray,
                     period: float) -> "Signature":
        """Run-length encode uniformly/non-uniformly sampled codes.

        ``times[i]`` is the start of the interval carrying ``codes[i]``;
        the final interval extends to ``period``.
        """
        times = np.asarray(times, dtype=float)
        codes = np.asarray(codes)
        if times.ndim != 1 or times.shape != codes.shape:
            raise ValueError("times and codes must be 1-D and aligned")
        if times[0] != 0.0:
            raise ValueError("sampled signature must start at t = 0")
        if times[-1] >= period:
            raise ValueError("sample times must stay below the period")
        # Vectorized run-length encoding: only run heads become entries,
        # so the Python-level work is O(zone changes), not O(samples).
        starts = run_length_starts(codes)
        bounds = np.concatenate([times[starts], [period]])
        durations = np.diff(bounds)
        keep = durations > 0
        entries = [SignatureEntry(int(c), float(d))
                   for c, d in zip(codes[starts][keep], durations[keep])]
        return cls(entries, period)

    @classmethod
    def from_transitions(cls, initial_code: int,
                         transitions: Sequence[Tuple[float, int]],
                         period: float) -> "Signature":
        """Build from the code at t=0 plus (time, new code) transitions."""
        entries: List[SignatureEntry] = []
        prev_t, prev_c = 0.0, int(initial_code)
        for t, c in transitions:
            if t <= prev_t or t >= period:
                raise ValueError("transition times must be increasing "
                                 "inside (0, period)")
            entries.append(SignatureEntry(prev_c, t - prev_t))
            prev_t, prev_c = float(t), int(c)
        entries.append(SignatureEntry(prev_c, period - prev_t))
        return cls(entries, period)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    def __eq__(self, other) -> bool:
        if not isinstance(other, Signature):
            return NotImplemented
        return (np.isclose(self.period, other.period)
                and len(self) == len(other)
                and all(a.code == b.code
                        and np.isclose(a.duration, b.duration)
                        for a, b in zip(self.entries, other.entries)))

    def __hash__(self):
        return self._hash

    def codes(self) -> List[int]:
        """Zone codes in traversal order."""
        return list(self._code_list)

    def durations(self) -> np.ndarray:
        """Dwell times in traversal order."""
        return self._durations.copy()

    def distinct_codes(self) -> set:
        """Set of zones visited over the period."""
        return set(self._code_list)

    def start_times(self) -> np.ndarray:
        """Start time of each entry (first is 0)."""
        return self._starts[:-1].copy()

    def breakpoints(self) -> np.ndarray:
        """All zone-change instants inside (0, period)."""
        return self._starts[1:-1].copy()

    # ------------------------------------------------------------------
    # The piecewise-constant code function S(t)
    # ------------------------------------------------------------------
    def code_at(self, t) -> np.ndarray:
        """Zone code at time(s) t (wrapped into [0, period))."""
        t_arr = np.atleast_1d(np.asarray(t, dtype=float)) % self.period
        idx = np.searchsorted(self._starts, t_arr, side="right") - 1
        idx = np.clip(idx, 0, len(self.entries) - 1)
        codes = self._codes[idx]
        if np.ndim(t) == 0:
            return int(codes[0])
        return codes

    def chronogram(self, num_points: int = 2000) -> Tuple[np.ndarray, np.ndarray]:
        """(times, codes) staircase over one period, for Fig. 7 plots."""
        times = self.period * np.arange(num_points) / num_points
        return times, self.code_at(times)

    # ------------------------------------------------------------------
    def rotated(self, dt: float) -> "Signature":
        """Signature of the same curve observed with a start-time shift.

        Used by property tests: the NDF of a signature against itself
        rotated by 0 must be 0, and NDF is invariant when *both*
        signatures are rotated together.
        """
        dt = float(dt) % self.period
        if dt == 0.0:
            return Signature(self.entries, self.period)
        starts = np.concatenate([[0.0], self.breakpoints()])
        codes = np.asarray(self.codes())
        shifted = (starts - dt) % self.period
        # Guard the float-modulo corner: a tiny negative numerator can
        # round the result up to exactly `period`, which must wrap to 0.
        shifted[shifted >= self.period] = 0.0
        order = np.argsort(shifted, kind="stable")
        new_times = shifted[order]
        new_codes = codes[order]
        if new_times[0] > 0.0:
            # Insert the code active at the new t=0.
            new_times = np.concatenate([[0.0], new_times])
            new_codes = np.concatenate([[self.code_at(dt)], new_codes])
        # Collapse duplicate instants (the later code wins the instant).
        keep_t: List[float] = []
        keep_c: List[int] = []
        for t, c in zip(new_times, new_codes):
            if keep_t and t == keep_t[-1]:
                keep_c[-1] = int(c)
            else:
                keep_t.append(float(t))
                keep_c.append(int(c))
        return Signature.from_samples(np.asarray(keep_t),
                                      np.asarray(keep_c), self.period)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        head = ", ".join(f"({e.code}, {e.duration:.3g})"
                         for e in self.entries[:4])
        more = "..." if len(self.entries) > 4 else ""
        return f"<Signature T={self.period:.3g}s [{head}{more}]>"
