"""Multi-channel signatures: the multi-variable generalization.

The paper's related work ([14]) generalizes X-Y zoning to multiple
observed variables.  This module implements the natural extension of
the signature method to a CUT with several observable outputs: each
output forms its own Lissajous composition against the stimulus, is
encoded by its own (or a shared) monitor bank, and the per-channel NDFs
combine into one discrepancy figure.

Why it matters: a scalar NDF cannot tell *which* parameter drifted --
an f0 shift and a Q shift can produce the same discrepancy value.  With
two observed taps the pair (NDF_lp, NDF_bp) carries direction: for this
bench an f0 fault moves both channels almost equally while a Q fault
loads the low-pass channel roughly twice as hard as the band-pass one,
so the channel-NDF ratio separates the two fault classes (quantified in
the tests and the multi-parameter benchmark).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.core.capture import capture_signature
from repro.core.ndf import ndf
from repro.core.signature import Signature
from repro.core.zones import ZoneEncoder
from repro.signals.multitone import Multitone


@dataclass
class ChannelSpec:
    """One observed channel of a multi-output CUT.

    Attributes
    ----------
    name:
        Channel label used in reports (e.g. "lp", "bp").
    encoder:
        Zone encoder applied to this channel's (x, y) composition.
    weight:
        Relative weight of the channel in the combined NDF.
    """

    name: str
    encoder: ZoneEncoder
    weight: float = 1.0


@dataclass
class MultiSignature:
    """Per-channel signatures of one CUT measurement."""

    channels: Dict[str, Signature]

    def __getitem__(self, name: str) -> Signature:
        return self.channels[name]

    def total_entries(self) -> int:
        """Total (zone, dwell) pairs across channels."""
        return sum(len(s) for s in self.channels.values())


class MultiChannelTester:
    """Signature test bench over a multi-output CUT.

    The CUT protocol extends the single-channel one: the object must
    provide ``lissajous_of(channel_name, stimulus, samples_per_period)``
    returning the channel's composition.

    Parameters
    ----------
    channels:
        The observed channels (encoders and weights).
    stimulus:
        Shared multitone stimulus.
    golden_cut:
        Reference unit.
    """

    def __init__(self, channels: Sequence[ChannelSpec],
                 stimulus: Multitone, golden_cut,
                 samples_per_period: int = 4096,
                 refine: bool = True) -> None:
        if not channels:
            raise ValueError("need at least one channel")
        names = [c.name for c in channels]
        if len(set(names)) != len(names):
            raise ValueError("channel names must be unique")
        self.channels = list(channels)
        self.stimulus = stimulus
        self.golden_cut = golden_cut
        self.samples_per_period = int(samples_per_period)
        self.refine = bool(refine)
        self._golden: Optional[MultiSignature] = None

    # ------------------------------------------------------------------
    def signature_of(self, cut) -> MultiSignature:
        """Per-channel signatures of one CUT."""
        signatures = {}
        for channel in self.channels:
            trace = cut.lissajous_of(channel.name, self.stimulus,
                                     self.samples_per_period)
            signatures[channel.name] = capture_signature(
                channel.encoder, trace, refine=self.refine)
        return MultiSignature(signatures)

    def golden_signature(self) -> MultiSignature:
        """Cached golden multi-signature."""
        if self._golden is None:
            self._golden = self.signature_of(self.golden_cut)
        return self._golden

    # ------------------------------------------------------------------
    def channel_ndfs(self, cut) -> Dict[str, float]:
        """Per-channel NDF of a CUT against the golden."""
        golden = self.golden_signature()
        observed = self.signature_of(cut)
        return {c.name: ndf(observed[c.name], golden[c.name])
                for c in self.channels}

    def combined_ndf(self, cut) -> float:
        """Weighted mean of the channel NDFs."""
        values = self.channel_ndfs(cut)
        weights = np.asarray([c.weight for c in self.channels])
        ordered = np.asarray([values[c.name] for c in self.channels])
        return float(np.sum(weights * ordered) / np.sum(weights))


class BiquadTwoTapCut:
    """A Biquad observed at both the low-pass and band-pass taps.

    Wraps a :class:`repro.filters.biquad.BiquadSpec`; channel "lp" is
    the paper's observable, channel "bp" is the extra tap the
    Tow-Thomas realization exposes for free.
    """

    def __init__(self, spec) -> None:
        from repro.filters.biquad import BiquadFilter, BiquadKind
        from dataclasses import replace

        self.spec = spec
        self._lp = BiquadFilter(spec)
        self._bp = BiquadFilter(replace(spec, kind=BiquadKind.BANDPASS))

    def lissajous_of(self, channel: str, stimulus: Multitone,
                     samples_per_period: int):
        if channel == "lp":
            return self._lp.lissajous(stimulus, samples_per_period)
        if channel == "bp":
            # The BP tap swings around 0; rebias into the 0-1 V window
            # as the physical instrument would (AC coupling + mid rail).
            response = stimulus.through(self._bp.transfer).with_offset(0.5)
            from repro.signals.lissajous import LissajousTrace
            from repro.signals.waveform import Waveform
            period = stimulus.period()
            x = Waveform.from_function(stimulus, period,
                                       samples_per_period)
            y = Waveform.from_function(response, period,
                                       samples_per_period)
            return LissajousTrace(x, y, period)
        raise ValueError(f"unknown channel {channel!r}")
