"""PASS/FAIL decision on the NDF (paper Section IV-C and Fig. 8).

"The test decision is made by previously setting the desired level of
tolerance and checking whether the NDF lies in the acceptance or
rejection bands."

The decision itself is a single threshold on the NDF;
:class:`ThresholdCalibration` derives that threshold from a deviation
sweep (the Fig. 8 curve): given the acceptable parameter tolerance
(e.g. +-5 % on f0), the NDF threshold is the smallest sweep NDF on the
tolerance edge, and the acceptance band is [0, threshold].
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np


@dataclass(frozen=True)
class TestVerdict:
    """Outcome of one signature test."""

    ndf: float
    threshold: float

    @property
    def passed(self) -> bool:
        """True when the NDF lies in the acceptance band."""
        return self.ndf <= self.threshold

    @property
    def margin(self) -> float:
        """Distance to the threshold (positive = inside the band)."""
        return self.threshold - self.ndf

    def __str__(self) -> str:
        word = "PASS" if self.passed else "FAIL"
        return f"{word} (NDF={self.ndf:.4f}, threshold={self.threshold:.4f})"


class DecisionBand:
    """Acceptance band [0, threshold] on the NDF."""

    def __init__(self, threshold: float) -> None:
        if threshold < 0:
            raise ValueError("threshold must be non-negative")
        self.threshold = float(threshold)

    def decide(self, ndf_value: float) -> TestVerdict:
        """Classify one measured NDF."""
        return TestVerdict(float(ndf_value), self.threshold)


@dataclass
class ThresholdCalibration:
    """NDF threshold derived from a deviation sweep (Fig. 8 procedure).

    Attributes
    ----------
    deviations:
        Relative parameter deviations of the sweep (sorted, spanning
        negative and positive values; 0 included).
    ndfs:
        Matching NDF values.
    """

    deviations: np.ndarray
    ndfs: np.ndarray

    def __post_init__(self) -> None:
        self.deviations = np.asarray(self.deviations, dtype=float)
        self.ndfs = np.asarray(self.ndfs, dtype=float)
        if self.deviations.shape != self.ndfs.shape:
            raise ValueError("deviations and ndfs must align")
        if np.any(np.diff(self.deviations) <= 0):
            raise ValueError("deviations must be strictly increasing")

    def ndf_at(self, deviation: float) -> float:
        """Interpolated NDF at a deviation."""
        return float(np.interp(deviation, self.deviations, self.ndfs))

    def threshold_for_tolerance(self, tolerance: float) -> float:
        """NDF value marking the edge of the +-tolerance band.

        The threshold is the *smaller* of the NDF values at the two
        tolerance edges, so every deviation outside the band maps to an
        NDF at or above the threshold under a monotone sweep.
        """
        if tolerance <= 0:
            raise ValueError("tolerance must be positive")
        return min(self.ndf_at(-tolerance), self.ndf_at(+tolerance))

    def band_for_tolerance(self, tolerance: float) -> DecisionBand:
        """Decision band accepting deviations within +-tolerance."""
        return DecisionBand(self.threshold_for_tolerance(tolerance))

    def detectable_deviation(self, noise_floor_ndf: float) -> Tuple[float, float]:
        """Smallest +-deviations whose NDF exceeds a noise floor.

        Mirrors the paper's noise study conclusion ("deviations as low
        as 1 % in the natural frequency of the filter are detected"):
        with measurement noise, the golden NDF is not exactly zero, so
        detectability starts where the sweep crosses the noise floor.
        Returns (negative edge, positive edge); an edge is NaN when the
        sweep never crosses the floor on that side.
        """
        neg = _first_crossing(self.deviations[::-1] * -1.0,
                              self.ndfs[::-1], noise_floor_ndf)
        pos = _first_crossing(self.deviations, self.ndfs, noise_floor_ndf)
        return (-neg if neg == neg else float("nan"), pos)

    # ------------------------------------------------------------------
    # Shape diagnostics used by the Fig. 8 benchmark
    # ------------------------------------------------------------------
    def linearity_r2(self) -> Tuple[float, float]:
        """R^2 of |NDF| vs |deviation| on each side (paper: near-linear)."""
        return (_r_squared(-self.deviations[self.deviations <= 0],
                           self.ndfs[self.deviations <= 0]),
                _r_squared(self.deviations[self.deviations >= 0],
                           self.ndfs[self.deviations >= 0]))

    def symmetry_error(self) -> float:
        """Mean |NDF(+d) - NDF(-d)| over the sweep (paper: small)."""
        pos = self.deviations[self.deviations > 0]
        if pos.size == 0:
            return 0.0
        diffs = [abs(self.ndf_at(d) - self.ndf_at(-d)) for d in pos]
        return float(np.mean(diffs))


def _first_crossing(devs: np.ndarray, ndfs: np.ndarray,
                    floor: float) -> float:
    """Smallest positive deviation where the NDF reaches ``floor``."""
    mask = devs >= 0
    devs = devs[mask]
    ndfs = ndfs[mask]
    order = np.argsort(devs)
    devs, ndfs = devs[order], ndfs[order]
    above = np.nonzero(ndfs >= floor)[0]
    if above.size == 0:
        return float("nan")
    i = above[0]
    if i == 0:
        return float(devs[0])
    # Linear interpolation between the bracketing sweep points.
    d0, d1 = devs[i - 1], devs[i]
    n0, n1 = ndfs[i - 1], ndfs[i]
    if n1 == n0:
        return float(d1)
    return float(d0 + (floor - n0) * (d1 - d0) / (n1 - n0))


def _r_squared(x: np.ndarray, y: np.ndarray) -> float:
    """Coefficient of determination of a least-squares line fit."""
    if x.size < 3:
        return float("nan")
    coeffs = np.polyfit(x, y, 1)
    fit = np.polyval(coeffs, x)
    ss_res = float(np.sum((y - fit) ** 2))
    ss_tot = float(np.sum((y - np.mean(y)) ** 2))
    if ss_tot == 0.0:
        return 1.0
    return 1.0 - ss_res / ss_tot
