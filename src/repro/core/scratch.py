"""Reusable array scratch for the batched hot paths.

The campaign front half stages every chunk through a handful of
``(N, samples)`` work arrays (tone-accumulation buffers, shared EKV
tables, branch-balance planes).  Allocating them fresh per chunk makes
the kernels pay kernel page-zeroing on every pass over a fleet --
measurable against hot loops that otherwise touch each element only a
few times.  :class:`ScratchPool` recycles exact ``(shape, dtype)``
matches instead.

Arrays come back **uninitialized** (contents are whatever the previous
user left); every consumer overwrites before reading, exactly like
``np.empty``.  Pool state is per process -- executor pool workers each
own one -- and guarded by a lock so opportunistic multi-threaded
callers stay safe.  ``give`` silently drops views, non-contiguous
arrays and anything that would push the pool over its byte budget, so
holding the global pool never pins more than ~a quarter gigabyte;
every dtype is poolable (float work buffers and bool bit planes alike)
under its own ``(shape, dtype)`` key.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Tuple

import numpy as np

#: Upper bound on bytes parked in the process-wide pool.
DEFAULT_MAX_BYTES = 256 * 1024 * 1024


class ScratchPool:
    """Free-list of work arrays keyed by exact shape and dtype."""

    def __init__(self, max_bytes: int = DEFAULT_MAX_BYTES) -> None:
        self.max_bytes = int(max_bytes)
        self._free: Dict[Tuple, List[np.ndarray]] = {}
        self._pooled_ids: set = set()
        self._held_bytes = 0
        self._lock = threading.Lock()

    def take(self, shape, dtype=np.float64) -> np.ndarray:
        """An uninitialized array of the exact shape/dtype requested."""
        if isinstance(shape, (int, np.integer)):
            shape = (int(shape),)
        else:
            shape = tuple(int(s) for s in shape)
        key = (shape, np.dtype(dtype))
        with self._lock:
            stack = self._free.get(key)
            if stack:
                array = stack.pop()
                self._pooled_ids.discard(id(array))
                self._held_bytes -= array.nbytes
                return array
        return np.empty(key[0], dtype=key[1])

    def give(self, *arrays: np.ndarray) -> None:
        """Return arrays to the pool.

        Views, non-contiguous arrays, overflow past the byte budget
        and arrays already parked in the pool are silently dropped --
        the double-give guard keeps one mistaken call site from
        aliasing two supposedly exclusive buffers.
        """
        with self._lock:
            for array in arrays:
                if not isinstance(array, np.ndarray):
                    continue
                if array.base is not None or not array.flags.owndata \
                        or not array.flags.c_contiguous:
                    continue
                if id(array) in self._pooled_ids:
                    continue
                if self._held_bytes + array.nbytes > self.max_bytes:
                    continue
                key = (array.shape, array.dtype)
                self._free.setdefault(key, []).append(array)
                self._pooled_ids.add(id(array))
                self._held_bytes += array.nbytes

    def clear(self) -> None:
        """Drop every pooled array."""
        with self._lock:
            self._free.clear()
            self._pooled_ids.clear()
            self._held_bytes = 0

    @property
    def held_bytes(self) -> int:
        """Bytes currently parked in the pool."""
        return self._held_bytes


#: Process-wide pool shared by the campaign and encode kernels.
SCRATCH = ScratchPool()
