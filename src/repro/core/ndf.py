"""The Normalized Discrepancy Factor (paper Eq. 2).

::

    NDF = (1/T) * integral_0^T dH(SO(t), SG(t)) dt

where SO and SG are the observed and golden signatures seen as
piecewise-constant code functions over the common period T, and dH is
the Hamming distance between the instantaneous zone codes.

Both signatures are exact step functions, so the integral is computed
*exactly* by merging the two breakpoint sets -- no sampling error.  A
sampled variant is provided for comparison and for noisy traces.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.core.signature import Signature
from repro.core.zones import hamming_distances


def _check_periods(observed: Signature, golden: Signature,
                   rtol: float = 1e-6) -> float:
    period = golden.period
    if not np.isclose(observed.period, period, rtol=rtol):
        raise ValueError(
            f"signatures have different periods: {observed.period} vs "
            f"{period}; resample to a common period first")
    return period


def ndf(observed: Signature, golden: Signature) -> float:
    """Exact NDF between two signatures over their common period.

    Properties (enforced by the property-test suite):

    * symmetric in its arguments;
    * 0 if and only if the two code functions agree almost everywhere;
    * bounded by the code width (max Hamming distance);
    * invariant when both signatures are rotated by the same offset.
    """
    period = _check_periods(observed, golden)
    # Merged breakpoint sweep, fully vectorized: on every interval of
    # the merged partition both code functions are constant, so the
    # Hamming distance at the midpoint weighs the whole interval.
    cuts = np.unique(np.concatenate(
        [[0.0], observed.breakpoints(), golden.breakpoints(), [period]]))
    widths = np.diff(cuts)
    mids = cuts[:-1] + 0.5 * widths
    d = hamming_distances(observed.code_at(mids), golden.code_at(mids))
    return float(np.sum(d * widths) / period)


def ndf_sampled(observed: Signature, golden: Signature,
                num_samples: int = 10000) -> float:
    """Riemann-sum estimate of the NDF (reference implementation).

    Used in tests to validate the exact merge algorithm and in noise
    studies where sub-sample structure is not meaningful.
    """
    period = _check_periods(observed, golden)
    times = period * (np.arange(num_samples) + 0.5) / num_samples
    dh = hamming_distances(observed.code_at(times), golden.code_at(times))
    return float(np.mean(dh))


def hamming_chronogram(observed: Signature, golden: Signature,
                       num_points: int = 4000) -> Tuple[np.ndarray, np.ndarray]:
    """dH(SO(t), SG(t)) sampled over one period (the Fig. 7 lower plot)."""
    period = _check_periods(observed, golden)
    times = period * np.arange(num_points) / num_points
    dh = hamming_distances(observed.code_at(times),
                           golden.code_at(times)).astype(float)
    return times, dh


def max_hamming_excursion(observed: Signature,
                          golden: Signature) -> Tuple[float, int]:
    """(time, distance) of the largest instantaneous Hamming distance.

    Fig. 7 highlights a distance-2 excursion near 48-50 us where the
    faulty trace skips a zone sequence; this helper locates the
    equivalent event in reproduced signatures.
    """
    period = _check_periods(observed, golden)
    cuts = np.unique(np.concatenate(
        [[0.0], observed.breakpoints(), golden.breakpoints(), [period]]))
    mids = 0.5 * (cuts[:-1] + cuts[1:])
    d = hamming_distances(observed.code_at(mids), golden.code_at(mids))
    best = int(np.argmax(d))
    if d[best] == 0:
        return 0.0, 0
    return float(mids[best]), int(d[best])
