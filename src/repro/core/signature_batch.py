"""Packed, array-resident signatures for whole populations.

A fleet campaign produces one signature *per die*; materializing each as
a :class:`repro.core.signature.Signature` (a Python list of
:class:`SignatureEntry` dataclasses) costs hundreds of object
constructions per die and dominates the back half of the screening
pipeline.  A :class:`SignatureBatch` stores the same information for all
N dies at once in CSR (compressed sparse row) layout:

* ``codes``        -- flat ``int64`` zone codes of every run, all rows
  concatenated in die order;
* ``durations``    -- flat ``float64`` dwell times aligned with
  ``codes``;
* ``row_offsets``  -- ``(N + 1,)`` offsets: die ``i`` owns the slice
  ``[row_offsets[i], row_offsets[i + 1])``;
* ``periods``      -- ``(N,)`` per-die signature periods (a shared
  scalar for grid captures; per-row after counter saturation in the
  asynchronous capture model).

Construction from a stacked ``(N, samples)`` zone-code array is a
single vectorized run-length pass (:meth:`from_code_stack`), and
:meth:`ndf_to` scores every row against a shared golden signature in
one flat kernel -- no per-die ``np.unique`` breakpoint merges.
Conversion to per-die :class:`Signature` objects happens only at the
diagnosis edges (:meth:`to_signatures`, :meth:`row`).

The batch is also the transport format of the fault-diagnosis
subsystem (:mod:`repro.diagnosis`): a campaign run with
``keep_signatures=True`` retains its packed batch, the failing rows
are carved out with :meth:`select`, and the dictionary matcher scores
them fault by fault through :meth:`ndf_to` -- the whole diagnosis loop
stays array-resident until the per-die report edge.

Bit-compatibility
-----------------
The batch replicates the scalar path's floating-point expression order
everywhere it matters, so for the same code stack:

* row durations equal ``Signature.from_samples``' entry durations bit
  for bit (same ``next-head-time - head-time`` subtractions);
* row start times equal ``Signature._starts`` bit for bit (sequential
  ``np.cumsum`` over each row's durations);
* :meth:`ndf_to` equals :func:`repro.core.ndf.ndf` against the same
  golden **bit for bit**: the merged partition, interval widths,
  Hamming terms and even the final per-row summation (``np.sum`` over a
  contiguous slice of the same length) reproduce the scalar metric's
  exact operations.

The campaign equivalence tests assert all three; the full contract is
written out in ``docs/paper_map.md``.  K-channel stacks of this batch
live in :mod:`repro.core.multi_signature_batch`.
"""

from __future__ import annotations

from typing import List, Sequence, Union

import numpy as np

from repro.core.signature import Signature, SignatureEntry


class SignatureBatch:
    """N run-length signatures packed into flat CSR arrays.

    Parameters
    ----------
    codes:
        Flat zone codes of all runs, row-concatenated.
    durations:
        Flat dwell times aligned with ``codes`` (all positive).
    row_offsets:
        ``(N + 1,)`` monotone offsets into the flat arrays.
    periods:
        Scalar period shared by every row, or an ``(N,)`` array of
        per-row periods.
    """

    def __init__(self, codes: np.ndarray, durations: np.ndarray,
                 row_offsets: np.ndarray,
                 periods: Union[float, np.ndarray]) -> None:
        self.codes = np.asarray(codes, dtype=np.int64)
        self.durations = np.asarray(durations, dtype=float)
        self.row_offsets = np.asarray(row_offsets, dtype=np.int64)
        n = self.row_offsets.size - 1
        if n < 0:
            raise ValueError("row_offsets needs at least one element")
        if np.ndim(periods) == 0:
            self.periods = np.full(n, float(periods))
        else:
            self.periods = np.asarray(periods, dtype=float)
        if self.periods.shape != (n,):
            raise ValueError("periods must align with the row count")
        if self.codes.shape != self.durations.shape:
            raise ValueError("codes and durations must align")
        if (self.row_offsets[0] != 0
                or self.row_offsets[-1] != self.codes.size
                or np.any(np.diff(self.row_offsets) < 1)):
            raise ValueError("row_offsets must be monotone, start at 0, "
                             "end at the run count, and give every row "
                             "at least one run")
        self._starts: np.ndarray = None  # lazy; see start_times()

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_code_stack(cls, times: np.ndarray, codes: np.ndarray,
                        period: float) -> "SignatureBatch":
        """One-pass run-length extraction of a whole ``(N, T)`` stack.

        ``times[j]`` is the start of the sampling interval carrying
        ``codes[i, j]``; the final interval of every row extends to
        ``period``.  Row ``i`` of the result equals
        ``Signature.from_samples(times, codes[i], period)`` entry for
        entry (codes and durations bit-identical), but the extraction
        runs as one boolean run-head pass over the full stack instead
        of N Python loops building ``SignatureEntry`` objects.
        """
        times = np.asarray(times, dtype=float)
        stack = np.atleast_2d(np.asarray(codes))
        n, t = stack.shape
        if times.ndim != 1 or times.size != t or t == 0:
            raise ValueError("times must be 1-D and aligned with the "
                             "code stack's sample axis")
        if times[0] != 0.0:
            raise ValueError("sampled signatures must start at t = 0")
        if times[-1] >= period:
            raise ValueError("sample times must stay below the period")
        if t > 1 and np.any(np.diff(times) <= 0):
            raise ValueError("sample times must be strictly increasing")
        # Run heads: the first sample of every row plus every sample
        # whose code differs from its predecessor.  np.nonzero on the
        # (N, T) mask is row-major, so the flat outputs are already in
        # CSR order.
        heads = np.ones(stack.shape, dtype=bool)
        if t > 1:
            heads[:, 1:] = stack[:, 1:] != stack[:, :-1]
        rows, cols = np.nonzero(heads)
        counts = np.count_nonzero(heads, axis=1)
        row_offsets = np.concatenate([[0], np.cumsum(counts)])
        run_codes = stack[rows, cols].astype(np.int64)
        head_times = times[cols]
        # Each run lasts until the next head in its row; the last run of
        # a row until the period.  Same subtractions as the scalar
        # ``np.diff([head times, period])``.
        bounds_next = np.empty(head_times.size)
        if head_times.size > 1:
            bounds_next[:-1] = head_times[1:]
        bounds_next[row_offsets[1:] - 1] = period
        durations = bounds_next - head_times
        return cls(run_codes, durations, row_offsets, float(period))

    @classmethod
    def from_signatures(cls, signatures: Sequence[Signature]
                        ) -> "SignatureBatch":
        """Pack per-die :class:`Signature` objects (diagnosis edge)."""
        if not signatures:
            return cls(np.empty(0, np.int64), np.empty(0), np.zeros(1),
                       np.empty(0))
        codes = np.concatenate([s._codes for s in signatures])
        durations = np.concatenate([s.durations() for s in signatures])
        counts = [len(s) for s in signatures]
        row_offsets = np.concatenate([[0], np.cumsum(counts)])
        periods = np.asarray([s.period for s in signatures])
        return cls(codes, durations, row_offsets, periods)

    @classmethod
    def empty(cls) -> "SignatureBatch":
        """A batch with zero rows (the empty-population edge case)."""
        return cls(np.empty(0, np.int64), np.empty(0),
                   np.zeros(1, np.int64), np.empty(0))

    @classmethod
    def concatenate(cls, batches: Sequence["SignatureBatch"]
                    ) -> "SignatureBatch":
        """Stack batches row-wise (streamed/chunked campaign merge).

        Row ``i`` of the result is bit-identical to the corresponding
        row of its source batch -- only the CSR offsets shift.
        """
        batches = [b for b in batches if len(b)]
        if not batches:
            return cls.empty()
        codes = np.concatenate([b.codes for b in batches])
        durations = np.concatenate([b.durations for b in batches])
        periods = np.concatenate([b.periods for b in batches])
        offsets = [np.zeros(1, np.int64)]
        shift = 0
        for b in batches:
            offsets.append(b.row_offsets[1:] + shift)
            shift += b.codes.size
        return cls(codes, durations, np.concatenate(offsets), periods)

    def select(self, indices) -> "SignatureBatch":
        """New batch holding the given rows, in the given order.

        This is the diagnosis carve-out: a campaign keeps one packed
        batch for the whole fleet, and only the failing rows travel on
        to the dictionary matcher.  Rows are gathered as flat slices,
        so the selected rows stay bit-identical to their sources.
        """
        indices = np.asarray(indices, dtype=np.int64)
        if indices.ndim != 1:
            raise ValueError("need a 1-D row index array")
        if indices.size == 0:
            return SignatureBatch.empty()
        counts = self.runs_per_row[indices]
        new_offsets = np.concatenate([[0], np.cumsum(counts)])
        starts = self.row_offsets[indices]
        local = (np.arange(new_offsets[-1])
                 - np.repeat(new_offsets[:-1], counts))
        take = np.repeat(starts, counts) + local
        return SignatureBatch(self.codes[take], self.durations[take],
                              new_offsets, self.periods[indices])

    # ------------------------------------------------------------------
    # Introspection / conversion
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.row_offsets.size - 1

    @property
    def runs_per_row(self) -> np.ndarray:
        """Number of (code, dwell) runs in each row."""
        return np.diff(self.row_offsets)

    def row(self, i: int) -> Signature:
        """Unpack one row into a per-die :class:`Signature`."""
        lo, hi = self.row_offsets[i], self.row_offsets[i + 1]
        entries = [SignatureEntry(int(c), float(d))
                   for c, d in zip(self.codes[lo:hi],
                                   self.durations[lo:hi])]
        return Signature(entries, float(self.periods[i]))

    def to_signatures(self) -> List[Signature]:
        """Unpack every row (diagnosis edge; O(total runs) objects)."""
        return [self.row(i) for i in range(len(self))]

    def start_times(self) -> np.ndarray:
        """Flat per-run start times, bit-compatible with ``Signature``.

        Row ``i``'s slice equals ``Signature._starts[:-1]`` of the
        unpacked row: a 0 head followed by the sequential ``np.cumsum``
        of the row's durations.  Computed once over a zero-padded
        ``(N, max_runs)`` stack -- trailing zeros never perturb the
        prefix sums, so each row's cumsum is bit-identical to the
        scalar one -- then gathered back to CSR.
        """
        if self._starts is None:
            counts = self.runs_per_row
            n = len(self)
            if n == 0 or self.codes.size == 0:
                self._starts = np.zeros(self.codes.size)
                return self._starts
            local = (np.arange(self.codes.size)
                     - np.repeat(self.row_offsets[:-1], counts))
            rows = np.repeat(np.arange(n), counts)
            padded = np.zeros((n, int(counts.max())))
            padded[rows, local] = self.durations
            csums = np.cumsum(padded, axis=1)
            starts = np.empty(self.codes.size)
            starts[self.row_offsets[:-1]] = 0.0
            inner = local > 0
            starts[inner] = csums[rows[inner], local[inner] - 1]
            self._starts = starts
        return self._starts

    # ------------------------------------------------------------------
    # The fleet-NDF kernel
    # ------------------------------------------------------------------
    def ndf_to(self, golden: Signature) -> np.ndarray:
        """Exact NDF of every row against a shared golden signature.

        One flat pass over all rows, replacing N ``np.unique``
        breakpoint merges with one flat ``np.searchsorted`` plus
        integer rank bookkeeping:

        1. one ``searchsorted`` of the concatenated observed start
           array onto the golden's starts yields, per observed event,
           the golden code in force and the event's rank among the
           golden breakpoints; the dual ranks -- how many observed
           starts precede each golden breakpoint in each row -- follow
           from a per-row histogram of those ranks (pure integer math,
           so the merge order is exact even for breakpoints one ulp
           apart);
        2. the ranks give each event's position in its row's merged
           partition directly, so the merge is a scatter -- no sort;
        3. duplicate instants collapse (keeping the event that already
           carries both post-change codes), widths close each row at
           the period, and the Hamming-weighted widths segment-reduce
           by row.

        Every interval width, Hamming term and per-row summation
        reproduces :func:`repro.core.ndf.ndf`'s floating-point
        operations exactly -- including the scalar metric's midpoint
        evaluation, whose rounded midpoint can land on an interval's
        *right* endpoint when the interval is one ulp wide -- so the
        returned vector is bit-identical to calling
        ``ndf(row, golden)`` die by die (asserted by the equivalence
        and property tests).
        """
        n = len(self)
        if n == 0:
            return np.empty(0)
        period = golden.period
        if not np.allclose(self.periods, period, rtol=1e-6):
            raise ValueError(
                "signatures have different periods; resample to a "
                "common period first")
        s = self.start_times()                    # flat observed starts
        c = self.codes
        off = self.row_offsets
        counts = self.runs_per_row
        rowidx = np.repeat(np.arange(n), counts)
        g = golden._starts[:-1]                   # golden starts (k,)
        gc = golden._codes
        k = g.size

        # Golden code in force at each observed event (changes landing
        # exactly on the event instant included), and the event's rank
        # among the golden starts (strictly-earlier golden events).
        g_at_obs = gc[np.searchsorted(g, s, side="right") - 1]
        obs_rank = np.searchsorted(g, s, side="left")

        # Dual ranks without a second float comparison: within a row,
        # ``s_i <= g_j``  iff  ``obs_rank_i <= j`` (g is sorted), so
        # the number of observed events at or before each golden
        # breakpoint is the running histogram of obs_rank -- exact
        # integer arithmetic, immune to ulp-level float coincidences.
        hist = np.bincount(rowidx * (k + 1) + obs_rank,
                           minlength=n * (k + 1)).reshape(n, k + 1)
        gold_rank = np.cumsum(hist, axis=1)[:, :k].ravel()
        growidx = np.repeat(np.arange(n), k)
        obs_at_gold = c[off[growidx] + gold_rank - 1]
        g_tiled = np.tile(g, n)
        gc_tiled = np.tile(gc, n)

        # Scatter both event families into the merged partition.  An
        # event's merged position is its own index plus the other
        # family's rank; the strict/inclusive rank pair breaks
        # start-time ties consistently (observed first), so positions
        # never collide.
        merged_off = off + np.arange(n + 1) * k
        pos_obs = np.arange(s.size) + rowidx * k + obs_rank
        pos_gold = (off[growidx] + growidx * k
                    + np.tile(np.arange(k), n) + gold_rank)
        total = s.size + n * k
        times_m = np.empty(total)
        obs_m = np.empty(total, dtype=np.int64)
        gold_m = np.empty(total, dtype=np.int64)
        times_m[pos_obs] = s
        times_m[pos_gold] = g_tiled
        obs_m[pos_obs] = c
        obs_m[pos_gold] = obs_at_gold
        gold_m[pos_obs] = g_at_obs
        gold_m[pos_gold] = gc_tiled

        # Collapse duplicate instants exactly like the scalar metric's
        # np.unique: drop the earlier event of a tie (the later one
        # already carries both post-change codes).  Rows never bleed
        # into each other -- each row's last event is always kept.
        keep = np.ones(total, dtype=bool)
        if total > 1:
            keep[:-1] = times_m[1:] != times_m[:-1]
        keep[merged_off[1:] - 1] = True
        kept = np.flatnonzero(keep)
        t_k = times_m[kept]
        obs_k = obs_m[kept]
        gold_k = gold_m[kept]
        cum_keep = np.concatenate([[0], np.cumsum(keep)])
        off_k = cum_keep[merged_off]
        row_last = off_k[1:] - 1
        row_first = off_k[:-1]

        # Interval widths: to the next merged instant, the last one to
        # the period -- the same subtractions as np.diff over the
        # scalar path's [cuts..., period].
        nxt = np.empty(t_k.size)
        if t_k.size > 1:
            nxt[:-1] = t_k[1:]
        nxt[row_last] = period
        widths = nxt - t_k

        # The scalar metric evaluates both code functions at the
        # interval *midpoints*.  For any interval wider than one ulp
        # the midpoint lies strictly inside and sees this interval's
        # codes; but when two breakpoints sit one ulp apart the
        # rounded midpoint can land exactly on the right endpoint, and
        # ``code_at``'s right-sided search then reads the *next*
        # interval's state (wrapping to the row's first state past the
        # period).  Emulate that rounding exactly.
        mids = t_k + 0.5 * widths
        source = np.arange(t_k.size)
        bump = mids == nxt
        source[bump] = source[bump] + 1
        last_bumped = row_last[bump[row_last]]
        source[last_bumped] = row_first[bump[row_last]]
        distances = np.bitwise_count(
            np.bitwise_xor(obs_k[source],
                           gold_k[source])).astype(np.int64)
        contributions = distances * widths

        # Per-row reduction.  np.sum over a contiguous slice of the
        # same length reproduces the scalar metric's pairwise-summation
        # tree exactly; a reduceat here would be sequential and could
        # drift by an ulp.
        values = np.empty(n)
        for i in range(n):
            values[i] = contributions[off_k[i]:off_k[i + 1]].sum()
        return values / period


def fleet_ndf(batch: SignatureBatch, golden: Signature) -> np.ndarray:
    """Functional alias for :meth:`SignatureBatch.ndf_to`."""
    return batch.ndf_to(golden)
