"""Signature capture: ideal (software) and asynchronous (Fig. 5 hardware).

Two capture models produce :class:`repro.core.signature.Signature`
objects from a Lissajous trace:

* :func:`capture_signature` -- the *ideal* capture used to define
  golden signatures: dense sampling of the zone code along the curve,
  optionally refined by adaptive bisection so zone-crossing instants
  are exact to a configurable tolerance rather than quantized to the
  sampling grid.
* :class:`AsyncCapture` -- a behavioural model of the paper's capture
  circuit (Fig. 5): monitors drive a transition detector; an m-bit
  counter running on the master clock measures the dwell time between
  transitions; codes are latched asynchronously.  This model quantizes
  dwell times to clock ticks, merges transitions shorter than one tick,
  and can saturate the counter -- the effects studied in the capture
  ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Tuple

import numpy as np

from repro.core.signature import Signature
from repro.core.signature_batch import SignatureBatch
from repro.core.zones import ZoneEncoder
from repro.signals.lissajous import LissajousTrace


def _refine_transitions(code_of_time: Callable[[float], int],
                        t0: float, t1: float, c0: int, c1: int,
                        tol: float) -> List[Tuple[float, int]]:
    """Locate code changes inside (t0, t1] by recursive bisection.

    Handles multiple boundary crossings inside the bracket by
    subdividing until each sub-bracket is shorter than ``tol``; the
    returned list contains (transition time, new code) pairs in order.
    """
    if c0 == c1:
        return []
    if t1 - t0 <= tol:
        return [(t1, c1)]
    tm = 0.5 * (t0 + t1)
    cm = code_of_time(tm)
    return (_refine_transitions(code_of_time, t0, tm, c0, cm, tol)
            + _refine_transitions(code_of_time, tm, t1, cm, c1, tol))


def capture_signature(encoder: ZoneEncoder, trace: LissajousTrace,
                      refine: bool = True,
                      tol_fraction: float = 1e-7) -> Signature:
    """Ideal signature of a Lissajous trace.

    Parameters
    ----------
    encoder:
        The zone encoder (bank of monitors).
    trace:
        One period of the composed signals.
    refine:
        When True, zone-crossing times are bisected on the interpolated
        trace down to ``tol_fraction * period``, decoupling signature
        accuracy from the sampling grid.  Disable for noisy traces,
        where sub-sample interpolation has no physical meaning.
    """
    xs, ys = trace.points()
    times = trace.times - trace.times[0]
    codes = encoder.code(xs, ys)
    period = trace.period

    if not refine:
        return Signature.from_samples(times, codes, period)

    def code_of_time(t: float) -> int:
        x, y = trace.point_at(trace.times[0] + t)
        return int(encoder.code(x, y))

    transitions: List[Tuple[float, int]] = []
    tol = tol_fraction * period
    for i in range(len(times) - 1):
        if codes[i + 1] != codes[i]:
            transitions.extend(
                _refine_transitions(code_of_time, float(times[i]),
                                    float(times[i + 1]), int(codes[i]),
                                    int(codes[i + 1]), tol))
    # Wrap interval: between the last sample and t = period the code
    # returns to codes[0] (periodicity); refine that edge too.
    if codes[-1] != codes[0]:
        transitions.extend(
            _refine_transitions(
                code_of_time, float(times[-1]), period,
                int(codes[-1]), int(codes[0]), tol))
    # Clamp any transition refined exactly onto the period boundary.
    transitions = [(t, c) for t, c in transitions if t < period]
    if not transitions:
        return Signature.from_pairs([(int(codes[0]), period)], period)
    return Signature.from_transitions(int(codes[0]), transitions, period)


@dataclass(frozen=True)
class CaptureConfig:
    """Hardware parameters of the Fig. 5 asynchronous capture circuit.

    Attributes
    ----------
    clock_hz:
        Master clock frequency feeding the m-bit counter.
    counter_bits:
        Width m of the interval counter; dwell counts saturate at
        ``2^m - 1`` ticks (the paper leaves overflow behaviour open; a
        saturating time register is the conservative choice and is the
        default here -- `wrap=True` models a free-running counter
        instead).
    wrap:
        When True the counter wraps modulo 2^m instead of saturating.
    """

    clock_hz: float = 10e6
    counter_bits: int = 16
    wrap: bool = False

    def __post_init__(self) -> None:
        if self.clock_hz <= 0:
            raise ValueError("clock must be positive")
        if self.counter_bits < 1:
            raise ValueError("counter needs at least one bit")

    @property
    def tick(self) -> float:
        """Counter resolution in seconds."""
        return 1.0 / self.clock_hz

    @property
    def max_count(self) -> int:
        """Largest representable dwell count."""
        return (1 << self.counter_bits) - 1


class AsyncCapture:
    """Behavioural model of the asynchronous signature capture circuit.

    The continuous (ideal) signature is first computed, then distorted
    exactly as the hardware would:

    1. transition instants are observed on the next master-clock edge;
    2. transitions landing on the same edge collapse (the transition
       detector emits a single capture: short glitch zones vanish);
    3. dwell counts longer than the counter range saturate (or wrap).

    The result is again a :class:`Signature` whose durations are whole
    clock ticks, so it can be fed to the same NDF metric -- this is the
    quantization ablation of the benchmarks.
    """

    def __init__(self, encoder: ZoneEncoder,
                 config: CaptureConfig = CaptureConfig()) -> None:
        self.encoder = encoder
        self.config = config

    def capture(self, trace: LissajousTrace,
                refine: bool = True) -> Signature:
        """Capture a quantized signature from one Lissajous period."""
        ideal = capture_signature(self.encoder, trace, refine=refine)
        return self.quantize(ideal)

    def quantize(self, ideal: Signature) -> Signature:
        """Apply clock/counter quantization to an ideal signature."""
        cfg = self.config
        period_ticks = int(round(ideal.period / cfg.tick))
        if period_ticks < 1:
            raise ValueError("period shorter than one clock tick")
        # Transition times -> next clock edge (ceil).
        edges = [0]
        codes = [ideal.entries[0].code]
        for t, code in zip(ideal.breakpoints(),
                           [e.code for e in ideal.entries[1:]]):
            tick = int(np.ceil(t / cfg.tick - 1e-12))
            tick = min(tick, period_ticks)  # clamp into the period
            if tick <= edges[-1]:
                # Collapsed with the previous capture: the detector sees
                # only the final code of the burst.
                codes[-1] = code
                continue
            if tick >= period_ticks:
                break
            edges.append(tick)
            codes.append(code)
        durations_ticks = np.diff(edges + [period_ticks])
        if not cfg.wrap:
            durations_ticks = np.minimum(durations_ticks, cfg.max_count)
        else:
            durations_ticks = np.mod(durations_ticks - 1, 1 << cfg.counter_bits) + 1
        pairs = [(c, int(d) * cfg.tick)
                 for c, d in zip(codes, durations_ticks) if d > 0]
        total = sum(d for _, d in pairs)
        return Signature.from_pairs(pairs, total)

    def quantize_batch(self, batch: SignatureBatch) -> SignatureBatch:
        """Clock/counter quantization of a whole packed batch at once.

        Bit-identical vectorized equivalent of calling
        :meth:`quantize` row by row (the equivalence tests assert
        exact codes, durations and periods): transition instants round
        up to the next master-clock edge, transitions collapsing onto
        one edge keep only the burst's final code, dwell counts
        saturate (or wrap) in the counter, each row's period becomes
        its quantized tick total (summed in the scalar path's
        sequential order), and adjacent runs left with equal codes by
        the edge collapse are merged exactly as
        ``Signature.from_pairs`` would merge them.  The whole pipeline
        runs on the flat CSR arrays -- no per-die :class:`Signature`
        objects.
        """
        cfg = self.config
        n = len(batch)
        if n == 0:
            return batch
        period_ticks = np.rint(batch.periods / cfg.tick).astype(np.int64)
        if np.any(period_ticks < 1):
            raise ValueError("period shorter than one clock tick")
        counts = batch.runs_per_row
        rowidx = np.repeat(np.arange(n), counts)
        # Transition times -> next clock edge (ceil); the tick-0 head
        # entry of each row falls out of the same expression.
        ticks = np.ceil(batch.start_times() / cfg.tick
                        - 1e-12).astype(np.int64)
        # Drop transitions at or beyond the period's last edge (the
        # scalar path's early break -- ticks are non-decreasing).
        valid = np.flatnonzero(ticks < period_ticks[rowidx])
        v_ticks = ticks[valid]
        v_codes = batch.codes[valid]
        v_rows = rowidx[valid]
        # Transitions captured on one edge collapse: the detector sees
        # only the final code of the burst, so keep each (row, tick)
        # group's last entry.
        keep = np.ones(valid.size, dtype=bool)
        if valid.size > 1:
            keep[:-1] = ((v_ticks[1:] != v_ticks[:-1])
                         | (v_rows[1:] != v_rows[:-1]))
        edges = v_ticks[keep]
        codes = v_codes[keep]
        rows = v_rows[keep]
        kept_counts = np.bincount(rows, minlength=n)
        offsets = np.concatenate([[0], np.cumsum(kept_counts)])
        durations_ticks = np.empty(edges.size, dtype=np.int64)
        if edges.size > 1:
            durations_ticks[:-1] = edges[1:] - edges[:-1]
        last = offsets[1:] - 1
        durations_ticks[last] = period_ticks - edges[last]
        if not cfg.wrap:
            durations_ticks = np.minimum(durations_ticks, cfg.max_count)
        else:
            durations_ticks = np.mod(durations_ticks - 1,
                                     1 << cfg.counter_bits) + 1
        durations = durations_ticks * cfg.tick
        # Per-row period: the scalar path sums the per-run second
        # durations sequentially (Python sum over the pairs); a padded
        # per-row cumsum replays exactly that left fold.
        local = np.arange(edges.size) - offsets[rows]
        padded = np.zeros((n, int(kept_counts.max())))
        padded[rows, local] = durations
        periods = np.cumsum(padded, axis=1)[np.arange(n),
                                            kept_counts - 1]
        # Counter saturation/wrap can leave adjacent runs carrying the
        # same code; the scalar path's Signature construction merges
        # them by sequentially accumulating their durations.  A padded
        # per-group cumsum replays exactly that left fold (reduceat
        # associates differently and drifts by an ulp).
        heads = np.ones(edges.size, dtype=bool)
        if edges.size > 1:
            heads[1:] = (codes[1:] != codes[:-1]) | (rows[1:] != rows[:-1])
        head_idx = np.flatnonzero(heads)
        group_ids = np.cumsum(heads) - 1
        group_counts = np.bincount(group_ids)
        group_local = np.arange(edges.size) - head_idx[group_ids]
        grouped = np.zeros((head_idx.size, int(group_counts.max())))
        grouped[group_ids, group_local] = durations
        merged_durations = np.cumsum(grouped, axis=1)[
            np.arange(head_idx.size), group_counts - 1]
        merged_codes = codes[head_idx]
        merged_counts = np.bincount(rows[head_idx], minlength=n)
        merged_offsets = np.concatenate([[0],
                                         np.cumsum(merged_counts)])
        return SignatureBatch(merged_codes, merged_durations,
                              merged_offsets, periods)
