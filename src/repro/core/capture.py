"""Signature capture: ideal (software) and asynchronous (Fig. 5 hardware).

Two capture models produce :class:`repro.core.signature.Signature`
objects from a Lissajous trace:

* :func:`capture_signature` -- the *ideal* capture used to define
  golden signatures: dense sampling of the zone code along the curve,
  optionally refined by adaptive bisection so zone-crossing instants
  are exact to a configurable tolerance rather than quantized to the
  sampling grid.
* :class:`AsyncCapture` -- a behavioural model of the paper's capture
  circuit (Fig. 5): monitors drive a transition detector; an m-bit
  counter running on the master clock measures the dwell time between
  transitions; codes are latched asynchronously.  This model quantizes
  dwell times to clock ticks, merges transitions shorter than one tick,
  and can saturate the counter -- the effects studied in the capture
  ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Tuple

import numpy as np

from repro.core.signature import Signature
from repro.core.zones import ZoneEncoder
from repro.signals.lissajous import LissajousTrace


def _refine_transitions(code_of_time: Callable[[float], int],
                        t0: float, t1: float, c0: int, c1: int,
                        tol: float) -> List[Tuple[float, int]]:
    """Locate code changes inside (t0, t1] by recursive bisection.

    Handles multiple boundary crossings inside the bracket by
    subdividing until each sub-bracket is shorter than ``tol``; the
    returned list contains (transition time, new code) pairs in order.
    """
    if c0 == c1:
        return []
    if t1 - t0 <= tol:
        return [(t1, c1)]
    tm = 0.5 * (t0 + t1)
    cm = code_of_time(tm)
    return (_refine_transitions(code_of_time, t0, tm, c0, cm, tol)
            + _refine_transitions(code_of_time, tm, t1, cm, c1, tol))


def capture_signature(encoder: ZoneEncoder, trace: LissajousTrace,
                      refine: bool = True,
                      tol_fraction: float = 1e-7) -> Signature:
    """Ideal signature of a Lissajous trace.

    Parameters
    ----------
    encoder:
        The zone encoder (bank of monitors).
    trace:
        One period of the composed signals.
    refine:
        When True, zone-crossing times are bisected on the interpolated
        trace down to ``tol_fraction * period``, decoupling signature
        accuracy from the sampling grid.  Disable for noisy traces,
        where sub-sample interpolation has no physical meaning.
    """
    xs, ys = trace.points()
    times = trace.times - trace.times[0]
    codes = encoder.code(xs, ys)
    period = trace.period

    if not refine:
        return Signature.from_samples(times, codes, period)

    def code_of_time(t: float) -> int:
        x, y = trace.point_at(trace.times[0] + t)
        return int(encoder.code(x, y))

    transitions: List[Tuple[float, int]] = []
    tol = tol_fraction * period
    for i in range(len(times) - 1):
        if codes[i + 1] != codes[i]:
            transitions.extend(
                _refine_transitions(code_of_time, float(times[i]),
                                    float(times[i + 1]), int(codes[i]),
                                    int(codes[i + 1]), tol))
    # Wrap interval: between the last sample and t = period the code
    # returns to codes[0] (periodicity); refine that edge too.
    if codes[-1] != codes[0]:
        transitions.extend(
            _refine_transitions(
                code_of_time, float(times[-1]), period,
                int(codes[-1]), int(codes[0]), tol))
    # Clamp any transition refined exactly onto the period boundary.
    transitions = [(t, c) for t, c in transitions if t < period]
    if not transitions:
        return Signature.from_pairs([(int(codes[0]), period)], period)
    return Signature.from_transitions(int(codes[0]), transitions, period)


@dataclass(frozen=True)
class CaptureConfig:
    """Hardware parameters of the Fig. 5 asynchronous capture circuit.

    Attributes
    ----------
    clock_hz:
        Master clock frequency feeding the m-bit counter.
    counter_bits:
        Width m of the interval counter; dwell counts saturate at
        ``2^m - 1`` ticks (the paper leaves overflow behaviour open; a
        saturating time register is the conservative choice and is the
        default here -- `wrap=True` models a free-running counter
        instead).
    wrap:
        When True the counter wraps modulo 2^m instead of saturating.
    """

    clock_hz: float = 10e6
    counter_bits: int = 16
    wrap: bool = False

    def __post_init__(self) -> None:
        if self.clock_hz <= 0:
            raise ValueError("clock must be positive")
        if self.counter_bits < 1:
            raise ValueError("counter needs at least one bit")

    @property
    def tick(self) -> float:
        """Counter resolution in seconds."""
        return 1.0 / self.clock_hz

    @property
    def max_count(self) -> int:
        """Largest representable dwell count."""
        return (1 << self.counter_bits) - 1


class AsyncCapture:
    """Behavioural model of the asynchronous signature capture circuit.

    The continuous (ideal) signature is first computed, then distorted
    exactly as the hardware would:

    1. transition instants are observed on the next master-clock edge;
    2. transitions landing on the same edge collapse (the transition
       detector emits a single capture: short glitch zones vanish);
    3. dwell counts longer than the counter range saturate (or wrap).

    The result is again a :class:`Signature` whose durations are whole
    clock ticks, so it can be fed to the same NDF metric -- this is the
    quantization ablation of the benchmarks.
    """

    def __init__(self, encoder: ZoneEncoder,
                 config: CaptureConfig = CaptureConfig()) -> None:
        self.encoder = encoder
        self.config = config

    def capture(self, trace: LissajousTrace,
                refine: bool = True) -> Signature:
        """Capture a quantized signature from one Lissajous period."""
        ideal = capture_signature(self.encoder, trace, refine=refine)
        return self.quantize(ideal)

    def quantize(self, ideal: Signature) -> Signature:
        """Apply clock/counter quantization to an ideal signature."""
        cfg = self.config
        period_ticks = int(round(ideal.period / cfg.tick))
        if period_ticks < 1:
            raise ValueError("period shorter than one clock tick")
        # Transition times -> next clock edge (ceil).
        edges = [0]
        codes = [ideal.entries[0].code]
        for t, code in zip(ideal.breakpoints(),
                           [e.code for e in ideal.entries[1:]]):
            tick = int(np.ceil(t / cfg.tick - 1e-12))
            tick = min(tick, period_ticks)  # clamp into the period
            if tick <= edges[-1]:
                # Collapsed with the previous capture: the detector sees
                # only the final code of the burst.
                codes[-1] = code
                continue
            if tick >= period_ticks:
                break
            edges.append(tick)
            codes.append(code)
        durations_ticks = np.diff(edges + [period_ticks])
        if not cfg.wrap:
            durations_ticks = np.minimum(durations_ticks, cfg.max_count)
        else:
            durations_ticks = np.mod(durations_ticks - 1, 1 << cfg.counter_bits) + 1
        pairs = [(c, int(d) * cfg.tick)
                 for c, d in zip(codes, durations_ticks) if d > 0]
        total = sum(d for _, d in pairs)
        return Signature.from_pairs(pairs, total)
