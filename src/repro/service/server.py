"""Screening-as-a-service: the stdlib HTTP front end.

One long-lived :class:`ScreeningServer` (a ``ThreadingHTTPServer``)
exposes the campaign engine to many concurrent clients:

=============  ======  ==================================================
``/campaign``  POST    screen a die-lot, return per-die NDFs + verdicts
``/diagnose``  POST    screen + match failing dies against the warm
                       fault dictionary
``/healthz``   GET     liveness + warm-state summary (JSON)
``/metrics``   GET     Prometheus-style text scrape
=============  ======  ==================================================

Every request thread goes through per-client token-bucket rate
limiting (HTTP 429 + ``Retry-After`` when the bucket is empty), then
hands its request to the :class:`~repro.service.batcher.
CoalescingBatcher`, which packs concurrent compatible lots into one
engine pass and scatters per-client slices back -- bit-identical to
solo runs.  All state (golden cache, calibration, compiled dictionary)
lives in one warm :class:`~repro.service.session.ScreeningSession`.

The failure envelope is explicit (``docs/service.md``):

- ``Idempotency-Key`` headers dedupe retried POSTs through an
  :class:`IdempotencyCache` -- a replayed lot is answered from the
  first execution's cached 2xx response, never executed twice;
- ``deadline`` bounds each screening submission (HTTP 504 on expiry);
- ``max_queue`` bounds the batcher wait queue (HTTP 503 +
  ``Retry-After`` load shedding when full);
- :meth:`ScreeningServer.drain` refuses new work (503) while letting
  in-flight requests finish -- the CLI wires it to SIGTERM;
- ``store=`` persists warm artifacts across restarts
  (``docs/persistence.md``).

Request JSON (see ``docs/service.md`` for the full schema)::

    {"kind": "mc", "dies": 50, "sigma": 0.03, "seed": 7}
    {"kind": "sweep", "deviations": [-0.1, 0.0, 0.1]}
    {"kind": "traces", "y": [[...], [...]]}

The server is dependency-free (``http.server`` + ``json``); run it
from the CLI with ``repro serve``.
"""

from __future__ import annotations

import json
import threading
import time
from collections import OrderedDict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple, Union
from urllib.parse import urlsplit

import numpy as np

from repro.campaign.request import ScreeningRequest
from repro.obs.logs import log_event
from repro.obs.metrics import MetricsRegistry, default_registry, timed
from repro.obs.trace import (
    REQUEST_ID_HEADER,
    get_request_id,
    new_request_id,
    request_context,
    span,
)
from repro.service.batcher import (
    CoalescingBatcher,
    DeadlineExceeded,
    QueueFull,
)
from repro.service.client import IDEMPOTENCY_HEADER
from repro.service.ratelimit import RateLimiter
from repro.service.session import ScreeningSession
from repro.testing.faultinject import fail_if_armed, should_fail

#: Header carrying the client identity (falls back to the peer IP).
CLIENT_HEADER = "X-Client"

#: Hard cap on request bodies (a million-sample trace stack is a
#: library workload, not an HTTP payload).
MAX_BODY_BYTES = 32 * 1024 * 1024


class BadRequest(ValueError):
    """Client-side request error (rendered as HTTP 400)."""


class IdempotencyCache:
    """Dedupe of retried POSTs, keyed (client, endpoint, key).

    The contract behind the client's ``Idempotency-Key`` header:

    - the first request carrying a key *executes*; its 2xx response
      body is cached and every later request with the same key gets
      the stored body back -- the lot never runs twice;
    - only success is cached.  A failed execution drops its claim, so
      a retry after a 5xx/504 *re-executes* -- exactly what the client
      wants from a failure it retried through;
    - a duplicate arriving while the first execution is still running
      waits on it instead of racing it (then replays, or re-executes
      if the first attempt failed).

    Bounded LRU; entries are whole JSON-able response bodies, which
    for this service are small (verdict lists, not traces).
    """

    def __init__(self, maxsize: int = 1024) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be positive")
        self.maxsize = int(maxsize)
        self._lock = threading.Lock()
        self._done: "OrderedDict[Tuple, Tuple[int, Dict]]" = \
            OrderedDict()
        self._inflight: Dict[Tuple, threading.Event] = {}
        # Request id of each key's *original* execution, kept apart
        # from _done so the cached (status, body) shape stays stable.
        self._request_ids: Dict[Tuple, str] = {}

    def claim(self, key: Tuple) -> Tuple[str, Union[
            None, Tuple[int, Dict], threading.Event]]:
        """One of ``("replay", (status, body))`` (already executed),
        ``("wait", event)`` (someone is executing it right now) or
        ``("execute", None)`` (the caller owns the execution and must
        call :meth:`finish`)."""
        with self._lock:
            stored = self._done.get(key)
            if stored is not None:
                self._done.move_to_end(key)
                return "replay", stored
            event = self._inflight.get(key)
            if event is not None:
                return "wait", event
            self._inflight[key] = threading.Event()
            return "execute", None

    def finish(self, key: Tuple, status: int, body: Dict,
               request_id: Optional[str] = None) -> None:
        """Record the execution outcome and release any waiters."""
        with self._lock:
            event = self._inflight.pop(key, None)
            if 200 <= status < 300:
                self._done[key] = (status, body)
                if request_id is not None:
                    self._request_ids[key] = request_id
                while len(self._done) > self.maxsize:
                    evicted, __ = self._done.popitem(last=False)
                    self._request_ids.pop(evicted, None)
        if event is not None:
            event.set()

    def original_request_id(self, key: Tuple) -> Optional[str]:
        """Request id of the execution a replay is answered from."""
        with self._lock:
            return self._request_ids.get(key)

    def __len__(self) -> int:
        with self._lock:
            return len(self._done)


def population_from_payload(payload: Dict, golden_spec):
    """Build the requested population from one JSON payload.

    ``kind`` selects the builder: ``"mc"`` (Monte Carlo dies;
    ``dies``, ``sigma``, ``sigma_q``, ``seed``), ``"sweep"``
    (``deviations`` list) or ``"traces"`` (``y`` rows on the
    session's capture grid).  Monte Carlo lots are deterministic in
    ``(seed, die index)``, so a client re-sending the same payload
    gets bit-identical dies -- the property the smoke test leans on.
    """
    from repro.campaign.scenarios import (
        deviation_sweep_population,
        montecarlo_dies,
        trace_population,
    )

    kind = payload.get("kind", "mc")
    if kind == "mc":
        dies = int(payload.get("dies", 32))
        if dies < 0:
            raise BadRequest("dies must be non-negative")
        if dies > 1_000_000:
            raise BadRequest("lot too large for one request; "
                             "split it or use the library API")
        return montecarlo_dies(
            golden_spec, dies,
            sigma_f0=float(payload.get("sigma", 0.03)),
            sigma_q=float(payload.get("sigma_q", 0.0)),
            seed=int(payload.get("seed", 0)))
    if kind == "sweep":
        deviations = payload.get("deviations")
        if not isinstance(deviations, (list, tuple)) or not deviations:
            raise BadRequest("sweep needs a non-empty 'deviations' "
                             "list")
        return deviation_sweep_population(
            golden_spec, [float(d) for d in deviations])
    if kind == "traces":
        rows = payload.get("y")
        if not isinstance(rows, list) or not rows:
            raise BadRequest("traces need a non-empty 'y' row list")
        try:
            stack = np.asarray(rows, dtype=float)
        except (TypeError, ValueError) as error:
            raise BadRequest(f"bad trace rows: {error}") from None
        if stack.ndim != 2:
            raise BadRequest("trace rows must form a rectangular "
                             "(N, samples) stack")
        return trace_population(stack, payload.get("labels"))
    raise BadRequest(f"unknown population kind {kind!r} "
                     "(expected mc, sweep or traces)")


def request_from_payload(payload: Dict, golden_spec,
                         client: Optional[str] = None,
                         keep_signatures: bool = False,
                         request_id: Optional[str] = None
                         ) -> ScreeningRequest:
    """One :class:`ScreeningRequest` from a /campaign-style payload."""
    if not isinstance(payload, dict):
        raise BadRequest("request body must be a JSON object")
    band = payload.get("band", "auto")
    if band is not None and band != "auto":
        try:
            band = float(band)
        except (TypeError, ValueError):
            raise BadRequest("band must be 'auto', a number or null") \
                from None
    return ScreeningRequest(
        population=population_from_payload(payload, golden_spec),
        mode="run", band=band, keep_signatures=keep_signatures,
        client=client, request_id=request_id)


def campaign_payload(result, include_ndfs: bool = True) -> Dict:
    """JSON-ready view of one per-client campaign result."""
    payload = {
        "dies": result.num_dies,
        "threshold": result.threshold,
        "executor": result.executor,
        "labels": list(result.labels or []),
        "timing": {k: float(v) for k, v in result.timing.items()},
    }
    if include_ndfs:
        payload["ndfs"] = [float(v) for v in result.ndfs]
    if result.verdicts is not None:
        payload["verdicts"] = [bool(v) for v in result.verdicts]
        payload["pass"] = result.pass_count
        payload["fail"] = result.fail_count
    return payload


class ScreeningServer(ThreadingHTTPServer):
    """The long-lived multi-client screening front end.

    One request-handling thread per connection
    (``ThreadingHTTPServer``); the session, batcher, limiter and
    metrics registry hang off the server object so every handler
    thread shares the same warm state.
    """

    daemon_threads = True

    def __init__(self, address: Tuple[str, int],
                 session: Optional[ScreeningSession] = None,
                 rate: Optional[float] = None,
                 burst: Optional[float] = None,
                 window: float = 0.005,
                 max_dies: int = 100_000,
                 metrics: Optional[MetricsRegistry] = None,
                 store=None,
                 deadline: Optional[float] = None,
                 max_queue: Optional[int] = None) -> None:
        if deadline is not None and deadline <= 0:
            raise ValueError("deadline must be positive (or None)")
        # Default to the process-wide registry: engine-level series
        # (engine_stage_seconds, cache/store counters) recorded by the
        # pipeline then appear on this server's /metrics for free.
        self.metrics = metrics if metrics is not None \
            else default_registry()
        self.started = time.time()
        #: Unix timestamp of the last 5xx answered (None = never).
        self.last_error: Optional[float] = None
        if session is None:
            session = ScreeningSession.from_paper(metrics=self.metrics,
                                                  store=store)
        elif session.metrics is None:
            session.metrics = self.metrics
        self.session = session
        self.limiter = RateLimiter(rate, burst)
        self.batcher = CoalescingBatcher(
            session, window=window, max_dies=max_dies,
            metrics=self.metrics, max_queue=max_queue)
        self.deadline = deadline
        self.idempotency = IdempotencyCache()
        self.draining = False
        self._inflight_lock = threading.Lock()
        self._inflight_count = 0
        self._idle = threading.Event()
        self._idle.set()
        self._serve_thread: Optional[threading.Thread] = None
        super().__init__(address, _Handler)

    # ------------------------------------------------------------------
    @property
    def url(self) -> str:
        """Base URL of the bound socket."""
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def warm(self, dictionary: bool = True) -> None:
        """Pre-derive golden/band/dictionary before serving."""
        self.session.warm(dictionary=dictionary)

    def start(self) -> "ScreeningServer":
        """Serve in a background thread (tests, embedded use)."""
        self._serve_thread = threading.Thread(
            target=self.serve_forever, name="repro-serve", daemon=True)
        self._serve_thread.start()
        return self

    def close(self) -> None:
        """Stop serving and drain the batcher."""
        self.shutdown()
        self.server_close()
        self.batcher.close()
        if self._serve_thread is not None:
            self._serve_thread.join()
            self._serve_thread = None

    # ------------------------------------------------------------------
    # Graceful drain (the CLI's SIGTERM path)
    # ------------------------------------------------------------------
    def _enter_request(self) -> None:
        with self._inflight_lock:
            self._inflight_count += 1
            self._idle.clear()

    def _exit_request(self) -> None:
        with self._inflight_lock:
            self._inflight_count -= 1
            if self._inflight_count == 0:
                self._idle.set()

    @property
    def inflight(self) -> int:
        """Screening requests currently executing."""
        with self._inflight_lock:
            return self._inflight_count

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Graceful shutdown: refuse new work, finish in-flight work.

        Sets :attr:`draining` (new screening POSTs get 503 +
        ``Retry-After`` and a retrying client fails over), waits up to
        ``timeout`` seconds for in-flight requests to complete, then
        closes the server.  Returns True when everything in flight
        finished inside the timeout.
        """
        self.draining = True
        drained = self._idle.wait(timeout)
        self.close()
        return drained


class _Handler(BaseHTTPRequestHandler):
    """Routes one connection's requests; all state is on the server."""

    server: ScreeningServer
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def log_message(self, format: str, *args) -> None:
        # http.server's default plain-text lines stay suppressed;
        # access logging is the structured JSON record _send emits
        # through repro.obs.logs (opt-in via set_log_sink).
        pass

    def _client_id(self) -> str:
        header = self.headers.get(CLIENT_HEADER)
        if header:
            return header.strip()
        return self.client_address[0]

    def _request_id(self) -> str:
        """The client's ``X-Repro-Request-Id``, or a server-minted one."""
        header = self.headers.get(REQUEST_ID_HEADER)
        if header:
            return header.strip()
        return new_request_id()

    def _send(self, status: int, body: bytes, content_type: str,
              extra: Optional[Dict[str, str]] = None) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        rid = get_request_id()
        if rid is not None:
            self.send_header(REQUEST_ID_HEADER, rid)
        for name, value in (extra or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)
        if status >= 500:
            self.server.last_error = time.time()
        started = getattr(self, "_request_started", None)
        log_event(
            "http.request", method=self.command,
            path=urlsplit(self.path).path, status=status,
            duration_ms=round((time.perf_counter() - started) * 1e3, 3)
            if started is not None else None,
            client=self._client_id())

    def _send_json(self, status: int, payload: Dict,
                   extra: Optional[Dict[str, str]] = None) -> None:
        body = json.dumps(payload).encode("utf-8")
        self._send(status, body, "application/json", extra)

    def _read_payload(self) -> Dict:
        length = int(self.headers.get("Content-Length", 0) or 0)
        if length > MAX_BODY_BYTES:
            raise BadRequest("request body too large")
        raw = self.rfile.read(length) if length else b"{}"
        try:
            payload = json.loads(raw.decode("utf-8") or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise BadRequest(f"bad JSON body: {error}") from None
        if not isinstance(payload, dict):
            raise BadRequest("request body must be a JSON object")
        return payload

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------
    def _publish_store_metrics(self) -> None:
        """Mirror the store counters into gauges before a scrape."""
        info = self.server.session.store_info
        if info is None:
            return
        metrics = self.server.metrics
        metrics.gauge("store_hits").set(info.hits)
        metrics.gauge("store_misses").set(info.misses)
        metrics.gauge("store_writes").set(info.writes)
        metrics.gauge("store_quarantined").set(info.quarantined)
        metrics.gauge("store_errors").set(info.errors)

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        self._request_started = time.perf_counter()
        path = urlsplit(self.path).path
        with request_context(self._request_id()), \
                span("http.request", method="GET", path=path):
            self._get(path)

    def _get(self, path: str) -> None:
        if path == "/healthz":
            metrics = self.server.metrics
            info = self.server.session.cache_info
            body = {
                "status": "draining" if self.server.draining else "ok",
                "submitted": self.server.session.submitted,
                "uptime_seconds": round(
                    time.time() - self.server.started, 3),
                "last_error": self.server.last_error,
                "cache": {"hits": info.hits, "misses": info.misses,
                          "size": info.size},
                "queue_depth": self.server.batcher.queue_depth,
                "inflight": self.server.inflight,
                "metrics_series": sum(
                    len(group) for group in
                    metrics.snapshot().values()),
            }
            store = self.server.session.store_info
            if store is not None:
                body["store"] = {
                    "root": str(self.server.session.store.root),
                    "hits": store.hits, "misses": store.misses,
                    "writes": store.writes,
                    "quarantined": store.quarantined,
                    "errors": store.errors,
                }
            self._send_json(200, body)
            return
        if path == "/metrics":
            self._publish_store_metrics()
            self._send(200, self.server.metrics.render().encode("utf-8"),
                       "text/plain; version=0.0.4; charset=utf-8")
            return
        self._send_json(404, {"error": f"no such endpoint {path!r}"})

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        self._request_started = time.perf_counter()
        path = urlsplit(self.path).path
        with request_context(self._request_id()), \
                span("http.request", method="POST", path=path):
            if path == "/campaign":
                self._screen(diagnose=False)
                return
            if path == "/diagnose":
                self._screen(diagnose=True)
                return
            self._send_json(404,
                            {"error": f"no such endpoint {path!r}"})

    # ------------------------------------------------------------------
    # The two screening endpoints
    # ------------------------------------------------------------------
    def _screen(self, diagnose: bool) -> None:
        endpoint = "diagnose" if diagnose else "campaign"
        metrics = self.server.metrics
        metrics.counter("requests_total", endpoint=endpoint).inc()
        client = self._client_id()
        if self.server.draining:
            metrics.counter("shed_total", endpoint=endpoint,
                            kind="draining").inc()
            self._respond(endpoint, 503,
                          {"error": "draining", "retry_after": 1.0},
                          {"Retry-After": "1.000"})
            return
        admitted, retry = self.server.limiter.allow(client)
        if not admitted:
            metrics.counter("throttled_total", endpoint=endpoint).inc()
            self._respond(endpoint, 429,
                          {"error": "rate limit exceeded",
                           "retry_after": retry},
                          {"Retry-After": f"{retry:.3f}"})
            return
        # Idempotency: a replayed key answers from the first
        # execution's cached response; a concurrent duplicate waits
        # for it instead of racing it.
        header = self.headers.get(IDEMPOTENCY_HEADER)
        idem = (client, endpoint, header.strip()) if header else None
        if idem is not None:
            wait_budget = self.server.deadline or 120.0
            while True:
                action, value = self.server.idempotency.claim(idem)
                if action == "execute":
                    break
                if action == "replay":
                    status, body = value
                    metrics.counter("idempotent_replays_total",
                                    endpoint=endpoint).inc()
                    # The replayed body carries the *original*
                    # execution's request id -- the log line joins
                    # this retry to the work that actually ran.
                    original = self.server.idempotency \
                        .original_request_id(idem)
                    log_event("idempotent.replay", endpoint=endpoint,
                              client=client,
                              original_request_id=original)
                    self._respond(endpoint, status, body,
                                  {"Idempotency-Replay": "true"})
                    return
                if not value.wait(wait_budget):  # action == "wait"
                    metrics.counter("errors_total", endpoint=endpoint,
                                    kind="deadline").inc()
                    self._respond(endpoint, 504, {
                        "error": "deadline exceeded waiting for the "
                                 "original execution of this "
                                 "idempotency key"})
                    return
        status, body, extra = self._execute(endpoint, diagnose, client)
        if idem is not None:
            # Record the outcome *before* answering: a crash between
            # execution and response still lets the client's retry
            # replay the stored result instead of re-running the lot.
            self.server.idempotency.finish(idem, status, body,
                                           request_id=get_request_id())
        if should_fail("server.handler.close"):
            # Fault hook: simulate the worker dying after executing
            # but before answering -- the client sees a connection
            # reset, retries, and must NOT trigger a second execution.
            self.close_connection = True
            self.connection.close()
            return
        self._respond(endpoint, status, body, extra)

    def _respond(self, endpoint: str, status: int, body: Dict,
                 extra: Optional[Dict[str, str]] = None) -> None:
        try:
            self._send_json(status, body, extra)
        except (BrokenPipeError, ConnectionResetError):
            # Client went away mid-response; nothing to answer.
            self.server.metrics.counter(
                "errors_total", endpoint=endpoint,
                kind="disconnect").inc()

    def _execute(self, endpoint: str, diagnose: bool, client: str
                 ) -> Tuple[int, Dict, Optional[Dict[str, str]]]:
        """Run one screening request; never raises, returns
        ``(status, json_body, extra_headers)``."""
        metrics = self.server.metrics
        inflight = metrics.gauge("inflight", endpoint=endpoint)
        inflight.inc()
        self.server._enter_request()
        try:
            fail_if_armed("server.handler.error")
            payload = self._read_payload()
            request = request_from_payload(
                payload, self.server.session.engine.config.golden_spec,
                client=client, keep_signatures=diagnose,
                request_id=get_request_id())
            with timed(metrics.window("request_seconds",
                                      endpoint=endpoint)):
                result = self.server.batcher.submit(
                    request, timeout=self.server.deadline)
            include_ndfs = bool(payload.get("include_ndfs", True))
            body = campaign_payload(result, include_ndfs=include_ndfs)
            body["client"] = client
            body["request_id"] = get_request_id()
            if diagnose:
                diagnosis = self.server.session.diagnose_result(
                    result,
                    top_k=int(payload.get("top_k", 3)),
                    metric=str(payload.get("metric", "ndf")))
                body["diagnosis"] = diagnosis.to_payload()
            return 200, body, None
        except BadRequest as error:
            metrics.counter("errors_total", endpoint=endpoint,
                            kind="bad_request").inc()
            return 400, {"error": str(error)}, None
        except QueueFull as error:
            metrics.counter("shed_total", endpoint=endpoint,
                            kind="queue_full").inc()
            return (503,
                    {"error": "overloaded", "queue_depth": error.depth,
                     "retry_after": error.retry_after},
                    {"Retry-After": f"{error.retry_after:.3f}"})
        except DeadlineExceeded as error:
            metrics.counter("errors_total", endpoint=endpoint,
                            kind="deadline").inc()
            return 504, {"error": f"deadline exceeded: {error}"}, None
        except Exception as error:  # engine/internal failure
            metrics.counter("errors_total", endpoint=endpoint,
                            kind="internal").inc()
            return (500,
                    {"error": f"{type(error).__name__}: {error}"},
                    None)
        finally:
            inflight.dec()
            self.server._exit_request()


def build_server(host: str = "127.0.0.1", port: int = 8765,
                 samples_per_period: int = 2048,
                 tolerance: float = 0.05,
                 rate: Optional[float] = None,
                 burst: Optional[float] = None,
                 window: float = 0.005,
                 max_dies: int = 100_000,
                 metrics: Optional[MetricsRegistry] = None,
                 session: Optional[ScreeningSession] = None,
                 store=None,
                 deadline: Optional[float] = None,
                 max_queue: Optional[int] = None) -> ScreeningServer:
    """A screening server over the calibrated paper bench.

    ``port=0`` binds an ephemeral port (tests); read the bound address
    back from :attr:`ScreeningServer.url`.  ``store`` persists warm
    artifacts on disk (path, :class:`repro.store.ArtifactStore`, or
    True for the default root); ``deadline`` bounds each screening
    request in seconds (504 past it); ``max_queue`` bounds the batcher
    queue (503 + ``Retry-After`` when full).
    """
    metrics = metrics if metrics is not None else default_registry()
    if session is None:
        session = ScreeningSession.from_paper(
            samples_per_period=samples_per_period, tolerance=tolerance,
            metrics=metrics, store=store)
    return ScreeningServer((host, port), session, rate=rate,
                           burst=burst, window=window,
                           max_dies=max_dies, metrics=metrics,
                           deadline=deadline, max_queue=max_queue)
