"""Request coalescing: many small die-lots, one packed engine pass.

The shared-tester economics of the paper cut against tiny lots: a
50-die request pays the same per-pass overheads (golden lookup, chunk
scheduling, encode setup) as a 5000-die one.  The
:class:`CoalescingBatcher` therefore *lingers* for a few milliseconds
when a request arrives, gathers every compatible request that lands in
the window, concatenates their spec populations into one combined
population, runs a single engine pass, and scatters the per-client row
slices back out (:meth:`~repro.campaign.result.CampaignResult.slice`).

Coalescing is invisible to clients: per-die NDFs and verdicts depend
only on that die's own spec (the front half broadcasts per row, the
back half scores per row, and chunking is already proven
order-stable), so every client's slice is **bit-identical** to the
solo run of its own lot -- the property
``tests/service/test_batcher.py`` locks down.

Only one-shot ``run`` requests over spec populations coalesce;
everything else (streams, noise campaigns, trace stacks, cut lists)
passes straight through to the session.  Requests group by decision
policy (resolved threshold, ``keep_signatures``, encoder list), so a
diagnosing client never changes a screening client's result shape.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.campaign.request import ScreeningRequest
from repro.campaign.result import CampaignResult
from repro.campaign.scenarios import SpecPopulation
from repro.service.metrics import MetricsRegistry
from repro.service.session import ScreeningSession


@dataclass
class _Pending:
    """One enqueued request waiting for its slice."""

    request: ScreeningRequest
    population: SpecPopulation
    done: threading.Event = field(default_factory=threading.Event)
    result: Optional[CampaignResult] = None
    error: Optional[BaseException] = None


def concatenate_populations(parts: List[SpecPopulation]
                            ) -> SpecPopulation:
    """One spec population from many, rows in request order."""
    specs = [spec for part in parts for spec in part.specs]
    labels = [label for part in parts for label in part.labels]
    f0 = (np.concatenate([part.f0_deviations for part in parts])
          if parts else np.empty(0))
    q = (np.concatenate([part.q_deviations for part in parts])
         if parts else np.empty(0))
    return SpecPopulation(specs, f0, q, labels)


class CoalescingBatcher:
    """Linger-window batcher in front of one screening session.

    Parameters
    ----------
    session:
        The warm session the combined passes run through.
    window:
        Linger seconds after the first arrival before a flush (more
        arrivals within the window join the batch).  0 still
        coalesces whatever is queued when the worker wakes.
    max_dies:
        Cap on combined population size per engine pass; a group
        larger than this flushes as several passes (each still one
        packed run).
    metrics:
        Optional registry; flushes record coalesced batch sizes
        (requests and dies per pass) and queue depth.
    """

    def __init__(self, session: ScreeningSession,
                 window: float = 0.005, max_dies: int = 100_000,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        if max_dies < 1:
            raise ValueError("max_dies must be positive")
        self.session = session
        self.window = float(window)
        self.max_dies = int(max_dies)
        self.metrics = metrics
        self._cond = threading.Condition()
        self._queue: List[_Pending] = []
        self._closed = False
        self._worker = threading.Thread(
            target=self._loop, name="repro-batcher", daemon=True)
        self._worker.start()

    # ------------------------------------------------------------------
    # Client side
    # ------------------------------------------------------------------
    def submit(self, request: ScreeningRequest) -> CampaignResult:
        """Run ``request``, coalescing it with concurrent compatible
        requests; blocks until this request's own slice is ready.

        Non-coalescible requests (streams, noise, trace/cut
        populations) execute directly on the session.
        """
        population = self._coalescible_population(request)
        if population is None:
            return self.session.submit(request)
        pending = _Pending(request, population)
        with self._cond:
            if self._closed:
                raise RuntimeError("batcher is closed")
            self._queue.append(pending)
            self._cond.notify_all()
        pending.done.wait()
        if pending.error is not None:
            raise pending.error
        return pending.result

    def close(self) -> None:
        """Stop accepting requests and drain the queue."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()
        self._worker.join()

    @property
    def queue_depth(self) -> int:
        """Requests currently waiting for a flush."""
        with self._cond:
            return len(self._queue)

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    @staticmethod
    def _coalescible_population(request: ScreeningRequest
                                ) -> Optional[SpecPopulation]:
        """The request's spec population, or None when it cannot
        coalesce (non-run modes and non-spec populations)."""
        if request.mode != "run":
            return None
        population = request.population
        if isinstance(population, SpecPopulation):
            return population
        # Raw spec sequences wrap exactly like the engine would wrap
        # them solo, so slice labels match the solo run's labels.
        if isinstance(population, (list, tuple)) and population:
            try:
                from repro.campaign.engine import CampaignEngine

                wrapped = CampaignEngine._as_population(list(population))
            except (TypeError, ValueError):
                return None
            if isinstance(wrapped, SpecPopulation):
                return wrapped
        return None

    def _group_key(self, request: ScreeningRequest) -> Tuple:
        """Requests sharing this key may share one engine pass."""
        # Resolving "auto" here pins the group to one concrete
        # threshold (cached after the first resolution), so verdicts
        # of the combined pass match every member's solo verdicts.
        threshold = self.session.engine._resolve_threshold(request.band)
        return (threshold, request.keep_signatures, request.encoders)

    def _loop(self) -> None:
        while True:
            with self._cond:
                while not self._queue and not self._closed:
                    self._cond.wait()
                if not self._queue and self._closed:
                    return
                # Linger: give concurrent clients the window to join.
                deadline = time.monotonic() + self.window
                while not self._closed:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    self._cond.wait(remaining)
                batch, self._queue = self._queue, []
            self._flush(batch)

    def _flush(self, batch: List[_Pending]) -> None:
        groups: Dict[Tuple, List[_Pending]] = {}
        order: List[Tuple] = []
        for pending in batch:
            try:
                key = self._group_key(pending.request)
            except Exception as error:  # bad band spec etc.
                pending.error = error
                pending.done.set()
                continue
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(pending)
        for key in order:
            group = groups[key]
            # Respect the die cap: split an oversized group into
            # successive packed passes.
            start = 0
            while start < len(group):
                stop = start
                dies = 0
                while stop < len(group):
                    size = len(group[stop].population)
                    if stop > start and dies + size > self.max_dies:
                        break
                    dies += size
                    stop += 1
                self._run_group(key[0], group[start:stop])
                start = stop

    def _run_group(self, threshold: Optional[float],
                   group: List[_Pending]) -> None:
        try:
            combined = concatenate_populations(
                [pending.population for pending in group])
            head = group[0].request
            request = ScreeningRequest(
                population=combined, mode="run", band=threshold,
                keep_signatures=head.keep_signatures,
                encoders=head.encoders)
            result = self.session.submit(request)
            if self.metrics is not None:
                self.metrics.window("coalesced_requests").observe(
                    len(group))
                self.metrics.window("coalesced_dies").observe(
                    len(combined))
            offset = 0
            for pending in group:
                n = len(pending.population)
                pending.result = result.slice(offset, offset + n)
                offset += n
        except BaseException as error:
            for pending in group:
                if pending.error is None:
                    pending.error = error
        finally:
            for pending in group:
                pending.done.set()
