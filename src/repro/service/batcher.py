"""Request coalescing: many small die-lots, one packed engine pass.

The shared-tester economics of the paper cut against tiny lots: a
50-die request pays the same per-pass overheads (golden lookup, chunk
scheduling, encode setup) as a 5000-die one.  The
:class:`CoalescingBatcher` therefore *lingers* for a few milliseconds
when a request arrives, gathers every compatible request that lands in
the window, concatenates their spec populations into one combined
population, runs a single engine pass, and scatters the per-client row
slices back out (:meth:`~repro.campaign.result.CampaignResult.slice`).

Coalescing is invisible to clients: per-die NDFs and verdicts depend
only on that die's own spec (the front half broadcasts per row, the
back half scores per row, and chunking is already proven
order-stable), so every client's slice is **bit-identical** to the
solo run of its own lot -- the property
``tests/service/test_batcher.py`` locks down.

Only one-shot ``run`` requests over spec populations coalesce;
everything else (streams, noise campaigns, trace stacks, cut lists)
passes straight through to the session.  Requests group by decision
policy (resolved threshold, ``keep_signatures``, encoder list), so a
diagnosing client never changes a screening client's result shape.

The batcher is also the service's load-shedding and deadline point:
``max_queue`` bounds how many requests may wait for a flush
(:class:`QueueFull`, the server's 503), ``submit(timeout=...)`` bounds
how long one caller waits for its slice (:class:`DeadlineExceeded`,
the server's 504), and the worker loop is crash-proof -- an exception
escaping a flush fails that batch's waiters instead of killing the
worker thread and hanging every later submission.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.campaign.request import ScreeningRequest
from repro.campaign.result import CampaignResult
from repro.campaign.scenarios import SpecPopulation
from repro.obs.trace import span
from repro.service.metrics import MetricsRegistry
from repro.service.session import ScreeningSession


class QueueFull(RuntimeError):
    """The batcher's wait queue is at ``max_queue`` (shed the load).

    The server maps this to HTTP 503 with a ``Retry-After`` hint; a
    retrying client backs off and re-submits under the same
    idempotency key.
    """

    def __init__(self, depth: int, retry_after: float) -> None:
        super().__init__(
            f"batcher queue full ({depth} requests waiting)")
        self.depth = depth
        self.retry_after = retry_after


class DeadlineExceeded(TimeoutError):
    """A submission's deadline elapsed before its slice was ready.

    Raised by :meth:`CoalescingBatcher.submit` with ``timeout=``; the
    server maps it to HTTP 504.  A still-queued request is withdrawn
    (it will never execute); one already mid-flush completes in the
    background and its slice is discarded.
    """


@dataclass
class _Pending:
    """One enqueued request waiting for its slice."""

    request: ScreeningRequest
    population: SpecPopulation
    done: threading.Event = field(default_factory=threading.Event)
    result: Optional[CampaignResult] = None
    error: Optional[BaseException] = None


def concatenate_populations(parts: List[SpecPopulation]
                            ) -> SpecPopulation:
    """One spec population from many, rows in request order."""
    specs = [spec for part in parts for spec in part.specs]
    labels = [label for part in parts for label in part.labels]
    f0 = (np.concatenate([part.f0_deviations for part in parts])
          if parts else np.empty(0))
    q = (np.concatenate([part.q_deviations for part in parts])
         if parts else np.empty(0))
    return SpecPopulation(specs, f0, q, labels)


class CoalescingBatcher:
    """Linger-window batcher in front of one screening session.

    Parameters
    ----------
    session:
        The warm session the combined passes run through.
    window:
        Linger seconds after the first arrival before a flush (more
        arrivals within the window join the batch).  0 still
        coalesces whatever is queued when the worker wakes.
    max_dies:
        Cap on combined population size per engine pass; a group
        larger than this flushes as several passes (each still one
        packed run).
    metrics:
        Optional registry; flushes record coalesced batch sizes
        (requests and dies per pass) and queue depth.
    max_queue:
        Bound on requests waiting for a flush; further submissions
        raise :class:`QueueFull` instead of queueing (None =
        unbounded, the historical behaviour).
    """

    def __init__(self, session: ScreeningSession,
                 window: float = 0.005, max_dies: int = 100_000,
                 metrics: Optional[MetricsRegistry] = None,
                 max_queue: Optional[int] = None) -> None:
        if max_dies < 1:
            raise ValueError("max_dies must be positive")
        if max_queue is not None and max_queue < 1:
            raise ValueError("max_queue must be positive (or None)")
        self.session = session
        self.window = float(window)
        self.max_dies = int(max_dies)
        self.max_queue = max_queue
        self.metrics = metrics
        self._cond = threading.Condition()
        self._queue: List[_Pending] = []
        self._closed = False
        self._worker = threading.Thread(
            target=self._loop, name="repro-batcher", daemon=True)
        self._worker.start()

    # ------------------------------------------------------------------
    # Client side
    # ------------------------------------------------------------------
    def submit(self, request: ScreeningRequest,
               timeout: Optional[float] = None) -> CampaignResult:
        """Run ``request``, coalescing it with concurrent compatible
        requests; blocks until this request's own slice is ready.

        Non-coalescible requests (streams, noise, trace/cut
        populations) execute directly on the session.  ``timeout``
        bounds the wait: on expiry the request is withdrawn from the
        queue (if still there) and :class:`DeadlineExceeded` raises.
        Raises :class:`QueueFull` when ``max_queue`` requests are
        already waiting.
        """
        population = self._coalescible_population(request)
        if population is None:
            return self.session.submit(request)
        pending = _Pending(request, population)
        with self._cond:
            if self._closed:
                raise RuntimeError("batcher is closed")
            if self.max_queue is not None \
                    and len(self._queue) >= self.max_queue:
                raise QueueFull(len(self._queue),
                                retry_after=max(self.window, 0.05))
            self._queue.append(pending)
            self._cond.notify_all()
        if not pending.done.wait(timeout):
            with self._cond:
                # Withdraw if a flush has not claimed it yet, so an
                # abandoned request is never executed.
                if pending in self._queue:
                    self._queue.remove(pending)
                    pending.done.set()
            raise DeadlineExceeded(
                f"no result within {timeout}s "
                f"({len(pending.population)} dies queued)")
        if pending.error is not None:
            raise pending.error
        return pending.result

    def close(self) -> None:
        """Stop accepting requests and drain the queue."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()
        self._worker.join()
        # The worker drains before exiting; anything still queued here
        # means it died earlier -- fail the waiters rather than hang.
        with self._cond:
            leftovers, self._queue = self._queue, []
        self._fail_pendings(
            leftovers, RuntimeError("batcher closed before flush"))

    @property
    def queue_depth(self) -> int:
        """Requests currently waiting for a flush."""
        with self._cond:
            return len(self._queue)

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    @staticmethod
    def _coalescible_population(request: ScreeningRequest
                                ) -> Optional[SpecPopulation]:
        """The request's spec population, or None when it cannot
        coalesce (non-run modes and non-spec populations)."""
        if request.mode != "run":
            return None
        population = request.population
        if isinstance(population, SpecPopulation):
            return population
        # Raw spec sequences wrap exactly like the engine would wrap
        # them solo, so slice labels match the solo run's labels.
        if isinstance(population, (list, tuple)) and population:
            try:
                from repro.campaign.engine import CampaignEngine

                wrapped = CampaignEngine._as_population(list(population))
            except (TypeError, ValueError):
                return None
            if isinstance(wrapped, SpecPopulation):
                return wrapped
        return None

    def _group_key(self, request: ScreeningRequest) -> Tuple:
        """Requests sharing this key may share one engine pass."""
        # Resolving "auto" here pins the group to one concrete
        # threshold (cached after the first resolution), so verdicts
        # of the combined pass match every member's solo verdicts.
        threshold = self.session.engine._resolve_threshold(request.band)
        return (threshold, request.keep_signatures, request.encoders)

    def _loop(self) -> None:
        while True:
            with self._cond:
                while not self._queue and not self._closed:
                    self._cond.wait()
                if not self._queue and self._closed:
                    return
                # Linger: give concurrent clients the window to join.
                deadline = time.monotonic() + self.window
                while not self._closed:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    self._cond.wait(remaining)
                batch, self._queue = self._queue, []
            try:
                self._flush(batch)
            except BaseException as error:
                # A flush must never kill the worker: a dead worker
                # leaves every queued and future submission waiting
                # forever.  Fail this batch's waiters and keep serving.
                self._fail_pendings(batch, error)

    @staticmethod
    def _fail_pendings(pendings: List[_Pending],
                       error: BaseException) -> None:
        for pending in pendings:
            if not pending.done.is_set():
                if pending.error is None:
                    pending.error = error
                pending.done.set()

    def _flush(self, batch: List[_Pending]) -> None:
        groups: Dict[Tuple, List[_Pending]] = {}
        order: List[Tuple] = []
        for pending in batch:
            if pending.done.is_set():
                continue  # withdrawn by a submit() deadline
            try:
                key = self._group_key(pending.request)
            except Exception as error:  # bad band spec etc.
                pending.error = error
                pending.done.set()
                continue
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(pending)
        for key in order:
            group = groups[key]
            # Respect the die cap: split an oversized group into
            # successive packed passes.
            start = 0
            while start < len(group):
                stop = start
                dies = 0
                while stop < len(group):
                    size = len(group[stop].population)
                    if stop > start and dies + size > self.max_dies:
                        break
                    dies += size
                    stop += 1
                self._run_group(key[0], group[start:stop])
                start = stop

    def _run_group(self, threshold: Optional[float],
                   group: List[_Pending]) -> None:
        try:
            combined = concatenate_populations(
                [pending.population for pending in group])
            head = group[0].request
            # A solo group keeps its requester's identity on the packed
            # pass; a combined pass belongs to several request ids, so
            # the flush span carries them all as an attribute instead.
            request_ids = [pending.request.request_id
                           for pending in group
                           if pending.request.request_id is not None]
            solo = group[0].request if len(group) == 1 else None
            request = ScreeningRequest(
                population=combined, mode="run", band=threshold,
                keep_signatures=head.keep_signatures,
                encoders=head.encoders,
                client=solo.client if solo is not None else None,
                request_id=(solo.request_id if solo is not None
                            else None))
            with span("batcher.flush", clients=len(group),
                      dies=len(combined), request_ids=request_ids):
                result = self.session.submit(request)
                if self.metrics is not None:
                    self.metrics.window("coalesced_requests").observe(
                        len(group))
                    self.metrics.window("coalesced_dies").observe(
                        len(combined))
                offset = 0
                for pending in group:
                    n = len(pending.population)
                    with span("batcher.slice",
                              client=pending.request.client or "",
                              dies=n,
                              request_id=pending.request.request_id):
                        pending.result = result.slice(
                            offset, offset + n)
                    offset += n
        except BaseException as error:
            for pending in group:
                if pending.error is None:
                    pending.error = error
        finally:
            for pending in group:
                pending.done.set()
