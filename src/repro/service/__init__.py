"""Screening-as-a-service: re-entrant sessions behind a batch server.

The service layer turns the per-process campaign flow into a
long-lived screening endpoint:

- :class:`ScreeningSession` -- one warm, re-entrant engine context
  (golden cache, calibrated band, compiled dictionary held resident);
- :class:`CoalescingBatcher` -- packs concurrent small die-lots into
  one engine pass, per-client slices bit-identical to solo runs;
- :class:`ScreeningServer` / :func:`build_server` -- the stdlib HTTP
  front end (``/campaign``, ``/diagnose``, ``/healthz``,
  ``/metrics``);
- :class:`MetricsRegistry` and :class:`RateLimiter` -- in-process
  observability and per-client token-bucket throttling;
- :class:`ServiceClient` -- the matching stdlib client, with an
  optional :class:`RetryPolicy` (idempotent replays, backoff+jitter).

Telemetry lives in :mod:`repro.obs` (tracing spans, the metrics
registry's home, structured JSON logs, request-id propagation);
``repro.service.metrics`` remains a compatibility re-export.  Every
request carries an ``X-Repro-Request-Id`` that joins client retries to
server spans and log lines end to end (``docs/observability.md``).

The service is crash-safe end to end: sessions persist warm artifacts
through :mod:`repro.store`, the server sheds load (503), bounds
request time (504), dedupes retried POSTs (``Idempotency-Key``) and
drains gracefully on SIGTERM.  Start one from the CLI with
``repro serve``; see ``docs/service.md`` and ``docs/persistence.md``.
"""

from repro.campaign.request import ScreeningRequest
from repro.service.batcher import (
    CoalescingBatcher,
    DeadlineExceeded,
    QueueFull,
    concatenate_populations,
)
from repro.service.client import (
    RetryPolicy,
    ServiceClient,
    ServiceError,
    ServiceUnavailable,
)
from repro.service.metrics import MetricsRegistry, timed
from repro.service.ratelimit import RateLimiter, TokenBucket
from repro.service.server import (
    IdempotencyCache,
    ScreeningServer,
    build_server,
)
from repro.service.session import ScreeningSession

__all__ = [
    "CoalescingBatcher",
    "DeadlineExceeded",
    "IdempotencyCache",
    "MetricsRegistry",
    "QueueFull",
    "RateLimiter",
    "RetryPolicy",
    "ScreeningRequest",
    "ScreeningServer",
    "ScreeningSession",
    "ServiceClient",
    "ServiceError",
    "ServiceUnavailable",
    "TokenBucket",
    "build_server",
    "concatenate_populations",
    "timed",
]
