"""Per-client token-bucket rate limiting for the screening service.

Each client identity (the ``X-Client`` header, falling back to the
peer address) owns one token bucket: ``burst`` tokens deep, refilled
at ``rate`` tokens per second.  A request costs one token; an empty
bucket means HTTP 429 with a ``Retry-After`` hint.  The bucket state
is two floats, so a server can hold one per client for millions of
clients; idle buckets are pruned once they are full again.

The clock is injectable (``clock=``) so tests drive time forward
deterministically instead of sleeping.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional, Tuple


class TokenBucket:
    """One client's bucket: ``burst`` deep, ``rate`` tokens/second."""

    def __init__(self, rate: float, burst: float,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if rate <= 0 or burst <= 0:
            raise ValueError("rate and burst must be positive")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = self.burst
        self._stamp = clock()

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self._stamp)
        self._tokens = min(self.burst,
                           self._tokens + elapsed * self.rate)
        self._stamp = now

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Take ``tokens`` if available; False leaves the bucket as-is."""
        now = self._clock()
        self._refill(now)
        if self._tokens >= tokens:
            self._tokens -= tokens
            return True
        return False

    def retry_after(self, tokens: float = 1.0) -> float:
        """Seconds until ``tokens`` will be available (0 if now)."""
        self._refill(self._clock())
        deficit = tokens - self._tokens
        return max(0.0, deficit / self.rate)

    @property
    def tokens(self) -> float:
        """Tokens currently available."""
        self._refill(self._clock())
        return self._tokens


class RateLimiter:
    """Thread-safe map of client identity -> token bucket.

    ``rate=None`` (or 0) disables limiting -- every ``allow`` call
    admits.  The per-bucket math runs under one limiter lock; buckets
    refilled back to full are pruned opportunistically so the map
    tracks only active clients.
    """

    def __init__(self, rate: Optional[float] = None,
                 burst: Optional[float] = None,
                 clock: Callable[[], float] = time.monotonic,
                 prune_threshold: int = 1024) -> None:
        self.rate = None if not rate else float(rate)
        self.burst = float(burst) if burst else \
            (self.rate if self.rate else 1.0)
        self._clock = clock
        self._buckets: Dict[str, TokenBucket] = {}
        self._lock = threading.Lock()
        self._prune_threshold = int(prune_threshold)

    @property
    def enabled(self) -> bool:
        """True when a rate is configured."""
        return self.rate is not None

    def allow(self, client: str) -> Tuple[bool, float]:
        """Admit or throttle one request from ``client``.

        Returns ``(admitted, retry_after_seconds)``; the retry hint is
        0.0 when admitted.
        """
        if self.rate is None:
            return True, 0.0
        with self._lock:
            bucket = self._buckets.get(client)
            if bucket is None:
                bucket = self._buckets[client] = TokenBucket(
                    self.rate, self.burst, self._clock)
            admitted = bucket.try_acquire()
            retry = 0.0 if admitted else bucket.retry_after()
            if len(self._buckets) > self._prune_threshold:
                self._prune()
            return admitted, retry

    def _prune(self) -> None:
        # Full buckets are indistinguishable from fresh ones; drop
        # them (caller holds the lock).
        full = [key for key, bucket in self._buckets.items()
                if bucket.tokens >= bucket.burst]
        for key in full:
            del self._buckets[key]

    @property
    def active_clients(self) -> int:
        """Buckets currently tracked."""
        with self._lock:
            return len(self._buckets)
