"""Re-entrant screening sessions: warm engine state behind one object.

A :class:`ScreeningSession` is the unit of warm state in the screening
service: it owns a :class:`~repro.campaign.engine.CampaignEngine` with
a private lock-guarded :class:`~repro.campaign.cache.GoldenCache`, so
golden signatures, Fig. 8 calibration bands and compiled fault
dictionaries are derived once and then held resident across requests
-- the opposite of the per-process flow, where every fresh process
re-derived them.

Sessions are re-entrant: any number of threads may call
:meth:`submit` concurrently.  The engine itself is stateless per call
(all chunk state is local), the scratch pool and the golden cache are
lock-guarded, and cache misses are single-flight -- N racing threads
asking for the same cold golden compute it once.  Results are
bit-identical to serial submission of the same requests (proven by
``tests/service/test_session_reentrancy.py``).

Sessions can be *crash-safe*: :meth:`from_paper` with ``store=``
backs the golden cache with an on-disk
:class:`repro.store.ArtifactStore`, so a restarted process warms from
persisted goldens/calibrations/dictionaries instead of re-deriving
them (``docs/persistence.md``).
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Union

from repro.campaign.engine import CampaignEngine
from repro.campaign.request import ScreeningRequest
from repro.campaign.result import CampaignResult, NoiseCampaignResult
from repro.obs.trace import get_request_id, request_context, span
from repro.service.metrics import MetricsRegistry
from repro.testing.faultinject import (
    fail_if_armed,
    should_fail,
    slow_seconds,
)


class ScreeningSession:
    """One warm, thread-safe screening context over one engine.

    Parameters
    ----------
    engine:
        The campaign engine to serve (its cache is the session's warm
        store).  Build from the paper bench via :meth:`from_paper`.
    metrics:
        Optional :class:`~repro.service.metrics.MetricsRegistry`;
        submissions then record request counts and per-stage engine
        timings.
    """

    def __init__(self, engine: CampaignEngine,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        self.engine = engine
        self.metrics = metrics
        self._dict_lock = threading.Lock()
        self._submitted = 0
        self._count_lock = threading.Lock()

    @classmethod
    def from_paper(cls, samples_per_period: int = 2048,
                   tolerance: float = 0.05, executor=None,
                   metrics: Optional[MetricsRegistry] = None,
                   store=None) -> "ScreeningSession":
        """Session over the calibrated paper bench (the common case).

        ``store`` makes the session crash-safe: pass an
        :class:`repro.store.ArtifactStore`, a directory path, or True
        (the default root: ``$REPRO_STORE`` or ``~/.repro/store``) to
        back the golden cache with the on-disk store, so a restarted
        session warms from persisted artifacts.
        """
        from repro.campaign.cache import GoldenCache
        from repro.paper import paper_setup
        from repro.store import ArtifactStore

        setup = paper_setup(samples_per_period=samples_per_period)
        cache = None
        if store is not None:
            if store is True:
                store = ArtifactStore()
            elif not isinstance(store, ArtifactStore):
                store = ArtifactStore(store)
            cache = GoldenCache(store=store)
        engine = setup.campaign_engine(
            samples_per_period=samples_per_period, tolerance=tolerance,
            executor=executor, cache=cache)
        return cls(engine, metrics=metrics)

    # ------------------------------------------------------------------
    # Warm state
    # ------------------------------------------------------------------
    def warm(self, dictionary: bool = True) -> Dict[str, bool]:
        """Pre-derive the expensive artifacts before traffic arrives.

        Computes the golden signature and the calibrated decision band
        (and, unless ``dictionary=False``, compiles the fault
        dictionary) into the session cache, so the first client
        request pays none of it.  Returns which artifacts were warmed.
        """
        self.engine.golden()
        self.engine.band()
        warmed = {"golden": True, "band": True, "dictionary": False}
        if dictionary:
            self.dictionary()
            warmed["dictionary"] = True
        return warmed

    def dictionary(self):
        """The session's compiled fault dictionary (held resident).

        Compiled through the engine's own front half on first use and
        content-cached in the session cache; subsequent calls (from
        any thread) hit.  The dictionary lock keeps racing first
        callers from compiling twice.
        """
        from repro.diagnosis import compile_fault_dictionary

        with self._dict_lock:
            return compile_fault_dictionary(self.engine)

    def threshold(self) -> float:
        """The calibrated decision threshold (cached)."""
        return self.engine.band().threshold

    @property
    def cache_info(self):
        """The warm cache's hit/miss counters."""
        return self.engine.cache.info

    @property
    def store(self):
        """The on-disk artifact store backing the cache (or None)."""
        return getattr(self.engine.cache, "store", None)

    @property
    def store_info(self):
        """The store's hit/miss/write/quarantine counters (or None)."""
        store = self.store
        return store.info if store is not None else None

    @property
    def submitted(self) -> int:
        """Requests submitted through this session so far."""
        with self._count_lock:
            return self._submitted

    # ------------------------------------------------------------------
    # Request entry points
    # ------------------------------------------------------------------
    def submit(self, request: ScreeningRequest
               ) -> Union[CampaignResult, NoiseCampaignResult]:
        """Execute one screening request (re-entrant).

        Safe to call from any number of threads at once; results are
        bit-identical to serial submission.  Records request counts
        and per-stage timings when the session carries metrics.
        """
        with self._count_lock:
            self._submitted += 1
        # Robustness-test hooks: inert unless armed via REPRO_FAULTS
        # or repro.testing.faultinject.inject().
        fail_if_armed("session.submit.error")
        if should_fail("session.slow"):
            import time

            time.sleep(slow_seconds())
        # Re-bind the request id here: the batcher hands work to its
        # own worker thread, so the handler's contextvar binding does
        # not reach this frame -- the id rides the request object.  A
        # request without an id keeps whatever binding is ambient.
        rid = (request.request_id if request.request_id is not None
               else get_request_id())
        with request_context(rid), \
                span("session.submit", mode=request.mode,
                     client=request.client or ""):
            result = self.engine.submit(request)
        if self.metrics is not None:
            self.metrics.counter("session_requests_total",
                                 mode=request.mode).inc()
            self.metrics.observe_timings(result.timing,
                                         mode=request.mode)
        return result

    def diagnose_result(self, result: CampaignResult, top_k: int = 3,
                        metric: str = "ndf",
                        failing_only: bool = True):
        """Match a campaign result against the warm fault dictionary.

        The result must carry packed signatures (submit the request
        with ``keep_signatures=True``).  Returns a
        :class:`repro.diagnosis.DiagnosisResult`.
        """
        return result.diagnose(self.dictionary(), top_k=top_k,
                               failing_only=failing_only,
                               metric=metric)
