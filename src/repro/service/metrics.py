"""Thread-safe in-process metrics: counters, gauges, rolling windows.

The screening service needs observability without dependencies: every
request increments counters (by endpoint, by outcome), gauges track
in-flight work and queue depth, and rolling windows keep the last N
stage timings / batch sizes for latency summaries.  Everything lives
in one :class:`MetricsRegistry` guarded by a single lock -- the
operations are nanosecond-scale against millisecond-scale requests, so
one lock is simpler and plenty.

The registry renders to a Prometheus-style text exposition
(``/metrics``)::

    >>> registry = MetricsRegistry(namespace="repro")
    >>> registry.counter("requests_total", endpoint="campaign").inc()
    >>> registry.window("batch_size").observe(3)
    >>> print(registry.render())   # doctest: +ELLIPSIS
    repro_requests_total{endpoint="campaign"} 1
    repro_batch_size_count 1
    repro_batch_size_sum 3
    ...

Label values are rendered escaped and sorted, so scrapes are stable
across runs.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Dict, Iterable, List, Optional, Tuple

_LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, str]) -> _LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_labels(key: _LabelKey) -> str:
    if not key:
        return ""
    inner = ",".join(
        '%s="%s"' % (name, value.replace("\\", "\\\\")
                     .replace('"', '\\"').replace("\n", "\\n"))
        for name, value in key)
    return "{" + inner + "}"


def _render_value(value: float) -> str:
    # Integers render bare (counter idiom); floats keep full repr so
    # scrapes round-trip.
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


class Counter:
    """Monotonic counter (one labelled series of a counter family)."""

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative)."""
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """Current count."""
        with self._lock:
            return self._value


class Gauge:
    """Set-or-adjust instantaneous value (in-flight, queue depth)."""

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self._value = 0.0

    def set(self, value: float) -> None:
        """Replace the value."""
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Adjust up (or down with a negative amount)."""
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Adjust down."""
        self.inc(-amount)

    @property
    def value(self) -> float:
        """Current value."""
        with self._lock:
            return self._value


class RollingWindow:
    """Last-N observations plus lifetime count/sum.

    Keeps a bounded deque of recent observations (stage timings,
    coalesced batch sizes) so the scrape can report recent min / mean /
    max / last without unbounded memory, alongside lifetime ``count``
    and ``sum`` for rate math on the scraper side.
    """

    def __init__(self, lock: threading.Lock, size: int = 256) -> None:
        if size < 1:
            raise ValueError("window needs room for one observation")
        self._lock = lock
        self._recent: deque = deque(maxlen=int(size))
        self._count = 0
        self._sum = 0.0

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        with self._lock:
            self._recent.append(value)
            self._count += 1
            self._sum += value

    @property
    def count(self) -> int:
        """Lifetime observation count."""
        with self._lock:
            return self._count

    @property
    def total(self) -> float:
        """Lifetime sum."""
        with self._lock:
            return self._sum

    def snapshot(self) -> Dict[str, float]:
        """Stats of the rolling window (empty dict when unobserved)."""
        with self._lock:
            if not self._count:
                return {}
            recent = list(self._recent)
            return {
                "count": float(self._count),
                "sum": self._sum,
                "last": recent[-1],
                "recent_min": min(recent),
                "recent_mean": sum(recent) / len(recent),
                "recent_max": max(recent),
            }


class MetricsRegistry:
    """Namespace of counters, gauges and rolling windows.

    ``counter`` / ``gauge`` / ``window`` get-or-create a series, so
    call sites never pre-register; families are rendered sorted by
    name then labels.  One registry instance backs one server.
    """

    def __init__(self, namespace: str = "repro",
                 window_size: int = 256) -> None:
        self.namespace = str(namespace)
        self.window_size = int(window_size)
        self._lock = threading.Lock()
        self._counters: Dict[Tuple[str, _LabelKey], Counter] = {}
        self._gauges: Dict[Tuple[str, _LabelKey], Gauge] = {}
        self._windows: Dict[Tuple[str, _LabelKey], RollingWindow] = {}
        self._started = time.time()

    # ------------------------------------------------------------------
    def counter(self, name: str, **labels: str) -> Counter:
        """The counter series ``name{labels}`` (created on first use)."""
        key = (str(name), _label_key(labels))
        with self._lock:
            series = self._counters.get(key)
            if series is None:
                series = self._counters[key] = Counter(self._lock)
        return series

    def gauge(self, name: str, **labels: str) -> Gauge:
        """The gauge series ``name{labels}`` (created on first use)."""
        key = (str(name), _label_key(labels))
        with self._lock:
            series = self._gauges.get(key)
            if series is None:
                series = self._gauges[key] = Gauge(self._lock)
        return series

    def window(self, name: str, **labels: str) -> RollingWindow:
        """The rolling window ``name{labels}`` (created on first use)."""
        key = (str(name), _label_key(labels))
        with self._lock:
            series = self._windows.get(key)
            if series is None:
                series = self._windows[key] = RollingWindow(
                    self._lock, self.window_size)
        return series

    def observe_timings(self, timing: Dict[str, float],
                        **labels: str) -> None:
        """Record an engine result's per-stage timing dict.

        Each stage becomes one ``stage_seconds`` window labelled by
        stage name (plus any extra labels, e.g. the endpoint).
        """
        for stage, seconds in timing.items():
            self.window("stage_seconds", stage=stage,
                        **labels).observe(seconds)

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Plain-dict view of every series (tests, JSON health)."""
        with self._lock:
            counters = {name + _render_labels(labels): series._value
                        for (name, labels), series
                        in self._counters.items()}
            gauges = {name + _render_labels(labels): series._value
                      for (name, labels), series in self._gauges.items()}
            window_items = list(self._windows.items())
        windows = {name + _render_labels(labels): series.snapshot()
                   for (name, labels), series in window_items}
        return {"counters": counters, "gauges": gauges,
                "windows": windows}

    def render(self) -> str:
        """Prometheus-style text exposition of every series."""
        prefix = self.namespace + "_" if self.namespace else ""
        lines: List[str] = []

        def emit(kind: Iterable[Tuple[Tuple[str, _LabelKey], float]],
                 suffix: str = "") -> None:
            for (name, labels), value in sorted(kind,
                                                key=lambda kv: kv[0]):
                lines.append(f"{prefix}{name}{suffix}"
                             f"{_render_labels(labels)} "
                             f"{_render_value(value)}")

        with self._lock:
            counter_rows = [(key, series._value)
                            for key, series in self._counters.items()]
            gauge_rows = [(key, series._value)
                          for key, series in self._gauges.items()]
            window_keys = list(self._windows.items())
        emit(counter_rows)
        emit(gauge_rows)
        window_rows: List[Tuple[Tuple[str, _LabelKey], Dict]] = sorted(
            ((key, series.snapshot()) for key, series in window_keys),
            key=lambda kv: kv[0])
        for (name, labels), stats in window_rows:
            for stat, value in stats.items():
                lines.append(f"{prefix}{name}_{stat}"
                             f"{_render_labels(labels)} "
                             f"{_render_value(value)}")
        lines.append(f"{prefix}uptime_seconds "
                     f"{_render_value(time.time() - self._started)}")
        return "\n".join(lines) + "\n"


def timed(window: RollingWindow):
    """Context manager observing a block's wall-clock seconds."""
    return _Timer(window)


class _Timer:
    def __init__(self, window: RollingWindow) -> None:
        self._window = window
        self._start: Optional[float] = None

    def __enter__(self) -> "_Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._window.observe(time.perf_counter() - self._start)
