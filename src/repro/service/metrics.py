"""Compatibility re-export: the registry moved to :mod:`repro.obs.metrics`.

The metrics registry started life here in the service layer (PR 6) but
the engine, cache, store and checkpoint now record into it whether or
not a server runs, so the implementation lives in ``repro.obs``.
Existing imports (``from repro.service.metrics import MetricsRegistry``
and the ``repro.service`` package re-exports) keep working through
this shim.
"""

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    RollingWindow,
    default_registry,
    record_engine_timings,
    set_default_registry,
    timed,
)

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RollingWindow",
    "default_registry",
    "record_engine_timings",
    "set_default_registry",
    "timed",
]
