"""Minimal stdlib client for the screening service.

``ServiceClient`` wraps :mod:`urllib.request` so scripts, tests and
the CLI can talk to a running ``repro serve`` without any HTTP
dependency::

    client = ServiceClient("http://127.0.0.1:8765", client_id="lineA")
    verdict = client.campaign(kind="mc", dies=50, sigma=0.03, seed=7)
    print(verdict["pass"], "/", verdict["dies"], "dies passed")

Errors come back as :class:`ServiceError` carrying the HTTP status and
the decoded error payload; a 429 additionally exposes ``retry_after``.
Transport-level failures (connection refused/reset, DNS, timeouts)
normalize into :class:`ServiceUnavailable` -- a ``ServiceError`` with
status 0 -- so callers have exactly one exception surface.

Pass a :class:`RetryPolicy` to make the client storm-proof: transient
failures (connection-level, 429, 5xx) retry with exponentially backed
off, jittered delays, honoring the server's 429 ``Retry-After`` hint.
Every POST carries an ``Idempotency-Key`` header the server dedupes,
so a retried lot is never *executed* twice -- the replay returns the
first execution's cached response (see ``docs/service.md``).
"""

from __future__ import annotations

import http.client
import json
import random
import socket
import time
import urllib.error
import urllib.request
import uuid
from dataclasses import dataclass
from typing import Dict, Optional

from repro.obs.logs import log_event
from repro.obs.trace import REQUEST_ID_HEADER, new_request_id

#: Header carrying the client-chosen request identity the server
#: dedupes replayed POSTs on.
IDEMPOTENCY_HEADER = "Idempotency-Key"


class ServiceError(RuntimeError):
    """A non-2xx response from the screening service."""

    def __init__(self, status: int, payload: Dict) -> None:
        message = payload.get("error") if isinstance(payload, dict) \
            else str(payload)
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.payload = payload if isinstance(payload, dict) else {}

    @property
    def retry_after(self) -> Optional[float]:
        """Throttle hint in seconds (429/503 responses), else None."""
        value = self.payload.get("retry_after")
        return float(value) if value is not None else None


class ServiceUnavailable(ServiceError):
    """The service could not be reached at the transport level.

    Connection refused/reset, DNS failure, socket timeout -- anything
    below HTTP.  Reported with status 0 and reason ``unavailable`` so
    the one ``except ServiceError`` callers already write catches it,
    and so :class:`RetryPolicy` treats it as transient.
    """

    def __init__(self, reason: str) -> None:
        super().__init__(0, {"error": "unavailable",
                             "reason": reason})
        self.reason = reason


@dataclass(frozen=True)
class RetryPolicy:
    """When and how the client retries a failed request.

    Retries fire only for *transient* failures -- transport-level
    errors (status 0), 429 throttles and 5xx server errors; any other
    4xx is the caller's bug and raises immediately.  Delays back off
    exponentially (``base_delay * factor**attempt``, capped at
    ``max_delay``) with up to ``jitter`` fractional randomization so
    a fleet of clients does not re-storm in lockstep, and a 429/503
    ``retry_after`` hint acts as a floor -- the server knows its
    drain better than the backoff curve does.

    Attributes
    ----------
    max_attempts:
        Total tries including the first (1 = no retries).
    base_delay, factor, max_delay:
        The exponential backoff curve, in seconds.
    jitter:
        Fraction of each delay added uniformly at random (0 disables;
        tests pin ``rng`` for determinism).
    """

    max_attempts: int = 5
    base_delay: float = 0.05
    factor: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("need at least one attempt")

    def retryable(self, error: ServiceError) -> bool:
        """Transient failures only: transport, throttle, 5xx."""
        return (error.status == 0 or error.status == 429
                or 500 <= error.status < 600)

    def delay(self, attempt: int, error: ServiceError,
              rng: Optional[random.Random] = None) -> float:
        """Sleep before retry number ``attempt + 1`` (0-based)."""
        backoff = min(self.max_delay,
                      self.base_delay * self.factor ** attempt)
        if self.jitter > 0:
            draw = (rng.random() if rng is not None
                    else random.random())
            backoff *= 1.0 + self.jitter * draw
        hint = error.retry_after
        if hint is not None:
            backoff = max(backoff, float(hint))
        return backoff


class ServiceClient:
    """One client identity against one screening service.

    Parameters
    ----------
    base_url, client_id, timeout:
        Where to connect, who to bill the rate-limiter bucket to, and
        the per-request socket timeout.
    retry:
        Optional :class:`RetryPolicy`.  None (default) preserves
        fail-fast semantics: every failure raises on first contact.
    """

    def __init__(self, base_url: str, client_id: str = "default",
                 timeout: float = 120.0,
                 retry: Optional[RetryPolicy] = None) -> None:
        self.base_url = base_url.rstrip("/")
        self.client_id = client_id
        self.timeout = float(timeout)
        self.retry = retry
        #: Request id of the most recent logical request (all of its
        #: retry attempts shared it) -- lets callers join their side
        #: of a story to the server's spans and log lines.
        self.last_request_id: Optional[str] = None
        # Injection points for the robustness tests: deterministic
        # jitter and instant sleeps.
        self._rng: Optional[random.Random] = None
        self._sleep = time.sleep

    # ------------------------------------------------------------------
    def _request_once(self, path: str, payload: Optional[Dict],
                      headers: Dict[str, str]) -> bytes:
        url = self.base_url + path
        data = None
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers = dict(headers)
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(url, data=data,
                                         headers=headers)
        try:
            with urllib.request.urlopen(
                    request, timeout=self.timeout) as response:
                return response.read()
        except urllib.error.HTTPError as error:
            raw = error.read()
            try:
                body = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                body = {"error": raw.decode("utf-8", "replace")}
            raise ServiceError(error.code, body) from None
        except (urllib.error.URLError, ConnectionError, socket.timeout,
                OSError, http.client.HTTPException) as error:
            # One exception surface: transport failures (connection
            # refused/reset, DNS, timeouts) become status-0 errors.
            reason = getattr(error, "reason", None)
            raise ServiceUnavailable(str(reason if reason is not None
                                         else error)) from None

    def _request(self, path: str, payload: Optional[Dict] = None
                 ) -> bytes:
        # One request id per *logical* request: every retry attempt
        # replays the same id, so server-side spans and log lines of
        # the original execution and every replay join on it.
        request_id = new_request_id()
        self.last_request_id = request_id
        headers = {"X-Client": self.client_id,
                   REQUEST_ID_HEADER: request_id}
        if payload is not None:
            # Same story for the idempotency key: the server executes
            # the lot once and answers the replays from its dedup
            # cache.
            headers[IDEMPOTENCY_HEADER] = uuid.uuid4().hex
        attempts = self.retry.max_attempts if self.retry else 1
        for attempt in range(attempts):
            try:
                return self._request_once(path, payload, headers)
            except ServiceError as error:
                final = attempt + 1 >= attempts
                if final or self.retry is None \
                        or not self.retry.retryable(error):
                    raise
                log_event("client.retry", request_id=request_id,
                          path=path, attempt=attempt + 1,
                          status=error.status)
                self._sleep(self.retry.delay(attempt, error,
                                             self._rng))
        raise AssertionError("unreachable")  # pragma: no cover

    def _request_json(self, path: str,
                      payload: Optional[Dict] = None) -> Dict:
        return json.loads(self._request(path, payload).decode("utf-8"))

    # ------------------------------------------------------------------
    def campaign(self, **payload) -> Dict:
        """POST /campaign -- screen one die-lot, return the verdicts."""
        return self._request_json("/campaign", payload)

    def diagnose(self, **payload) -> Dict:
        """POST /diagnose -- screen + dictionary-match failing dies."""
        return self._request_json("/diagnose", payload)

    def healthz(self) -> Dict:
        """GET /healthz -- liveness and warm-state summary."""
        return self._request_json("/healthz")

    def metrics_text(self) -> str:
        """GET /metrics -- the raw text scrape."""
        return self._request("/metrics").decode("utf-8")

    def wait_ready(self, timeout: float = 30.0,
                   interval: float = 0.1) -> Dict:
        """Poll /healthz until the service answers (startup races).

        Not-yet-ready covers more than "nothing is listening":
        transport failures *and* 5xx responses (503 while the session
        warms or drains) keep the poll going; only a healthy answer
        returns, and only a 4xx -- a caller bug, the server *did*
        answer -- raises early.
        """
        deadline = time.monotonic() + timeout
        last: Exception = TimeoutError("service never became ready")
        while time.monotonic() < deadline:
            try:
                return self.healthz()
            except ServiceError as error:
                if 400 <= error.status < 500:
                    raise
                last = error
                time.sleep(interval)
            except (urllib.error.URLError, ConnectionError,
                    socket.timeout) as error:  # pragma: no cover
                last = error
                time.sleep(interval)
        raise TimeoutError(
            f"service at {self.base_url} not ready after {timeout}s "
            f"(last error: {last})")
