"""Minimal stdlib client for the screening service.

``ServiceClient`` wraps :mod:`urllib.request` so scripts, tests and
the CLI can talk to a running ``repro serve`` without any HTTP
dependency::

    client = ServiceClient("http://127.0.0.1:8765", client_id="lineA")
    verdict = client.campaign(kind="mc", dies=50, sigma=0.03, seed=7)
    print(verdict["pass"], "/", verdict["dies"], "dies passed")

Errors come back as :class:`ServiceError` carrying the HTTP status and
the decoded error payload; a 429 additionally exposes ``retry_after``.
"""

from __future__ import annotations

import json
import socket
import time
import urllib.error
import urllib.request
from typing import Dict, Optional


class ServiceError(RuntimeError):
    """A non-2xx response from the screening service."""

    def __init__(self, status: int, payload: Dict) -> None:
        message = payload.get("error") if isinstance(payload, dict) \
            else str(payload)
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.payload = payload if isinstance(payload, dict) else {}

    @property
    def retry_after(self) -> Optional[float]:
        """Throttle hint in seconds (429 responses), else None."""
        value = self.payload.get("retry_after")
        return float(value) if value is not None else None


class ServiceClient:
    """One client identity against one screening service."""

    def __init__(self, base_url: str, client_id: str = "default",
                 timeout: float = 120.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.client_id = client_id
        self.timeout = float(timeout)

    # ------------------------------------------------------------------
    def _request(self, path: str,
                 payload: Optional[Dict] = None) -> bytes:
        url = self.base_url + path
        data = None
        headers = {"X-Client": self.client_id}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(url, data=data,
                                         headers=headers)
        try:
            with urllib.request.urlopen(
                    request, timeout=self.timeout) as response:
                return response.read()
        except urllib.error.HTTPError as error:
            raw = error.read()
            try:
                body = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                body = {"error": raw.decode("utf-8", "replace")}
            raise ServiceError(error.code, body) from None

    def _request_json(self, path: str,
                      payload: Optional[Dict] = None) -> Dict:
        return json.loads(self._request(path, payload).decode("utf-8"))

    # ------------------------------------------------------------------
    def campaign(self, **payload) -> Dict:
        """POST /campaign -- screen one die-lot, return the verdicts."""
        return self._request_json("/campaign", payload)

    def diagnose(self, **payload) -> Dict:
        """POST /diagnose -- screen + dictionary-match failing dies."""
        return self._request_json("/diagnose", payload)

    def healthz(self) -> Dict:
        """GET /healthz -- liveness and warm-state summary."""
        return self._request_json("/healthz")

    def metrics_text(self) -> str:
        """GET /metrics -- the raw text scrape."""
        return self._request("/metrics").decode("utf-8")

    def wait_ready(self, timeout: float = 30.0,
                   interval: float = 0.1) -> Dict:
        """Poll /healthz until the service answers (startup races)."""
        deadline = time.monotonic() + timeout
        last: Exception = TimeoutError("service never became ready")
        while time.monotonic() < deadline:
            try:
                return self.healthz()
            except (urllib.error.URLError, ConnectionError,
                    socket.timeout) as error:
                last = error
                time.sleep(interval)
        raise TimeoutError(
            f"service at {self.base_url} not ready after {timeout}s "
            f"(last error: {last})")
