"""Baselines the paper positions itself against.

* :mod:`repro.baselines.straight_zoning` -- straight-line X-Y zoning
  (prior work [12], [13]) for the boundary-shape ablation
* :mod:`repro.baselines.regression_test` -- alternate-test style
  regression from signatures to parameter deviations ([10], [11], [14])
"""

from repro.baselines.straight_zoning import (
    fit_line_to_boundary,
    fitted_line_bank,
    fitted_line_encoder,
    grid_line_bank,
    grid_line_encoder,
)
from repro.baselines.regression_test import (
    RegressionModel,
    RegressionTester,
    dwell_vector,
)

__all__ = [
    "fit_line_to_boundary",
    "fitted_line_bank",
    "fitted_line_encoder",
    "grid_line_bank",
    "grid_line_encoder",
    "RegressionModel",
    "RegressionTester",
    "dwell_vector",
]
