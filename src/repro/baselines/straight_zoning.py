"""Straight-line X-Y zoning: the prior-work baseline ([12], [13]).

Before the nonlinear monitor, X-Y zoning divided the plane with
straight lines implemented by "weighted adders and comparators".  This
module provides two line banks for the boundary-shape ablation:

* :func:`fitted_line_bank` -- each Table I curve replaced by its
  least-squares straight-line fit, i.e. the best linear monitor a
  designer could substitute for the nonlinear one.  This isolates the
  effect of boundary *shape* with placement held fair.
* :func:`grid_line_bank` -- axis-parallel partitions, the simplest
  classic zoning.

Both return :class:`repro.core.boundaries.LinearBoundary` lists usable
as drop-in zone encoders; the ablation benchmark compares NDF sweeps
and small-deviation sensitivity against the nonlinear bank.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.boundaries import Boundary, LinearBoundary
from repro.core.zones import ZoneEncoder
from repro.monitor.boundary_extract import extract_locus


def fit_line_to_boundary(boundary: Boundary,
                         window: Tuple[float, float] = (0.0, 1.0),
                         points: int = 201) -> Optional[LinearBoundary]:
    """Least-squares line through a boundary's extracted locus.

    Returns None when the locus does not cross the window.  The line
    keeps the original boundary's origin-side orientation so the bit
    convention is preserved.
    """
    xs, ys = extract_locus(boundary, window, points)
    valid = ~np.isnan(ys)
    if np.count_nonzero(valid) < 2:
        return None
    xv, yv = xs[valid], ys[valid]
    # Fit y = m x + b; for near-vertical loci fit x = m' y + b' instead.
    spread_x = float(np.ptp(xv))
    spread_y = float(np.ptp(yv))
    name = boundary.name + "-line"
    if spread_x >= 0.25 * spread_y:
        m, b = np.polyfit(xv, yv, 1)
        # Line: y - m x - b = 0 -> a=-m, b=1, c=-b.
        line = LinearBoundary(name, -m, 1.0, -b)
    else:
        m, b = np.polyfit(yv, xv, 1)
        line = LinearBoundary(name, 1.0, -m, -b)
    return _orient_like(line, boundary, window)


def _orient_like(line: LinearBoundary, original: Boundary,
                 window: Tuple[float, float]) -> LinearBoundary:
    """Give ``line`` the same bit orientation as ``original``.

    Probes window points off the line and checks whether the two
    boundaries agree on the majority side assignment; if they disagree,
    the line's coefficients are negated (which flips its decision sign)
    and a matching reference point is attached when needed.
    """
    lo, hi = window
    probes = [(x, y) for x in np.linspace(lo + 0.05, hi - 0.05, 5)
              for y in np.linspace(lo + 0.05, hi - 0.05, 5)]
    agree = 0
    total = 0
    for x, y in probes:
        try:
            b_orig = original.bit(x, y)
        except ValueError:
            continue
        g = line.decision(x, y)
        if abs(g) < 1e-6:
            continue
        total += 1
        # Tentatively orient with the origin convention of the line as
        # built; count agreement of raw decision signs with original bit.
        agree += int((g > 0) == bool(b_orig))
    if total == 0:
        return line
    positive_means_one = agree >= total / 2
    # LinearBoundary.bit returns 1 where sign differs from the origin
    # side; pick a reference point on the "0" side to pin orientation.
    ref = _point_with_sign(line, window,
                           negative=positive_means_one)
    return LinearBoundary(line.name, line.a, line.b, line.c,
                          reference_point=ref)


def _point_with_sign(line: LinearBoundary, window: Tuple[float, float],
                     negative: bool) -> Tuple[float, float]:
    """A window point where the line's decision has the requested sign."""
    lo, hi = window
    for x in np.linspace(lo, hi, 13):
        for y in np.linspace(lo, hi, 13):
            g = line.decision(x, y)
            if negative and g < -1e-9:
                return (x, y)
            if not negative and g > 1e-9:
                return (x, y)
    raise ValueError("line does not split the window")


def fitted_line_bank(bank: Sequence[Boundary],
                     window: Tuple[float, float] = (0.0, 1.0)
                     ) -> List[LinearBoundary]:
    """Straight-line fits of a nonlinear bank, same order/orientation."""
    lines = []
    for boundary in bank:
        line = fit_line_to_boundary(boundary, window)
        if line is None:
            raise ValueError(
                f"boundary {boundary.name!r} has no locus in the window")
        lines.append(line)
    return lines


def fitted_line_encoder(bank: Sequence[Boundary],
                        window: Tuple[float, float] = (0.0, 1.0)
                        ) -> ZoneEncoder:
    """Zone encoder over the straight-line fits."""
    return ZoneEncoder(fitted_line_bank(bank, window))


def grid_line_bank(num_vertical: int = 3, num_horizontal: int = 3,
                   window: Tuple[float, float] = (0.0, 1.0)
                   ) -> List[LinearBoundary]:
    """Axis-parallel partition lines (the simplest classic zoning)."""
    lo, hi = window
    lines: List[LinearBoundary] = []
    xs = np.linspace(lo, hi, num_vertical + 2)[1:-1]
    ys = np.linspace(lo, hi, num_horizontal + 2)[1:-1]
    for i, x0 in enumerate(xs):
        lines.append(LinearBoundary.vertical(f"v{i + 1}", float(x0)))
    for i, y0 in enumerate(ys):
        lines.append(LinearBoundary.horizontal(f"h{i + 1}", float(y0)))
    return lines


def grid_line_encoder(num_vertical: int = 3, num_horizontal: int = 3,
                      window: Tuple[float, float] = (0.0, 1.0)
                      ) -> ZoneEncoder:
    """Zone encoder over an axis-parallel grid partition."""
    return ZoneEncoder(grid_line_bank(num_vertical, num_horizontal, window))
