"""Alternate-test baseline: regress the parameter from the signature.

The paper cites alternate test ([10], [11]) and regression on Lissajous
signatures ([14]) as the neighbouring methodology: map easy-to-measure
indicators to circuit specifications by regression.  This module
implements that baseline on top of the digital signature so the
comparison benchmark can put the NDF band test side by side with a
regression-based verdict:

* features: the per-zone dwell-time vector of the signature over a
  fixed zone dictionary (plus the zone-visit count);
* model: ridge-regularized linear least squares (scipy), mapping
  features -> the parameter deviation;
* decision: |predicted deviation| <= tolerance.

The regression predicts *where* the parameter sits (diagnosis), which
the NDF alone does not; the NDF in exchange needs no training sweep
beyond one golden unit.  The benchmark quantifies both sides.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np
from scipy import linalg as _linalg

from repro.core.signature import Signature


def dwell_vector(signature: Signature,
                 dictionary: Sequence[int]) -> np.ndarray:
    """Per-zone dwell times (fractions of the period) over a dictionary.

    Zones absent from the signature contribute 0; dwell of codes not in
    the dictionary is accumulated in a trailing overflow slot so the
    vector always sums to 1.
    """
    index = {code: i for i, code in enumerate(dictionary)}
    out = np.zeros(len(dictionary) + 1)
    for entry in signature:
        slot = index.get(entry.code, len(dictionary))
        out[slot] += entry.duration
    return out / signature.period


@dataclass
class RegressionModel:
    """Fitted ridge regression from dwell features to deviation."""

    dictionary: Tuple[int, ...]
    weights: np.ndarray
    intercept: float
    training_residual_rms: float

    def features(self, signature: Signature) -> np.ndarray:
        """Feature vector of one signature."""
        dwell = dwell_vector(signature, self.dictionary)
        return np.concatenate([dwell, [len(signature) / 100.0]])

    def predict(self, signature: Signature) -> float:
        """Estimated parameter deviation for one signature."""
        return float(self.features(signature) @ self.weights
                     + self.intercept)


class RegressionTester:
    """Alternate-test flow: train on a sweep, predict deviations.

    Parameters
    ----------
    ridge:
        Tikhonov regularization weight; the dwell features are heavily
        collinear (they sum to one), so a small ridge keeps the solve
        stable.
    """

    def __init__(self, ridge: float = 1e-6) -> None:
        self.ridge = float(ridge)
        self.model: Optional[RegressionModel] = None

    # ------------------------------------------------------------------
    def fit(self, deviations: Sequence[float],
            signatures: Sequence[Signature]) -> RegressionModel:
        """Train the deviation regressor on (deviation, signature) pairs."""
        if len(deviations) != len(signatures):
            raise ValueError("need one deviation per signature")
        if len(deviations) < 4:
            raise ValueError("training sweep too small")
        dictionary = tuple(sorted(set().union(
            *(s.distinct_codes() for s in signatures))))
        rows = []
        for s in signatures:
            dwell = dwell_vector(s, dictionary)
            rows.append(np.concatenate([dwell, [len(s) / 100.0]]))
        phi = np.asarray(rows)
        y = np.asarray(deviations, dtype=float)
        # Center for a free intercept.
        phi_mean = phi.mean(axis=0)
        y_mean = float(y.mean())
        a = phi - phi_mean
        g = a.T @ a + self.ridge * np.eye(a.shape[1])
        w = _linalg.solve(g, a.T @ (y - y_mean), assume_a="pos")
        intercept = y_mean - float(phi_mean @ w)
        residuals = phi @ w + intercept - y
        model = RegressionModel(dictionary, w, intercept,
                                float(np.sqrt(np.mean(residuals ** 2))))
        self.model = model
        return model

    # ------------------------------------------------------------------
    def predict(self, signature: Signature) -> float:
        """Estimated deviation (requires a fitted model)."""
        if self.model is None:
            raise RuntimeError("call fit() first")
        return self.model.predict(signature)

    def decide(self, signature: Signature, tolerance: float) -> bool:
        """PASS when the predicted |deviation| is inside the tolerance."""
        return abs(self.predict(signature)) <= tolerance

    def prediction_errors(self, deviations: Sequence[float],
                          signatures: Sequence[Signature]) -> np.ndarray:
        """Out-of-sample prediction errors on a labelled set."""
        return np.asarray([self.predict(s) - d
                           for d, s in zip(deviations, signatures)])
