"""Lissajous composition of two signals (the X-Y oscilloscope view).

"In the X-Y zone testing method, signal monitoring is based on the
composition of two circuit signals, x(t) and y(t), in a similar way as
an oscilloscope in X-Y mode represents the trace on the screen."

A :class:`LissajousTrace` stores the two aligned waveforms plus the
common period, provides the (x, y) point cloud for zone encoding, and
offers closure/periodicity diagnostics used by the property tests.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

from repro.signals.multitone import Multitone
from repro.signals.waveform import Waveform


class LissajousTrace:
    """Two aligned waveforms interpreted as a parametric plane curve.

    Parameters
    ----------
    x, y:
        The composed signals; they must share the same time base.
    period:
        The common period of the composition.  When omitted, the full
        waveform duration is assumed to be exactly one period.
    """

    def __init__(self, x: Waveform, y: Waveform,
                 period: Optional[float] = None) -> None:
        if not np.array_equal(x.times, y.times):
            raise ValueError("x and y must share the same time base")
        self.x = x
        self.y = y
        self.period = float(period) if period is not None else x.duration

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_multitones(cls, x_signal: Multitone, y_signal: Multitone,
                        samples_per_period: int = 4096) -> "LissajousTrace":
        """Sample one exact common period of two multitone signals."""
        period_x = x_signal.period()
        period_y = y_signal.period()
        period = max(period_x, period_y)
        if abs(period_x - period_y) > 1e-12 * period:
            raise ValueError(
                "x and y multitones do not share a common period; "
                f"got {period_x} vs {period_y}")
        x = Waveform.from_function(x_signal, period, samples_per_period)
        y = Waveform.from_function(y_signal, period, samples_per_period)
        return cls(x, y, period)

    @classmethod
    def from_functions(cls, x_func: Callable, y_func: Callable,
                       period: float,
                       samples_per_period: int = 4096) -> "LissajousTrace":
        """Sample one period of two time-domain callables."""
        x = Waveform.from_function(x_func, period, samples_per_period)
        y = Waveform.from_function(y_func, period, samples_per_period)
        return cls(x, y, period)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    @property
    def times(self) -> np.ndarray:
        """Shared time base."""
        return self.x.times

    def points(self) -> Tuple[np.ndarray, np.ndarray]:
        """The (x, y) arrays tracing the curve."""
        return self.x.values, self.y.values

    def point_at(self, t: float) -> Tuple[float, float]:
        """Interpolated curve point at time ``t`` (wrapped into period)."""
        tau = float(t) % self.period
        return self.x.value_at(tau), self.y.value_at(tau)

    def __len__(self) -> int:
        return len(self.x)

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    def closure_error(self) -> float:
        """Distance between the curve end and start, extrapolated one step.

        For an exactly periodic composition sampled on [0, T) the point
        at T equals the point at 0; the error reported here is the gap
        between the first sample and the wrap of the last sample --
        small for truly periodic signals, large if the period is wrong.
        """
        # Predict the wrap point by linear extrapolation of the last edge.
        x_wrap = self.x.values[-1] + (self.x.values[-1] - self.x.values[-2])
        y_wrap = self.y.values[-1] + (self.y.values[-1] - self.y.values[-2])
        gap = np.hypot(x_wrap - self.x.values[0], y_wrap - self.y.values[0])
        scale = max(self.x.peak_to_peak(), self.y.peak_to_peak(), 1e-12)
        # Normalize by the typical single-step motion of the trace.
        step = np.median(np.hypot(np.diff(self.x.values),
                                  np.diff(self.y.values)))
        return float(gap / max(scale * 1e-3, step, 1e-12))

    def bounding_box(self) -> Tuple[float, float, float, float]:
        """(xmin, xmax, ymin, ymax) of the trace."""
        return (float(np.min(self.x.values)), float(np.max(self.x.values)),
                float(np.min(self.y.values)), float(np.max(self.y.values)))

    def stays_within(self, lo: float, hi: float) -> bool:
        """True if both coordinates stay inside [lo, hi] (the 0-1 V window)."""
        xmin, xmax, ymin, ymax = self.bounding_box()
        return xmin >= lo and xmax <= hi and ymin >= lo and ymax <= hi

    def ascii_plot(self, width: int = 61, height: int = 25,
                   lo: float = 0.0, hi: float = 1.0) -> str:
        """Coarse ASCII rendering of the curve (for bench reports)."""
        grid = [[" "] * width for _ in range(height)]
        xs, ys = self.points()
        for x, y in zip(xs, ys):
            col = int((x - lo) / (hi - lo) * (width - 1) + 0.5)
            row = int((y - lo) / (hi - lo) * (height - 1) + 0.5)
            if 0 <= col < width and 0 <= row < height:
                grid[height - 1 - row][col] = "*"
        return "\n".join("".join(row) for row in grid)
