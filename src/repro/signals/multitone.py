"""Multitone stimuli with exact rational periods and LTI propagation.

The paper drives the Biquad CUT with a multitone input so that the
composition of input and output traces a closed Lissajous curve: "If the
frequency ratio of the periodic signals is rational, the resultant curve
is also periodic".  This module provides:

* :class:`Tone` / :class:`Multitone` -- sums of sinusoids plus a DC
  offset, evaluable at arbitrary times;
* exact common-period computation through :class:`fractions.Fraction`,
  so the signature's "one period" is not polluted by floating-point
  drift;
* :meth:`Multitone.through` -- the *exact* steady-state response of an
  LTI system, obtained by scaling each tone by ``|H(j w)|`` and adding
  ``arg H(j w)`` to its phase (DC maps through ``H(0)``).  This is the
  behavioural Biquad path used by most experiments; the structural
  netlist validates it in the integration tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, List, Sequence, Tuple

import numpy as np

from repro.signals.waveform import Waveform


def _as_fraction(freq_hz: float, max_denominator: int = 10 ** 9) -> Fraction:
    """Rational representation of a frequency for period arithmetic."""
    if freq_hz <= 0:
        raise ValueError("tone frequencies must be positive")
    return Fraction(freq_hz).limit_denominator(max_denominator)


@dataclass(frozen=True)
class Tone:
    """One sinusoidal component ``a * sin(2 pi f t + phase)``."""

    freq_hz: float
    amplitude: float
    phase_deg: float = 0.0

    def __post_init__(self) -> None:
        if self.freq_hz <= 0:
            raise ValueError("tone frequency must be positive")

    @property
    def phase_rad(self) -> float:
        """Phase in radians."""
        return math.radians(self.phase_deg)

    def evaluate(self, t):
        """Tone value at time(s) ``t``."""
        t = np.asarray(t, dtype=float)
        out = self.amplitude * np.sin(2.0 * math.pi * self.freq_hz * t
                                      + self.phase_rad)
        if out.ndim == 0:
            return float(out)
        return out


class Multitone:
    """A DC offset plus a sum of sinusoidal tones.

    Instances are callable (``stimulus(t)``) so they plug directly into
    :class:`repro.circuits.components.VoltageSource`.

    Parameters
    ----------
    tones:
        The sinusoidal components.
    offset:
        DC offset in volts (the paper biases signals to mid-supply so
        the Lissajous lives in the 0-1 V window).
    """

    def __init__(self, tones: Sequence[Tone], offset: float = 0.0) -> None:
        if not tones:
            raise ValueError("a multitone needs at least one tone")
        self.tones: Tuple[Tone, ...] = tuple(tones)
        self.offset = float(offset)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def __call__(self, t):
        """Signal value at time(s) ``t``."""
        t_arr = np.asarray(t, dtype=float)
        total = np.full(t_arr.shape, self.offset, dtype=float)
        for tone in self.tones:
            total = total + tone.evaluate(t_arr)
        if t_arr.ndim == 0:
            return float(total)
        return total

    # ------------------------------------------------------------------
    # Periodicity
    # ------------------------------------------------------------------
    def fundamental_frequency(self) -> float:
        """GCD of the tone frequencies (hertz), computed exactly.

        This is the reciprocal of the signature period T used by the
        NDF integral.
        """
        fracs = [_as_fraction(tone.freq_hz) for tone in self.tones]
        gcd = fracs[0]
        for frac in fracs[1:]:
            gcd = Fraction(math.gcd(gcd.numerator * frac.denominator,
                                    frac.numerator * gcd.denominator),
                           gcd.denominator * frac.denominator)
        return float(gcd)

    def period(self) -> float:
        """Common period of all tones, in seconds."""
        return 1.0 / self.fundamental_frequency()

    def harmonic_indices(self) -> List[int]:
        """Each tone's frequency as an integer multiple of the fundamental."""
        f0 = self.fundamental_frequency()
        indices = []
        for tone in self.tones:
            ratio = tone.freq_hz / f0
            index = int(round(ratio))
            if abs(ratio - index) > 1e-6:
                raise ValueError(
                    f"tone at {tone.freq_hz} Hz is not harmonically related")
            indices.append(index)
        return indices

    # ------------------------------------------------------------------
    # Derived signals
    # ------------------------------------------------------------------
    def amplitude_bound(self) -> float:
        """Upper bound of |signal - offset| (sum of amplitudes)."""
        return float(sum(abs(tone.amplitude) for tone in self.tones))

    def through(self, transfer: Callable[[float], complex]) -> "Multitone":
        """Exact steady-state of this stimulus through an LTI system.

        ``transfer`` maps a frequency in hertz to the complex gain
        ``H(j 2 pi f)``; it is also evaluated at 0 Hz for the offset.
        Each tone's amplitude is scaled by ``|H|`` and its phase advanced
        by ``arg H``.
        """
        new_tones = []
        for tone in self.tones:
            h = complex(transfer(tone.freq_hz))
            new_tones.append(Tone(tone.freq_hz,
                                  tone.amplitude * abs(h),
                                  tone.phase_deg + math.degrees(np.angle(h))))
        h0 = complex(transfer(0.0))
        # Structural models evaluate "DC" at a small positive frequency,
        # leaving a tiny imaginary residue; tolerate that, reject a
        # genuinely complex DC gain.
        if abs(h0.imag) > 1e-6 * max(abs(h0.real), 1.0):
            raise ValueError("transfer function is not real at DC")
        return Multitone(new_tones, self.offset * h0.real)

    def scaled(self, factor: float) -> "Multitone":
        """AC-scale the stimulus (offset untouched)."""
        return Multitone([Tone(t.freq_hz, t.amplitude * factor, t.phase_deg)
                          for t in self.tones], self.offset)

    def with_offset(self, offset: float) -> "Multitone":
        """Copy with a different DC offset."""
        return Multitone(self.tones, offset)

    def sample(self, samples_per_period: int = 4096,
               periods: int = 1, t_start: float = 0.0) -> Waveform:
        """Uniformly sample whole periods into a :class:`Waveform`.

        The endpoint is excluded so ``periods`` periods tile seamlessly.
        """
        if samples_per_period < 2:
            raise ValueError("need at least 2 samples per period")
        if periods < 1:
            raise ValueError("periods must be >= 1")
        t_len = self.period() * periods
        n = samples_per_period * periods
        return Waveform.from_function(self, t_start + t_len, n,
                                      t_start=t_start)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tones = ", ".join(f"{t.amplitude:g}V@{t.freq_hz:g}Hz"
                          for t in self.tones)
        return f"<Multitone offset={self.offset:g}V tones=[{tones}]>"


def two_tone(f1_hz: float, f2_hz: float, a1: float, a2: float,
             offset: float = 0.0, phase1_deg: float = 0.0,
             phase2_deg: float = 0.0) -> Multitone:
    """Convenience constructor for the common two-tone stimulus."""
    return Multitone([Tone(f1_hz, a1, phase1_deg),
                      Tone(f2_hz, a2, phase2_deg)], offset)
