"""Coherent spectral analysis of periodic waveforms.

The stimuli are exactly periodic multitones, so spectral estimates need
no windowing: a DFT over an integer number of periods is exact at the
harmonic bins.  Used to validate the Biquad response tone by tone, to
derive alternate-test features, and to quantify distortion introduced
by non-ideal capture paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.signals.waveform import Waveform


@dataclass
class HarmonicSpectrum:
    """One-sided harmonic spectrum of a periodic waveform.

    ``amplitudes[k]`` is the peak amplitude of harmonic k of the
    fundamental (k = 0 is the DC component), ``phases_deg[k]`` its
    phase referred to a sine basis: ``a_k sin(2 pi k f0 t + phi_k)``.
    """

    fundamental_hz: float
    amplitudes: np.ndarray
    phases_deg: np.ndarray

    def amplitude(self, harmonic: int) -> float:
        """Peak amplitude of one harmonic (0 = DC)."""
        return float(self.amplitudes[harmonic])

    def phase_deg(self, harmonic: int) -> float:
        """Sine-referred phase of one harmonic in degrees."""
        return float(self.phases_deg[harmonic])

    def total_harmonic_distortion(self, fundamental: int = 1) -> float:
        """THD relative to the given fundamental harmonic.

        Ratio of the RMS of all other non-DC harmonics to the
        fundamental's amplitude.
        """
        a = self.amplitudes
        others = np.concatenate([a[1:fundamental], a[fundamental + 1:]])
        if a[fundamental] == 0.0:
            return float("inf")
        return float(np.sqrt(np.sum(others ** 2)) / a[fundamental])

    def dominant_harmonics(self, count: int = 3) -> Sequence[int]:
        """Indices of the strongest non-DC harmonics."""
        order = np.argsort(self.amplitudes[1:])[::-1] + 1
        return [int(k) for k in order[:count]]


def harmonic_spectrum(waveform: Waveform,
                      period: float = None) -> HarmonicSpectrum:
    """Exact harmonic decomposition of one (or more) waveform periods.

    Parameters
    ----------
    waveform:
        Uniformly sampled waveform spanning an integer number of
        periods with the endpoint excluded (the library convention).
    period:
        The fundamental period; defaults to the full span
        ``duration + dt`` (one period).
    """
    if not waveform.is_uniform(rtol=1e-6):
        raise ValueError("harmonic analysis needs uniform sampling")
    n = len(waveform)
    dt = waveform.sample_interval
    span = n * dt
    if period is None:
        period = span
    cycles = span / period
    if abs(cycles - round(cycles)) > 1e-6:
        raise ValueError(
            f"waveform spans {cycles:.4f} periods; need an integer")
    cycles = int(round(cycles))
    spectrum = np.fft.rfft(waveform.values) / n
    # Harmonic k of the fundamental sits at FFT bin k * cycles.
    num_harmonics = (n // 2) // cycles
    amplitudes = np.zeros(num_harmonics + 1)
    phases = np.zeros(num_harmonics + 1)
    amplitudes[0] = spectrum[0].real
    for k in range(1, num_harmonics + 1):
        c = spectrum[k * cycles]
        amplitudes[k] = 2.0 * abs(c)
        # exp convention -> sine convention: a cos(wt + p) =
        # a sin(wt + p + 90 deg).
        phases[k] = np.degrees(np.angle(c)) + 90.0
    phases = (phases + 180.0) % 360.0 - 180.0
    return HarmonicSpectrum(1.0 / period, amplitudes, phases)


def tone_table(waveform: Waveform, period: float = None,
               threshold: float = 1e-6) -> Dict[float, Tuple[float, float]]:
    """{frequency: (amplitude, phase_deg)} for all significant harmonics."""
    spec = harmonic_spectrum(waveform, period)
    table = {}
    for k in range(1, len(spec.amplitudes)):
        if spec.amplitudes[k] > threshold:
            table[k * spec.fundamental_hz] = (spec.amplitudes[k],
                                              spec.phases_deg[k])
    return table
