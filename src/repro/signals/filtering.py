"""Monitor front-end band limiting.

The paper's noise study superimposes *high-frequency* white noise on
the composed signals; a physical monitor front-end (pad, routing, the
comparator's input pole) is band-limited and averages such noise down.
:class:`BandLimiter` models that with a single real pole, applied
identically to clean and noisy captures so the systematic trace delay
cancels in the NDF comparison.

The noise benchmark shows the effect reproduced from the paper: with a
100-200 kHz input pole and the quoted 3-sigma = 0.015 V noise, +-1 %
deviations of the Biquad's natural frequency remain detectable.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
from scipy import signal as _signal

from repro.signals.lissajous import LissajousTrace
from repro.signals.waveform import Waveform


class BandLimiter:
    """Single-pole low-pass applied to sampled waveforms.

    Parameters
    ----------
    cutoff_hz:
        The -3 dB pole frequency.  Must sit far above the stimulus
        tones (so the Lissajous shape is preserved) and far below the
        sampling Nyquist (so HF noise is attenuated).
    """

    def __init__(self, cutoff_hz: float) -> None:
        if cutoff_hz <= 0:
            raise ValueError("cutoff must be positive")
        self.cutoff_hz = float(cutoff_hz)

    def apply(self, waveform: Waveform) -> Waveform:
        """Filtered copy of one waveform (causal, steady-state start)."""
        if not waveform.is_uniform(rtol=1e-6):
            raise ValueError("band limiting needs a uniform time base")
        dt = waveform.sample_interval
        a = float(np.exp(-2.0 * np.pi * self.cutoff_hz * dt))
        b = [1.0 - a]
        denom = [1.0, -a]
        # Start the IIR from steady state at the first sample value so
        # the filter does not inject a start-up transient into the
        # periodic trace.
        zi = _signal.lfiltic(b, denom, [waveform.values[0]],
                             [waveform.values[0]])
        values, _ = _signal.lfilter(b, denom, waveform.values, zi=zi)
        return Waveform(waveform.times, values)

    def apply_pair(self, x: Waveform, y: Waveform) -> Tuple[Waveform, Waveform]:
        """Filter both composed signals."""
        return self.apply(x), self.apply(y)

    def apply_trace(self, trace: LissajousTrace) -> LissajousTrace:
        """Filter both channels of a Lissajous trace."""
        x, y = self.apply_pair(trace.x, trace.y)
        return LissajousTrace(x, y, trace.period)

    def group_delay(self) -> float:
        """Low-frequency group delay of the pole, in seconds.

        The same delay applies to golden and CUT captures, so it
        cancels in the NDF; exposed for the tests that verify that.
        """
        return 1.0 / (2.0 * np.pi * self.cutoff_hz)
