"""Signal generation and composition for X-Y zone testing.

* :mod:`repro.signals.waveform` -- sampled-signal container and algebra
* :mod:`repro.signals.multitone` -- multitone stimuli, exact periods,
  exact LTI steady-state propagation
* :mod:`repro.signals.noise` -- the paper's white measurement noise
* :mod:`repro.signals.lissajous` -- X-Y composition (Lissajous curves)
"""

from repro.signals.waveform import Waveform
from repro.signals.multitone import Multitone, Tone, two_tone
from repro.signals.noise import NoiseModel, PAPER_NOISE_3SIGMA
from repro.signals.lissajous import LissajousTrace
from repro.signals.filtering import BandLimiter
from repro.signals.spectrum import HarmonicSpectrum, harmonic_spectrum, tone_table

__all__ = [
    "HarmonicSpectrum",
    "harmonic_spectrum",
    "tone_table",
    "Waveform",
    "Multitone",
    "Tone",
    "two_tone",
    "NoiseModel",
    "PAPER_NOISE_3SIGMA",
    "LissajousTrace",
    "BandLimiter",
]
