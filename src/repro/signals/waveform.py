"""Sampled waveform container with light algebra.

A :class:`Waveform` is a pair of aligned numpy arrays ``(times, values)``
with helpers for resampling, slicing, arithmetic and interpolation.  It
is the common currency between the circuit simulator
(:class:`repro.circuits.transient.TransientResult`), the behavioural
filter models, and the signature pipeline.
"""

from __future__ import annotations

from typing import Callable, Union

import numpy as np

Number = Union[int, float]


class Waveform:
    """A sampled real-valued signal ``v(t)``.

    Times must be strictly increasing.  Instances behave like value
    types: arithmetic returns new waveforms and operands must share the
    same time base (checked, not resampled implicitly -- silent
    resampling hides alignment bugs in test pipelines).
    """

    __slots__ = ("times", "values")

    def __init__(self, times, values) -> None:
        times = np.asarray(times, dtype=float)
        values = np.asarray(values, dtype=float)
        if times.ndim != 1 or values.ndim != 1:
            raise ValueError("times and values must be 1-D")
        if times.shape != values.shape:
            raise ValueError(
                f"shape mismatch: {times.shape} vs {values.shape}")
        if times.size < 2:
            raise ValueError("a waveform needs at least two samples")
        if np.any(np.diff(times) <= 0):
            raise ValueError("times must be strictly increasing")
        self.times = times
        self.values = values

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_function(cls, func: Callable[[np.ndarray], np.ndarray],
                      t_stop: float, num_samples: int,
                      t_start: float = 0.0) -> "Waveform":
        """Sample ``func`` on a uniform grid of ``num_samples`` points.

        The grid spans ``[t_start, t_stop)`` -- the endpoint is excluded
        so that one period of a periodic signal tiles seamlessly.
        """
        if num_samples < 2:
            raise ValueError("need at least two samples")
        times = t_start + (t_stop - t_start) * np.arange(num_samples) / num_samples
        values = np.asarray(func(times), dtype=float)
        if values.shape != times.shape:
            # Allow scalar-only callables.
            values = np.asarray([float(func(t)) for t in times])
        return cls(times, values)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def duration(self) -> float:
        """Time span covered by the samples."""
        return float(self.times[-1] - self.times[0])

    @property
    def sample_interval(self) -> float:
        """Median sampling interval."""
        return float(np.median(np.diff(self.times)))

    def is_uniform(self, rtol: float = 1e-9) -> bool:
        """True when the time base is uniformly spaced."""
        dt = np.diff(self.times)
        return bool(np.all(np.abs(dt - dt[0]) <= rtol * abs(dt[0])))

    def __len__(self) -> int:
        return int(self.times.size)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def value_at(self, t) -> Union[float, np.ndarray]:
        """Linear interpolation at time(s) ``t``."""
        out = np.interp(t, self.times, self.values)
        if np.ndim(t) == 0:
            return float(out)
        return out

    def resampled(self, new_times) -> "Waveform":
        """Linear-interpolated copy on a new time base."""
        new_times = np.asarray(new_times, dtype=float)
        return Waveform(new_times, np.interp(new_times, self.times,
                                             self.values))

    def sliced(self, t_start: float, t_stop: float) -> "Waveform":
        """Sub-waveform covering [t_start, t_stop]."""
        mask = (self.times >= t_start) & (self.times <= t_stop)
        if np.count_nonzero(mask) < 2:
            raise ValueError("slice contains fewer than two samples")
        return Waveform(self.times[mask], self.values[mask])

    def shifted(self, dt: float) -> "Waveform":
        """Copy with the time base shifted by ``dt``."""
        return Waveform(self.times + dt, self.values)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def mean(self) -> float:
        """Time-weighted mean value (trapezoidal)."""
        return float(np.trapezoid(self.values, self.times) / self.duration)

    def rms(self) -> float:
        """Time-weighted RMS value (trapezoidal)."""
        return float(np.sqrt(np.trapezoid(self.values ** 2, self.times)
                             / self.duration))

    def peak_to_peak(self) -> float:
        """max - min of the samples."""
        return float(np.max(self.values) - np.min(self.values))

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def _check_aligned(self, other: "Waveform") -> None:
        if not np.array_equal(self.times, other.times):
            raise ValueError("waveforms are not on the same time base; "
                             "resample explicitly first")

    def _binary(self, other, op) -> "Waveform":
        if isinstance(other, Waveform):
            self._check_aligned(other)
            return Waveform(self.times, op(self.values, other.values))
        return Waveform(self.times, op(self.values, float(other)))

    def __add__(self, other):
        return self._binary(other, np.add)

    __radd__ = __add__

    def __sub__(self, other):
        return self._binary(other, np.subtract)

    def __rsub__(self, other):
        return Waveform(self.times, float(other) - self.values)

    def __mul__(self, other):
        return self._binary(other, np.multiply)

    __rmul__ = __mul__

    def __neg__(self):
        return Waveform(self.times, -self.values)

    def map(self, func: Callable[[np.ndarray], np.ndarray]) -> "Waveform":
        """Apply an elementwise function to the values."""
        return Waveform(self.times, np.asarray(func(self.values), float))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Waveform {len(self)} samples, "
                f"t=[{self.times[0]:.3g}, {self.times[-1]:.3g}]s>")
