"""Measurement-noise injection.

The paper's robustness study superimposes "high frequency white noise on
the signals with null mean and a 3 sigma spread of 0.015 V" and shows
that 1 % deviations of the Biquad's natural frequency remain detectable.
This module reproduces that noise model: independent zero-mean Gaussian
samples added to each waveform sample, parameterized by the 3-sigma
spread exactly as the paper quotes it.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.signals.waveform import Waveform

#: The paper's quoted noise level: 3 sigma = 0.015 V.
PAPER_NOISE_3SIGMA = 0.015


class NoiseModel:
    """Additive white Gaussian measurement noise.

    Parameters
    ----------
    three_sigma:
        The 3-sigma spread in volts (the paper quotes 0.015 V); the
        per-sample standard deviation is ``three_sigma / 3``.
    rng:
        A :class:`numpy.random.Generator` or an integer seed.
    """

    def __init__(self, three_sigma: float = PAPER_NOISE_3SIGMA,
                 rng: Union[int, np.random.Generator] = 0) -> None:
        if three_sigma < 0:
            raise ValueError("noise spread must be non-negative")
        self.three_sigma = float(three_sigma)
        self.rng = (rng if isinstance(rng, np.random.Generator)
                    else np.random.default_rng(rng))

    @property
    def sigma(self) -> float:
        """Per-sample standard deviation in volts."""
        return self.three_sigma / 3.0

    def samples(self, count: int) -> np.ndarray:
        """Draw ``count`` independent noise samples."""
        if self.three_sigma == 0.0:
            return np.zeros(count)
        return self.rng.normal(0.0, self.sigma, size=count)

    def corrupt(self, waveform: Waveform) -> Waveform:
        """Return a noisy copy of a waveform."""
        return Waveform(waveform.times,
                        waveform.values + self.samples(len(waveform)))

    def corrupt_pair(self, x: Waveform, y: Waveform) -> tuple:
        """Corrupt the two composed signals with independent noise.

        The monitor sees both x(t) and y(t) through analog pads, so each
        channel gets its own noise realization.
        """
        return self.corrupt(x), self.corrupt(y)
