"""The calibrated experimental setup of the paper, frozen as constants.

The paper reports its Biquad/stimulus setup only through its artifacts:
a 200 us signature period (Fig. 7), signals inside the 0-1 V window
(Figs. 1, 4, 6), a 16-zone traversal of the six-bit code map (Fig. 6),
NDF = 0.1021 for a +10 % shift of the natural frequency (Fig. 7), and a
near-linear, near-symmetric NDF-vs-deviation sweep reaching about 0.19
at +-20 % (Fig. 8).  The exact component values and tone set are not
published.

This module pins the reproduction's calibrated equivalents (see
``docs/paper_map.md`` for the full paper-artifact <-> module map):

* stimulus: two tones, 5 kHz (0.26 V) and 15 kHz (0.19 V, +105 deg),
  0.5 V offset -> common period exactly 200 us;
* golden Biquad: low-pass, f0 = 11 kHz, Q = 1.0, unity gain;
* monitors: the six Table I configurations (curve 1 = MSB);
* noise study: 3-sigma = 0.015 V white noise with a 200 kHz monitor
  front-end pole.

With these values the golden Lissajous traverses exactly the sixteen
zone codes printed in Fig. 6, NDF(+10 %) = 0.102, the +10 % chronogram
contains the paper's Hamming-distance-2 excursion, and +-1 % deviations
stay detectable under the quoted noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.capture import AsyncCapture
from repro.core.decision import DecisionBand, ThresholdCalibration
from repro.core.testflow import MeasurementResult, SignatureTester
from repro.core.zones import ZoneEncoder
from repro.filters.biquad import BiquadFilter, BiquadSpec
from repro.monitor.configurations import table1_encoder
from repro.signals.filtering import BandLimiter
from repro.signals.multitone import Multitone, Tone
from repro.signals.noise import NoiseModel, PAPER_NOISE_3SIGMA

#: Calibrated two-tone stimulus: fundamental 5 kHz -> period 200 us.
PAPER_STIMULUS = Multitone(
    [Tone(5e3, 0.26, 0.0), Tone(15e3, 0.19, 105.0)], offset=0.5)

#: Calibrated golden Biquad (low-pass tap observed).
PAPER_BIQUAD = BiquadSpec(f0_hz=11e3, q=1.0, gain=1.0)

#: Monitor front-end pole used in the noise study.
PAPER_INPUT_POLE_HZ = 200e3

#: The sixteen zone codes printed in the paper's Fig. 6.
FIG6_ZONE_CODES = frozenset(
    {0, 1, 4, 5, 12, 13, 20, 28, 30, 37, 45, 47, 60, 61, 62, 63})

#: The NDF the paper reports for a +10 % f0 shift (Fig. 7).
FIG7_NDF_10PCT = 0.1021

#: Default trace sampling density (samples per 200 us period).
PAPER_SAMPLES_PER_PERIOD = 4096


@dataclass
class PaperSetup:
    """One fully wired instance of the paper's test bench.

    Create via :func:`paper_setup`; fields can be swapped for ablations
    (different encoder, capture hardware, noise...).
    """

    encoder: ZoneEncoder
    stimulus: Multitone
    golden_spec: BiquadSpec
    tester: SignatureTester

    # ------------------------------------------------------------------
    # CUT factories
    # ------------------------------------------------------------------
    def golden_filter(self) -> BiquadFilter:
        """The defect-free behavioural CUT."""
        return BiquadFilter(self.golden_spec)

    def deviated_filter(self, f0_fraction: float) -> BiquadFilter:
        """CUT with a relative natural-frequency deviation."""
        return BiquadFilter(self.golden_spec.with_f0_deviation(f0_fraction))

    # ------------------------------------------------------------------
    # Headline measurements
    # ------------------------------------------------------------------
    def test_deviation(self, f0_fraction: float,
                       band: Optional[DecisionBand] = None
                       ) -> MeasurementResult:
        """Measure one deviated CUT against the golden signature."""
        return self.tester.measure(self.deviated_filter(f0_fraction), band)

    def fig8_sweep(self, deviations: Optional[Sequence[float]] = None
                   ) -> ThresholdCalibration:
        """The Fig. 8 NDF-vs-deviation sweep."""
        if deviations is None:
            deviations = np.linspace(-0.20, 0.20, 21)
        return self.tester.sweep_with(list(deviations), self.deviated_filter)

    def noise_model(self, rng=0) -> NoiseModel:
        """The paper's 3-sigma = 0.015 V white noise."""
        return NoiseModel(PAPER_NOISE_3SIGMA, rng=rng)

    def campaign_engine(self, samples_per_period: Optional[int] = None,
                        tolerance: float = 0.05, **kwargs):
        """Batched campaign engine wired to this bench.

        Fleet-scale screening entry point; see
        :class:`repro.campaign.CampaignEngine`.  The sampling density
        defaults to this bench's own tester, so engine NDFs stay
        comparable with per-die measurements on the same setup.
        """
        from repro.campaign import CampaignEngine

        if samples_per_period is None:
            samples_per_period = self.tester.samples_per_period
        return CampaignEngine.from_parts(
            self.encoder, self.stimulus, self.golden_spec,
            samples_per_period=samples_per_period, tolerance=tolerance,
            **kwargs)


def paper_setup(samples_per_period: int = PAPER_SAMPLES_PER_PERIOD,
                refine: bool = True,
                capture: Optional[AsyncCapture] = None,
                noise: Optional[NoiseModel] = None,
                prefilter: Optional[BandLimiter] = None) -> PaperSetup:
    """Build the calibrated paper bench.

    Parameters mirror :class:`repro.core.testflow.SignatureTester`; the
    defaults give the ideal-capture configuration used for Figs. 6-8.
    """
    encoder = table1_encoder()
    tester = SignatureTester(encoder, PAPER_STIMULUS,
                             BiquadFilter(PAPER_BIQUAD),
                             samples_per_period=samples_per_period,
                             refine=refine, capture=capture, noise=noise,
                             prefilter=prefilter)
    return PaperSetup(encoder, PAPER_STIMULUS, PAPER_BIQUAD, tester)


def noisy_paper_setup(rng=0,
                      three_sigma: float = PAPER_NOISE_3SIGMA,
                      pole_hz: float = PAPER_INPUT_POLE_HZ,
                      samples_per_period: int = PAPER_SAMPLES_PER_PERIOD
                      ) -> PaperSetup:
    """Paper bench with the Section IV-C noise configuration.

    The golden signature is captured noise-free but through the same
    front-end pole, exactly as a calibration measurement would be.
    """
    setup = paper_setup(samples_per_period=samples_per_period,
                        prefilter=BandLimiter(pole_hz))
    setup.tester.noise = None  # golden stays clean
    return setup
