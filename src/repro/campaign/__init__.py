"""Batched test campaigns: fleet-scale signature screening.

The per-die objects of :mod:`repro.core` answer "does this unit pass?";
this package answers "what happens when a million units go through the
tester?".  A :class:`CampaignEngine` amortizes golden-signature and
band calibration work through a content-keyed cache, vectorizes the
trace/encode/score hot path over ``(N, samples)`` stacks, and schedules
chunks serially or over a process pool -- with bit-identical verdicts
either way.

Quick start::

    from repro.campaign import CampaignEngine, montecarlo_dies
    from repro.monitor.configurations import table1_encoder
    from repro.paper import PAPER_BIQUAD, PAPER_STIMULUS

    engine = CampaignEngine.from_parts(
        table1_encoder(), PAPER_STIMULUS, PAPER_BIQUAD)
    result = engine.run(montecarlo_dies(PAPER_BIQUAD, 500, 0.03))
    print(result.summary())
"""

from repro.campaign.batch import (
    batch_biquad_traces,
    batch_codes,
    batch_extract,
    batch_multitone_eval,
    batch_ndf,
    batch_netlist_traces,
    batch_responses,
    batch_signatures,
    batch_through_eval,
    sample_times,
    trace_population_ndf,
)
from repro.campaign.cache import (
    CacheInfo,
    GoldenArtifacts,
    GoldenCache,
)
from repro.campaign.checkpoint import (
    CheckpointMismatch,
    StreamCheckpoint,
)
from repro.campaign.engine import (
    DEFAULT_CALIBRATION_DEVIATIONS,
    CampaignConfig,
    CampaignEngine,
)
from repro.campaign.request import ScreeningRequest
from repro.campaign.executors import (
    ProcessPoolExecutor,
    SerialExecutor,
    SharedArrayHandle,
    SharedMemoryExecutor,
    attach_shared_array,
    chunked,
)
from repro.campaign.result import CampaignResult, NoiseCampaignResult
from repro.campaign.scenarios import (
    CutListPopulation,
    EncoderPopulation,
    SpecPopulation,
    TracePopulation,
    deviation_sweep_population,
    fault_dictionary,
    montecarlo_dies,
    montecarlo_monitor_banks,
    parameter_grid,
    seed_children,
    stream_montecarlo_dies,
    temperature_corners,
    trace_population,
)

__all__ = [
    "CheckpointMismatch",
    "StreamCheckpoint",
    "seed_children",
    "batch_biquad_traces",
    "batch_codes",
    "batch_extract",
    "batch_multitone_eval",
    "batch_ndf",
    "batch_netlist_traces",
    "batch_responses",
    "batch_signatures",
    "batch_through_eval",
    "sample_times",
    "trace_population_ndf",
    "CacheInfo",
    "GoldenArtifacts",
    "GoldenCache",
    "DEFAULT_CALIBRATION_DEVIATIONS",
    "CampaignConfig",
    "CampaignEngine",
    "ScreeningRequest",
    "ProcessPoolExecutor",
    "SerialExecutor",
    "SharedArrayHandle",
    "SharedMemoryExecutor",
    "attach_shared_array",
    "chunked",
    "CampaignResult",
    "NoiseCampaignResult",
    "CutListPopulation",
    "EncoderPopulation",
    "SpecPopulation",
    "TracePopulation",
    "deviation_sweep_population",
    "fault_dictionary",
    "montecarlo_dies",
    "montecarlo_monitor_banks",
    "parameter_grid",
    "stream_montecarlo_dies",
    "temperature_corners",
    "trace_population",
]


def __getattr__(name: str):
    # Deprecated alias of the retired process-global backing store;
    # importing it still works but warns (repro.campaign.cache emits
    # the DeprecationWarning).
    if name == "DEFAULT_CACHE":
        from repro.campaign import cache

        return cache.DEFAULT_CACHE
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}")
