"""Checkpoint/resume for streamed campaigns.

A streamed campaign (:meth:`CampaignEngine.run_stream`) over a
million-die fleet runs for a long time; if the process dies at die
700k, everything is lost.  :class:`StreamCheckpoint` makes the stream
crash-safe: the engine accumulates the per-chunk partial fleet stats
(NDFs, ground-truth deviations, labels, stage timings) in one of these
and periodically persists it -- atomically -- together with the **next
global die index**.  A restarted campaign loads the checkpoint, skips
the already-screened dies and continues.

The resume contract is **bit-identity**: population builders seed die
``i`` as a pure function of ``(seed, i)``
(:func:`~repro.campaign.scenarios.stream_montecarlo_dies` numbers its
spawned seed children globally), and the batched pipeline's per-die
rows are independent of chunk boundaries, so the merged result of an
interrupted+resumed campaign -- NDFs, verdicts, deviations, labels --
is byte-for-byte the result of the uninterrupted run.  Only wall-clock
timings differ.  ``tests/robustness/test_checkpoint_resume.py`` kills
streams at several injection points and proves the merge.

The checkpoint file is a single ``.npz`` written with the same
tmp+fsync+rename discipline as the artifact store
(:func:`repro.store.atomic_write_bytes`), so a crash mid-save leaves
the previous valid checkpoint, never a torn one.  The file records the
engine's golden key and resolved threshold; resuming under a different
configuration or band policy is a :class:`CheckpointMismatch`, not a
silently-wrong merge.

Checkpoints are also the unit of *sharding* (:mod:`repro.shard`): a
shard is exactly "a checkpoint whose next index starts past
another's".  A shard worker screens the global die range
``[start_index, hi)`` into its own checkpoint file, and the
coordinator reassembles the fleet with :meth:`StreamCheckpoint.merge`
-- an order-independent merge of disjoint contiguous ranges that is
bit-identical to the monolithic stream (every per-die row is a pure
function of the global die index, so concatenating the shard parts in
index order reproduces the monolithic arrays byte for byte).
"""

from __future__ import annotations

import io
import json
import os
from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.obs.logs import log_event
from repro.obs.metrics import default_registry
from repro.obs.trace import span
from repro.store import atomic_write_bytes

#: Checkpoint format version (bumped on incompatible changes).
CHECKPOINT_VERSION = 1


class CheckpointMismatch(ValueError):
    """Checkpoint was written under a different configuration."""


class StreamCheckpoint:
    """Mergeable partial state of one streamed campaign.

    The engine owns the instance: chunks :meth:`extend` it, the loop
    :meth:`save`\\ s it every ``checkpoint_every`` chunks, and a
    resumed run reconstructs it with :meth:`load` and keeps extending.
    ``next_index`` is the global index of the first unscreened die --
    the resume point.

    Attributes (all derived from the accumulated chunks)
    ----------------------------------------------------
    config_key:
        ``repr`` of the engine's golden key; resume validates it.
    threshold:
        Resolved NDF decision threshold (None = no verdicts); resume
        re-resolves the band policy and validates equality, so a
        checkpoint can never silently merge across band policies.
    start_index:
        Global index of the first die this checkpoint covers.  0 for
        a whole-fleet stream; a shard worker screening dies
        ``[lo, hi)`` checkpoints with ``start_index=lo`` so its
        partial state names its global range and :meth:`merge` can
        reassemble the fleet.
    """

    def __init__(self, config_key: str,
                 threshold: Optional[float],
                 start_index: int = 0) -> None:
        if start_index < 0:
            raise ValueError("start_index must be non-negative")
        self.config_key = str(config_key)
        self.threshold = None if threshold is None \
            else float(threshold)
        self.start_index = int(start_index)
        self.value_parts: List[np.ndarray] = []
        self.f0_parts: List[np.ndarray] = []
        self.q_parts: List[np.ndarray] = []
        self.labels: List[str] = []
        self.timing: Dict[str, float] = {}
        self.chunks_done = 0
        self.complete = False

    # ------------------------------------------------------------------
    @property
    def next_index(self) -> int:
        """Global index of the first unscreened die."""
        return self.start_index + len(self.labels)

    @property
    def num_dies(self) -> int:
        """Dies accumulated so far."""
        return len(self.labels)

    def extend(self, values: np.ndarray, f0_devs: np.ndarray,
               q_devs: np.ndarray, labels: List[str],
               timing: Dict[str, float]) -> None:
        """Merge one screened chunk's outputs."""
        self.value_parts.append(np.asarray(values))
        self.f0_parts.append(np.asarray(f0_devs, dtype=float))
        self.q_parts.append(np.asarray(q_devs, dtype=float))
        self.labels.extend(labels)
        for key, value in timing.items():
            self.timing[key] = self.timing.get(key, 0.0) + value
        self.chunks_done += 1

    def values(self, empty: np.ndarray) -> np.ndarray:
        """Accumulated NDFs (``empty``'s shape when no dies yet)."""
        if not self.value_parts:
            return empty
        return np.concatenate(self.value_parts, axis=0)

    def f0_deviations(self) -> np.ndarray:
        return (np.concatenate(self.f0_parts) if self.f0_parts
                else np.empty(0))

    def q_deviations(self) -> np.ndarray:
        return (np.concatenate(self.q_parts) if self.q_parts
                else np.empty(0))

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """The checkpoint's ``.npz`` archive as bytes.

        This *is* the on-disk format -- :meth:`save` writes exactly
        these bytes -- so a checkpoint can travel a network channel
        (a remote shard worker returns its partial state inline,
        base64-encoded, in ``progress``/``done`` messages) and land
        on the far side byte-for-byte equal to a local save.
        """
        empty = np.empty(0)
        buffer = io.BytesIO()
        meta = {
            "version": CHECKPOINT_VERSION,
            "config_key": self.config_key,
            "threshold": self.threshold,
            "start_index": self.start_index,
            "next_index": self.next_index,
            "labels": self.labels,
            "timing": self.timing,
            "chunks_done": self.chunks_done,
            "complete": self.complete,
        }
        np.savez_compressed(
            buffer, meta=np.asarray(json.dumps(meta)),
            ndfs=self.values(empty), f0=self.f0_deviations(),
            q=self.q_deviations())
        return buffer.getvalue()

    def save(self, path: str) -> None:
        """Persist atomically (tmp + fsync + rename).

        The accumulated parts are concatenated into flat arrays, so a
        resumed process pays no per-chunk overhead reading them back;
        a crash at any instant leaves the previous checkpoint intact.
        The ``checkpoint.write.tear`` fault point simulates the torn
        write the rename discipline prevents.
        """
        with span("checkpoint.save", next_index=self.next_index,
                  complete=self.complete):
            atomic_write_bytes(path, self.to_bytes(),
                               tear_fault="checkpoint.write.tear")
        default_registry().counter("checkpoint_saves_total").inc()

    @classmethod
    def from_bytes(cls, data: bytes) -> "StreamCheckpoint":
        """Inverse of :meth:`to_bytes` (same checks as :meth:`load`)."""
        with np.load(io.BytesIO(data),
                     allow_pickle=False) as archive:
            return cls._from_archive(archive, "<bytes>")

    @classmethod
    def load(cls, path: str) -> "StreamCheckpoint":
        """Rebuild a checkpoint saved with :meth:`save`.

        Raises ``FileNotFoundError`` when there is nothing to resume
        and :class:`CheckpointMismatch` on a version we cannot merge;
        an unreadable archive propagates its decode error (use
        :meth:`load_if_valid` for the degrade-to-restart path).
        """
        with np.load(path, allow_pickle=False) as archive:
            return cls._from_archive(archive, path)

    @classmethod
    def _from_archive(cls, archive, source: str) -> "StreamCheckpoint":
        meta = json.loads(str(archive["meta"]))
        if meta.get("version") != CHECKPOINT_VERSION:
            raise CheckpointMismatch(
                f"checkpoint {source!r} has version "
                f"{meta.get('version')!r}, expected "
                f"{CHECKPOINT_VERSION}")
        state = cls(meta["config_key"], meta["threshold"],
                    start_index=int(meta.get("start_index", 0)))
        ndfs = archive["ndfs"]
        if ndfs.size:
            state.value_parts.append(ndfs)
            state.f0_parts.append(archive["f0"])
            state.q_parts.append(archive["q"])
        state.labels = list(meta["labels"])
        state.timing = {k: float(v)
                        for k, v in meta["timing"].items()}
        state.chunks_done = int(meta["chunks_done"])
        state.complete = bool(meta["complete"])
        return state

    @classmethod
    def load_if_valid(cls, path: str) -> Optional["StreamCheckpoint"]:
        """:meth:`load`, degrading damage to "no checkpoint".

        A missing checkpoint silently returns None (nothing to
        resume is the normal first-run case).  A torn or otherwise
        unreadable checkpoint *also* returns None -- the campaign
        restarts from its stream offset, which is always correct,
        just slower -- but emits a structured
        ``checkpoint.invalid`` :func:`~repro.obs.logs.log_event` so
        the degrade is observable instead of a silent slow run.
        (The atomic save makes actual damage require external
        interference.)
        """
        if not os.path.exists(path):
            return None
        try:
            return cls.load(path)
        except Exception as error:
            log_event("checkpoint.invalid", path=path,
                      error=f"{type(error).__name__}: {error}",
                      action="restart-from-zero")
            default_registry().counter(
                "checkpoint_invalid_total").inc()
            return None

    def validate(self, config_key: str,
                 threshold: Optional[float]) -> None:
        """Refuse to merge across configurations or band policies."""
        if self.config_key != str(config_key):
            raise CheckpointMismatch(
                "checkpoint was written for a different test "
                f"configuration: expected golden key {config_key}, "
                f"found {self.config_key}")
        stored = self.threshold
        live = None if threshold is None else float(threshold)
        if (stored is None) != (live is None) or \
                (stored is not None and stored != live):
            raise CheckpointMismatch(
                f"checkpoint was written under a different band "
                f"policy: expected threshold {live!r}, found "
                f"{stored!r}; bit-identical merging needs the same "
                "band policy")

    # ------------------------------------------------------------------
    # Shard merging
    # ------------------------------------------------------------------
    @classmethod
    def merge(cls, parts: Iterable["StreamCheckpoint"]
              ) -> "StreamCheckpoint":
        """Merge disjoint-range partials into one checkpoint.

        ``parts`` are partial checkpoints over contiguous,
        non-overlapping global die ranges (shard outputs, or merges
        of such -- the operation is associative).  They may arrive in
        any order: parts are sorted by ``start_index`` before
        concatenation, so the merged arrays are byte-for-byte what
        the monolithic stream over the combined range would have
        accumulated.  Empty parts (a zero-die shard) are legal
        anywhere their ``start_index`` is consistent.

        Raises ``ValueError`` on overlapping or gapped ranges and
        :class:`CheckpointMismatch` when parts disagree on
        configuration or band policy.  The merge result is
        ``complete`` only when every part is.
        """
        parts = list(parts)
        if not parts:
            raise ValueError("nothing to merge: no checkpoint parts")
        reference = parts[0]
        for part in parts[1:]:
            part.validate(reference.config_key, reference.threshold)
        # Empty parts sort ahead of a same-start non-empty part so
        # the contiguity scan accepts them at either edge of a range.
        ordered = sorted(parts,
                         key=lambda p: (p.start_index, p.num_dies))
        merged = cls(reference.config_key, reference.threshold,
                     start_index=ordered[0].start_index)
        expected = merged.start_index
        for part in ordered:
            if part.start_index < expected:
                raise ValueError(
                    f"overlapping shard ranges: dies "
                    f"[{part.start_index}, {part.next_index}) "
                    f"collide with already-merged dies up to "
                    f"{expected}")
            if part.start_index > expected:
                raise ValueError(
                    f"gap in shard ranges: dies [{expected}, "
                    f"{part.start_index}) are covered by no part")
            merged.value_parts.extend(part.value_parts)
            merged.f0_parts.extend(part.f0_parts)
            merged.q_parts.extend(part.q_parts)
            merged.labels.extend(part.labels)
            for key, value in part.timing.items():
                merged.timing[key] = \
                    merged.timing.get(key, 0.0) + value
            merged.chunks_done += part.chunks_done
            expected = part.next_index
        merged.complete = all(part.complete for part in parts)
        return merged


__all__ = ["CHECKPOINT_VERSION", "CheckpointMismatch",
           "StreamCheckpoint"]
