"""Checkpoint/resume for streamed campaigns.

A streamed campaign (:meth:`CampaignEngine.run_stream`) over a
million-die fleet runs for a long time; if the process dies at die
700k, everything is lost.  :class:`StreamCheckpoint` makes the stream
crash-safe: the engine accumulates the per-chunk partial fleet stats
(NDFs, ground-truth deviations, labels, stage timings) in one of these
and periodically persists it -- atomically -- together with the **next
global die index**.  A restarted campaign loads the checkpoint, skips
the already-screened dies and continues.

The resume contract is **bit-identity**: population builders seed die
``i`` as a pure function of ``(seed, i)``
(:func:`~repro.campaign.scenarios.stream_montecarlo_dies` numbers its
spawned seed children globally), and the batched pipeline's per-die
rows are independent of chunk boundaries, so the merged result of an
interrupted+resumed campaign -- NDFs, verdicts, deviations, labels --
is byte-for-byte the result of the uninterrupted run.  Only wall-clock
timings differ.  ``tests/robustness/test_checkpoint_resume.py`` kills
streams at several injection points and proves the merge.

The checkpoint file is a single ``.npz`` written with the same
tmp+fsync+rename discipline as the artifact store
(:func:`repro.store.atomic_write_bytes`), so a crash mid-save leaves
the previous valid checkpoint, never a torn one.  The file records the
engine's golden key and resolved threshold; resuming under a different
configuration or band policy is a :class:`CheckpointMismatch`, not a
silently-wrong merge.

This is the first rung of ROADMAP's multi-node sharding item: a shard
is exactly "a checkpoint whose next index starts past another's".
"""

from __future__ import annotations

import io
import json
import os
from typing import Dict, List, Optional

import numpy as np

from repro.obs.metrics import default_registry
from repro.obs.trace import span
from repro.store import atomic_write_bytes

#: Checkpoint format version (bumped on incompatible changes).
CHECKPOINT_VERSION = 1


class CheckpointMismatch(ValueError):
    """Checkpoint was written under a different configuration."""


class StreamCheckpoint:
    """Mergeable partial state of one streamed campaign.

    The engine owns the instance: chunks :meth:`extend` it, the loop
    :meth:`save`\\ s it every ``checkpoint_every`` chunks, and a
    resumed run reconstructs it with :meth:`load` and keeps extending.
    ``next_index`` is the global index of the first unscreened die --
    the resume point.

    Attributes (all derived from the accumulated chunks)
    ----------------------------------------------------
    config_key:
        ``repr`` of the engine's golden key; resume validates it.
    threshold:
        Resolved NDF decision threshold (None = no verdicts); resume
        re-resolves the band policy and validates equality, so a
        checkpoint can never silently merge across band policies.
    """

    def __init__(self, config_key: str,
                 threshold: Optional[float]) -> None:
        self.config_key = str(config_key)
        self.threshold = None if threshold is None \
            else float(threshold)
        self.value_parts: List[np.ndarray] = []
        self.f0_parts: List[np.ndarray] = []
        self.q_parts: List[np.ndarray] = []
        self.labels: List[str] = []
        self.timing: Dict[str, float] = {}
        self.chunks_done = 0
        self.complete = False

    # ------------------------------------------------------------------
    @property
    def next_index(self) -> int:
        """Global index of the first unscreened die."""
        return len(self.labels)

    @property
    def num_dies(self) -> int:
        """Dies accumulated so far."""
        return len(self.labels)

    def extend(self, values: np.ndarray, f0_devs: np.ndarray,
               q_devs: np.ndarray, labels: List[str],
               timing: Dict[str, float]) -> None:
        """Merge one screened chunk's outputs."""
        self.value_parts.append(np.asarray(values))
        self.f0_parts.append(np.asarray(f0_devs, dtype=float))
        self.q_parts.append(np.asarray(q_devs, dtype=float))
        self.labels.extend(labels)
        for key, value in timing.items():
            self.timing[key] = self.timing.get(key, 0.0) + value
        self.chunks_done += 1

    def values(self, empty: np.ndarray) -> np.ndarray:
        """Accumulated NDFs (``empty``'s shape when no dies yet)."""
        if not self.value_parts:
            return empty
        return np.concatenate(self.value_parts, axis=0)

    def f0_deviations(self) -> np.ndarray:
        return (np.concatenate(self.f0_parts) if self.f0_parts
                else np.empty(0))

    def q_deviations(self) -> np.ndarray:
        return (np.concatenate(self.q_parts) if self.q_parts
                else np.empty(0))

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: str) -> None:
        """Persist atomically (tmp + fsync + rename).

        The accumulated parts are concatenated into flat arrays, so a
        resumed process pays no per-chunk overhead reading them back;
        a crash at any instant leaves the previous checkpoint intact.
        The ``checkpoint.write.tear`` fault point simulates the torn
        write the rename discipline prevents.
        """
        with span("checkpoint.save", next_index=self.next_index,
                  complete=self.complete):
            empty = np.empty(0)
            buffer = io.BytesIO()
            meta = {
                "version": CHECKPOINT_VERSION,
                "config_key": self.config_key,
                "threshold": self.threshold,
                "next_index": self.next_index,
                "labels": self.labels,
                "timing": self.timing,
                "chunks_done": self.chunks_done,
                "complete": self.complete,
            }
            np.savez_compressed(
                buffer, meta=np.asarray(json.dumps(meta)),
                ndfs=self.values(empty), f0=self.f0_deviations(),
                q=self.q_deviations())
            atomic_write_bytes(path, buffer.getvalue(),
                               tear_fault="checkpoint.write.tear")
        default_registry().counter("checkpoint_saves_total").inc()

    @classmethod
    def load(cls, path: str) -> "StreamCheckpoint":
        """Rebuild a checkpoint saved with :meth:`save`.

        Raises ``FileNotFoundError`` when there is nothing to resume
        and :class:`CheckpointMismatch` on a version we cannot merge;
        an unreadable archive propagates its decode error (use
        :meth:`load_if_valid` for the degrade-to-restart path).
        """
        with np.load(path, allow_pickle=False) as archive:
            meta = json.loads(str(archive["meta"]))
            if meta.get("version") != CHECKPOINT_VERSION:
                raise CheckpointMismatch(
                    f"checkpoint {path!r} has version "
                    f"{meta.get('version')!r}, expected "
                    f"{CHECKPOINT_VERSION}")
            state = cls(meta["config_key"], meta["threshold"])
            ndfs = archive["ndfs"]
            if ndfs.size:
                state.value_parts.append(ndfs)
                state.f0_parts.append(archive["f0"])
                state.q_parts.append(archive["q"])
            state.labels = list(meta["labels"])
            state.timing = {k: float(v)
                            for k, v in meta["timing"].items()}
            state.chunks_done = int(meta["chunks_done"])
            state.complete = bool(meta["complete"])
            return state

    @classmethod
    def load_if_valid(cls, path: str) -> Optional["StreamCheckpoint"]:
        """:meth:`load`, degrading damage to "no checkpoint".

        A missing, torn or otherwise unreadable checkpoint returns
        None -- the campaign restarts from die 0, which is always
        correct, just slower.  (The atomic save makes actual damage
        require external interference.)
        """
        if not os.path.exists(path):
            return None
        try:
            return cls.load(path)
        except Exception:
            return None

    def validate(self, config_key: str,
                 threshold: Optional[float]) -> None:
        """Refuse to merge across configurations or band policies."""
        if self.config_key != str(config_key):
            raise CheckpointMismatch(
                "checkpoint was written for a different test "
                f"configuration (golden key {self.config_key} vs "
                f"{config_key})")
        stored = self.threshold
        live = None if threshold is None else float(threshold)
        if (stored is None) != (live is None) or \
                (stored is not None and stored != live):
            raise CheckpointMismatch(
                f"checkpoint was written with threshold {stored!r}, "
                f"resume resolves {live!r}; bit-identical merging "
                "needs the same band policy")


__all__ = ["CHECKPOINT_VERSION", "CheckpointMismatch",
           "StreamCheckpoint"]
