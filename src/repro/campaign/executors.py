"""Executor layer: how a campaign's chunks are scheduled.

The engine splits a population into chunks and hands ``(worker, chunk)``
pairs to an executor.  Executors only schedule; all numerical work --
and all randomness -- happens in the deterministically-seeded chunks,
so every executor produces bit-identical results for the same
population (asserted by the equivalence tests).

* :class:`SerialExecutor` -- runs chunks in order, in process.  The
  right choice up to a few thousand dies, where batching (not
  parallelism) is the win.
* :class:`ProcessPoolExecutor` -- fans chunks out over worker
  processes via :mod:`concurrent.futures`; results are re-assembled in
  submission order.  Worker processes amortize golden-signature work
  through the process-wide default cache.
"""

from __future__ import annotations

import concurrent.futures
import os
from typing import Callable, Iterable, List, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")


def chunked(items: Sequence[T], chunk_size: int) -> List[Sequence[T]]:
    """Split a sequence into order-preserving chunks."""
    if chunk_size < 1:
        raise ValueError("chunk size must be >= 1")
    return [items[i:i + chunk_size]
            for i in range(0, len(items), chunk_size)]


class SerialExecutor:
    """In-process, in-order chunk execution."""

    name = "serial"
    needs_picklable_work = False

    def map(self, worker: Callable[[T], R],
            chunks: Iterable[T]) -> List[R]:
        """Apply ``worker`` to every chunk, preserving order."""
        return [worker(chunk) for chunk in chunks]

    def shutdown(self) -> None:
        """Nothing to release."""


class ProcessPoolExecutor:
    """Chunk fan-out over a process pool.

    Parameters
    ----------
    max_workers:
        Pool size; defaults to the machine's CPU count (capped at 8 --
        the workloads saturate memory bandwidth well before that).
    """

    needs_picklable_work = True

    def __init__(self, max_workers: int = None) -> None:
        if max_workers is None:
            max_workers = min(8, os.cpu_count() or 1)
        if max_workers < 1:
            raise ValueError("need at least one worker")
        self.max_workers = int(max_workers)
        self.name = f"process-pool[{self.max_workers}]"
        self._pool: concurrent.futures.ProcessPoolExecutor = None

    def _ensure_pool(self) -> concurrent.futures.ProcessPoolExecutor:
        if self._pool is None:
            self._pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=self.max_workers)
        return self._pool

    def map(self, worker: Callable[[T], R],
            chunks: Iterable[T]) -> List[R]:
        """Run chunks on the pool; results come back in order.

        ``worker`` and every chunk must be picklable (the engine's
        chunk workers are module-level functions taking dataclass
        payloads, which are).
        """
        pool = self._ensure_pool()
        futures = [pool.submit(worker, chunk) for chunk in chunks]
        return [f.result() for f in futures]

    def shutdown(self) -> None:
        """Tear the pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "ProcessPoolExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()
