"""Executor layer: how a campaign's chunks are scheduled.

The engine splits a population into chunks and hands ``(worker, chunk)``
pairs to an executor.  Executors only schedule; all numerical work --
and all randomness -- happens in the deterministically-seeded chunks,
so every executor produces bit-identical results for the same
population (asserted by the equivalence tests).

* :class:`SerialExecutor` -- runs chunks in order, in process.  The
  right choice up to a few thousand dies, where batching (not
  parallelism) is the win.
* :class:`ProcessPoolExecutor` -- fans chunks out over worker
  processes via :mod:`concurrent.futures`; results are re-assembled in
  submission order.  Worker processes amortize golden-signature work
  through the process-wide default cache.
* :class:`SharedMemoryExecutor` -- a process pool whose bulk array
  inputs travel through :mod:`multiprocessing.shared_memory` instead
  of pickling: the parent publishes an ``(N, T)`` stack once, workers
  attach zero-copy views of their row slices.  Chunk payloads shrink
  from megabytes of trace data to a (name, shape, slice) descriptor.
"""

from __future__ import annotations

import concurrent.futures
import os
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

import numpy as np

from repro.obs.trace import (SpanRecord, TraceContext, context_tracer,
                             current_trace_context, current_tracer,
                             install_tracer, span, stamped_records)

T = TypeVar("T")
R = TypeVar("R")


def _traced_chunk_call(payload):
    """Pool-worker shim that joins the parent's trace.

    ``payload`` is ``(worker, context_dict, chunk)``: the worker
    process installs a :func:`context_tracer` rebuilt from the
    shipped :class:`TraceContext`, runs the real chunk worker under
    it, and returns ``(result, record_rows)`` -- its completed spans,
    pid-stamped, for the parent to :meth:`Tracer.absorb`.  Without
    this shim (tracing off) pool workers run the chunk worker
    directly and record nothing.
    """
    worker, context_row, chunk = payload
    tracer = context_tracer(TraceContext.from_dict(context_row))
    previous = install_tracer(tracer)
    try:
        result = worker(chunk)
    finally:
        install_tracer(previous)
    return result, stamped_records(tracer)


def chunked(items: Sequence[T], chunk_size: int) -> List[Sequence[T]]:
    """Split any sliceable sequence into order-preserving chunks.

    Works on lists, tuples and numpy arrays alike (array chunks are
    zero-copy row views); only ``len()`` and basic slicing are
    required of ``items``.
    """
    if chunk_size < 1:
        raise ValueError("chunk size must be >= 1")
    return [items[i:i + chunk_size]
            for i in range(0, len(items), chunk_size)]


class SerialExecutor:
    """In-process, in-order chunk execution."""

    name = "serial"
    needs_picklable_work = False

    def map(self, worker: Callable[[T], R],
            chunks: Iterable[T]) -> List[R]:
        """Apply ``worker`` to every chunk, preserving order.

        With tracing on, every chunk runs under an ``executor.chunk``
        span (stage spans opened inside the chunk nest under it).
        """
        results: List[R] = []
        for index, chunk in enumerate(chunks):
            with span("executor.chunk", executor=self.name,
                      index=index):
                results.append(worker(chunk))
        return results

    def shutdown(self) -> None:
        """Nothing to release."""


class ProcessPoolExecutor:
    """Chunk fan-out over a process pool.

    Parameters
    ----------
    max_workers:
        Pool size; defaults to the machine's CPU count (capped at 8 --
        the workloads saturate memory bandwidth well before that).
    """

    needs_picklable_work = True

    def __init__(self, max_workers: Optional[int] = None) -> None:
        if max_workers is None:
            max_workers = min(8, os.cpu_count() or 1)
        if max_workers < 1:
            raise ValueError("need at least one worker")
        self.max_workers = int(max_workers)
        self.name = f"process-pool[{self.max_workers}]"
        self._pool: Optional[concurrent.futures.ProcessPoolExecutor] = None

    def _ensure_pool(self) -> concurrent.futures.ProcessPoolExecutor:
        if self._pool is None:
            self._pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=self.max_workers)
        return self._pool

    def map(self, worker: Callable[[T], R],
            chunks: Iterable[T]) -> List[R]:
        """Run chunks on the pool; results come back in order.

        ``worker`` and every chunk must be picklable (the engine's
        chunk workers are module-level functions taking dataclass
        payloads, which are).
        """
        chunks = list(chunks)
        with span("executor.map", executor=self.name,
                  chunks=len(chunks)) as map_span:
            pool = self._ensure_pool()
            # With tracing on, ship the (trace_id, parent_span_id)
            # pair into each pool worker so its stage spans come back
            # parented under this map span; workers return their
            # records alongside the chunk result and the parent
            # absorbs them into the active tracer.
            context = current_trace_context()
            if context is None:
                futures = [pool.submit(worker, chunk)
                           for chunk in chunks]
            else:
                parent_id = getattr(map_span, "_span_id", None)
                row = TraceContext(
                    trace_id=context.trace_id,
                    parent_span_id=parent_id).to_dict()
                futures = [pool.submit(_traced_chunk_call,
                                       (worker, row, chunk))
                           for chunk in chunks]
            results: List[R] = []
            for index, future in enumerate(futures):
                with span("executor.chunk", executor=self.name,
                          index=index):
                    outcome = future.result()
                if context is None:
                    results.append(outcome)
                else:
                    result, rows = outcome
                    tracer = current_tracer()
                    if tracer is not None:
                        tracer.absorb(SpanRecord.from_dict(r)
                                      for r in rows)
                    results.append(result)
            return results

    def shutdown(self) -> None:
        """Tear the pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "ProcessPoolExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


# ----------------------------------------------------------------------
# Shared-memory transport
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SharedArrayHandle:
    """Picklable descriptor of an array published in shared memory."""

    name: str
    shape: tuple
    dtype: str


def attach_shared_array(handle: SharedArrayHandle):
    """Worker-side: zero-copy view of a published array.

    Returns ``(array, close)``; call ``close()`` once the chunk's
    compute no longer references the array.  Ownership (and the
    eventual unlink) stays with the publisher: on Python >= 3.13 the
    attach opts out of resource tracking; on 3.10-3.12 fork-based
    pools the workers share the publisher's tracker (whose set-based
    registry makes the attach-side registration a no-op), while
    spawn-based pools get their own tracker, from which the attach
    registration is explicitly withdrawn so worker shutdown cannot
    unlink (or double-report) the publisher's live segment.
    """
    import multiprocessing
    import sys
    from multiprocessing import shared_memory

    if sys.version_info >= (3, 13):
        shm = shared_memory.SharedMemory(name=handle.name, track=False)
    else:
        shm = shared_memory.SharedMemory(name=handle.name)
        if multiprocessing.get_start_method() != "fork":
            from multiprocessing import resource_tracker

            try:
                resource_tracker.unregister(shm._name, "shared_memory")
            except Exception:  # pragma: no cover - tracker internals
                pass
    array = np.ndarray(handle.shape, np.dtype(handle.dtype),
                       buffer=shm.buf)
    return array, shm.close


class SharedMemoryExecutor(ProcessPoolExecutor):
    """Process pool with shared-memory bulk-array transport.

    Behaves exactly like :class:`ProcessPoolExecutor` for ordinary
    chunk payloads (spec populations); in addition,
    :meth:`map_shared` publishes one big array for a whole campaign so
    per-chunk payloads stop pickling ``(N, T)`` float stacks.
    """

    def __init__(self, max_workers: Optional[int] = None) -> None:
        super().__init__(max_workers)
        self.name = f"shared-memory[{self.max_workers}]"

    def publish(self, array: np.ndarray):
        """Copy an array into a fresh shared segment once.

        Returns ``(handle, unlink)``: ship ``handle`` to workers, call
        ``unlink()`` after every chunk completed.
        """
        from multiprocessing import shared_memory

        array = np.ascontiguousarray(array)
        shm = shared_memory.SharedMemory(create=True, size=array.nbytes)
        view = np.ndarray(array.shape, array.dtype, buffer=shm.buf)
        view[...] = array
        handle = SharedArrayHandle(shm.name, array.shape,
                                   array.dtype.str)

        def unlink() -> None:
            shm.close()
            shm.unlink()

        return handle, unlink

    def map_shared(self, worker: Callable[[T], R], array: np.ndarray,
                   make_payload: Callable[[SharedArrayHandle], Iterable[T]]
                   ) -> List[R]:
        """Publish ``array``, run the derived chunk payloads, unlink.

        ``make_payload`` receives the shared handle and returns the
        chunk payloads (each embedding the handle plus a row slice);
        results come back in submission order.
        """
        handle, unlink = self.publish(array)
        try:
            return self.map(worker, list(make_payload(handle)))
        finally:
            unlink()
