"""Content-keyed caching of golden signatures and calibrations.

Every campaign that shares a configuration -- stimulus, zone encoder,
golden CUT nominal and sampling density -- also shares its golden
signature and its Fig. 8 calibration band.  The seed code re-derived
both inside every workload loop; here they are computed once and keyed
by *content*:

* the stimulus key is the exact tone table (frequency, amplitude,
  phase, offset);
* the encoder key is :meth:`repro.core.zones.ZoneEncoder.fingerprint`,
  a hash of the realized zone partition, so a rebuilt-but-identical
  Table I bank hits while a Monte Carlo-varied bank misses;
* the CUT nominal key is the golden Biquad spec (or an explicit
  ``golden_key`` for non-spec CUTs).

The cache is a small LRU; hit/miss counters are exposed for the
campaign result's diagnostics and the cache behaviour tests.

An optional on-disk :class:`repro.store.ArtifactStore` can back the
LRU (pass ``store=``): in-memory misses consult the store before
computing, and fresh computations are written through, so a restarted
process warms from disk instead of re-deriving goldens, calibrations
and fault dictionaries.  Store damage never propagates -- a corrupt or
unreadable artifact simply degrades to a recompute.
"""

from __future__ import annotations

import threading
import warnings
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Hashable, Tuple

import numpy as np

from repro.core.signature import Signature
from repro.core.zones import ZoneEncoder
from repro.filters.biquad import BiquadSpec
from repro.obs.metrics import default_registry
from repro.obs.trace import span
from repro.signals.multitone import Multitone


def _cache_kind(key: Hashable) -> str:
    """Artifact kind of a cache key (keys lead with a kind tag)."""
    if isinstance(key, tuple) and key and isinstance(key[0], str):
        return key[0]
    return "other"


def stimulus_key(stimulus: Multitone) -> Tuple:
    """Hashable content key of a multitone stimulus."""
    return (float(stimulus.offset),
            tuple((float(t.freq_hz), float(t.amplitude),
                   float(t.phase_deg)) for t in stimulus.tones))


def spec_key(spec: BiquadSpec) -> Tuple:
    """Hashable content key of a Biquad nominal."""
    return (float(spec.f0_hz), float(spec.q), float(spec.gain),
            spec.kind.value)


@dataclass(frozen=True)
class CacheInfo:
    """Snapshot of the cache counters."""

    hits: int
    misses: int
    size: int

    @property
    def requests(self) -> int:
        """Total lookups served."""
        return self.hits + self.misses

    def __str__(self) -> str:
        return (f"{self.hits} hits / {self.misses} misses "
                f"({self.size} cached)")


@dataclass(frozen=True)
class GoldenArtifacts:
    """Everything derived once per campaign configuration.

    Attributes
    ----------
    times:
        The shared capture grid over one period.
    x:
        Stimulus samples on the grid (the Lissajous X signal).
    y:
        Golden CUT response samples on the grid (the Y signal) --
        encoder-variation campaigns re-encode this same trace through
        varied monitor banks.
    codes:
        Golden zone codes on the grid.
    signature:
        The golden signature (grid-quantized, matching the batched
        capture of the observed dies).
    period:
        Signature period in seconds.
    """

    times: np.ndarray
    x: np.ndarray
    y: np.ndarray
    codes: np.ndarray
    signature: Signature
    period: float


class GoldenCache:
    """LRU cache of golden artifacts and derived calibrations.

    Every :class:`~repro.campaign.engine.CampaignEngine` owns one by
    default (pass ``cache=`` to share artifacts between engines, e.g.
    across the channels of a multi-signature setup or the sessions of
    a screening service).  Pool-executor workers amortize through a
    per-process instance of their own instead.

    The cache is re-entrant and thread-safe: an internal
    :class:`threading.RLock` serializes lookups *including* the miss
    computation, giving single-flight semantics -- when N server
    threads race for the same cold golden, one computes it and the
    rest hit.  Recursive computes (a fault-dictionary compile runs a
    whole campaign, which consults the same cache for its golden)
    re-enter through the same lock.

    ``store`` optionally backs the LRU with an on-disk
    :class:`repro.store.ArtifactStore`: a memory miss first tries
    ``store.load_artifact(key)`` (a store hit skips the compute
    entirely -- this is how a restarted session warms instantly), and
    every fresh compute is written through with
    ``store.save_artifact``.  The store is duck-typed and every call
    is failure-isolated: a broken disk degrades to plain in-memory
    caching, never an exception on the screening path.
    """

    def __init__(self, maxsize: int = 64, store=None) -> None:
        if maxsize < 1:
            raise ValueError("cache needs room for at least one entry")
        self.maxsize = int(maxsize)
        self.store = store
        self._entries: "OrderedDict[Hashable, object]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    def _store_load(self, key: Hashable):
        if self.store is None:
            return None
        try:
            return self.store.load_artifact(key)
        except Exception:
            return None

    def _store_save(self, key: Hashable, value: object) -> None:
        if self.store is None:
            return
        try:
            self.store.save_artifact(key, value)
        except Exception:
            pass

    def get_or_compute(self, key: Hashable,
                       compute: Callable[[], object]) -> object:
        """Cached value for ``key``, computing (and storing) on miss.

        Lookups count into the process-default metrics registry
        (``cache_lookups_total{kind,outcome}``); a miss's compute runs
        under a ``cache.compute`` span so a cold golden or dictionary
        compile is attributable in a trace.
        """
        kind = _cache_kind(key)
        with self._lock:
            if key in self._entries:
                self._hits += 1
                self._entries.move_to_end(key)
                default_registry().counter(
                    "cache_lookups_total", kind=kind,
                    outcome="hit").inc()
                return self._entries[key]
            self._misses += 1
            value = self._store_load(key)
            outcome = "store_hit" if value is not None else "miss"
            default_registry().counter(
                "cache_lookups_total", kind=kind, outcome=outcome).inc()
            if value is None:
                with span("cache.compute", kind=kind):
                    value = compute()
                self._store_save(key, value)
            self._entries[key] = value
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
            return value

    def contains(self, key: Hashable) -> bool:
        """True when ``key`` is cached (does not touch the counters)."""
        with self._lock:
            return key in self._entries

    def clear(self) -> None:
        """Drop every entry and reset the counters."""
        with self._lock:
            self._entries.clear()
            self._hits = 0
            self._misses = 0

    @property
    def info(self) -> CacheInfo:
        """Current hit/miss/size counters."""
        with self._lock:
            return CacheInfo(self._hits, self._misses,
                             len(self._entries))


def encoder_key(encoder: ZoneEncoder) -> str:
    """Content key of a zone encoder (cached on the instance).

    The fingerprint probe is itself not free, so it is memoized per
    encoder object; two distinct objects with the same boundaries still
    collapse onto the same key value.
    """
    cached = getattr(encoder, "_campaign_fingerprint", None)
    if cached is None:
        cached = encoder.fingerprint()
        encoder._campaign_fingerprint = cached
    return cached


#: Per-process cache of the pool-executor workers.  Worker processes
#: receive pickled chunk payloads with no way to carry an engine's
#: cache across, so each worker amortizes golden computation across
#: its chunks through this instance.  In-process code must NOT reach
#: for it -- engines default to a private per-engine cache, and shared
#: warm state is an explicit ``cache=`` hand-off.
_PROCESS_CACHE = GoldenCache()


def __getattr__(name: str):
    # The old module-global backing store survives only as a
    # deprecated alias; the engine no longer consults it implicitly.
    if name == "DEFAULT_CACHE":
        warnings.warn(
            "repro.campaign.cache.DEFAULT_CACHE is deprecated: "
            "CampaignEngine now defaults to a per-engine GoldenCache; "
            "pass cache= explicitly to share golden artifacts between "
            "engines (e.g. one repro.service.ScreeningSession)",
            DeprecationWarning, stacklevel=2)
        return _PROCESS_CACHE
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}")
