"""One screening request: the unified engine entry payload.

:class:`ScreeningRequest` replaces the keyword sprawl of
:meth:`~repro.campaign.engine.CampaignEngine.run` /
:meth:`~repro.campaign.engine.CampaignEngine.run_stream` /
:meth:`~repro.campaign.engine.CampaignEngine.run_noise` with a single
picklable value object.  The engine consumes it through
:meth:`~repro.campaign.engine.CampaignEngine.submit`; the historical
method signatures survive as thin shims that build a request, so every
existing caller (and the CLI) stays source-compatible.

Being a value object is what lets the screening service treat work
uniformly: sessions queue requests, the coalescing batcher packs
compatible ones into a single front-half pass, and per-client metadata
(``client``) rides along without touching the engine math.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Sequence, Tuple, Union

from repro.core.decision import DecisionBand
from repro.core.zones import ZoneEncoder
from repro.signals.noise import NoiseModel

#: The execution modes the engine dispatches on.
MODES: Tuple[str, ...] = ("run", "stream", "noise", "sharded")


@dataclass(frozen=True)
class ScreeningRequest:
    """Everything one screening submission needs, in one object.

    Attributes
    ----------
    population:
        What to screen.  ``mode="run"``: any population the engine
        accepts (population object, raw spec sequence, or an iterator
        -- iterators delegate to streaming exactly like
        :meth:`~repro.campaign.engine.CampaignEngine.run`).
        ``mode="stream"``: an iterable of population chunks.
        ``mode="noise"``: a spec population.
    mode:
        ``"run"`` (one-shot), ``"stream"`` (bounded-memory chunk
        stream) or ``"noise"`` (Section IV-C noisy repeats).
    band:
        Verdict policy: ``"auto"`` (Fig. 8-calibrated), a raw float
        threshold, a :class:`~repro.core.decision.DecisionBand`, or
        None for NDFs without verdicts.
    keep_signatures:
        Retain the packed per-die signatures on the result (the
        diagnosis input).  Ignored by noise campaigns.
    encoders:
        Optional monitor-bank list switching the campaign to
        multi-signature screening (``encoders[0]`` becomes channel 0).
    repeats, noise, seed:
        Noise-campaign knobs (``mode="noise"`` only): measurements per
        die, the noise model / 3-sigma volt spread (None = the paper's
        0.015 V), and the deterministic per-die seed root.
    client:
        Free-form requester identity.  The engine ignores it; the
        service layer uses it for rate limiting, metrics and the
        coalescing batcher's scatter bookkeeping.
    request_id:
        Optional end-to-end correlation id (the client's
        ``X-Repro-Request-Id``).  The engine math ignores it; the
        service layer threads it session -> batcher -> engine so
        server-side spans and structured log lines join the client's
        retries.  Contextvars do not cross the handler-to-batcher
        thread boundary, which is why the id rides the request object
        explicitly.
    checkpoint:
        Optional path making a ``mode="stream"`` campaign crash-safe:
        partial fleet stats plus the next global die index persist
        there every ``checkpoint_every`` chunks (atomic writes), and a
        submission finding an existing checkpoint resumes behind it --
        merging bit-identical to the uninterrupted run (see
        :mod:`repro.campaign.checkpoint` and ``docs/persistence.md``).
    checkpoint_every:
        Chunks between checkpoint saves (``mode="stream"`` with
        ``checkpoint`` only).
    stream_offset:
        Global die index of the *first* die the population iterable
        yields.  0 (default) means the stream restarts from die 0 and
        the engine fast-forwards past already-checkpointed dies; a
        resume that rebuilds its stream mid-fleet (e.g.
        ``stream_montecarlo_dies(..., start=k)``) declares that here.
    shards, shard_size, shard_workdir, shard_heartbeat, shard_workers:
        Sharded-campaign knobs (``mode="sharded"`` only; see
        :mod:`repro.shard` and
        :meth:`~repro.campaign.engine.CampaignEngine.run_sharded`):
        how many shards to split the fleet into, an optional dies-per-
        shard cap (finer reassignment granularity), the coordinator's
        checkpoint/scratch directory (a temp dir when None), the
        worker heartbeat deadline in seconds, and the subprocess
        worker count (None = one per shard).
    shard_listen:
        ``"HOST:PORT"`` to accept remote TCP workers on instead of
        spawning subprocesses (``repro shard-worker --connect``
        processes dial in; port 0 binds an ephemeral port).  See
        docs/sharding.md "Multi-node campaigns".
    shard_autotune_s:
        Target seconds per shard; when set the static plan is
        replaced by feedback-sized carving from each worker's
        observed die rate (:class:`repro.shard.ShardAutotuner`).
    """

    population: object = None
    mode: str = "run"
    band: Union[None, str, float, DecisionBand] = "auto"
    keep_signatures: bool = False
    encoders: Optional[Sequence[ZoneEncoder]] = None
    repeats: int = 20
    noise: Union[None, float, NoiseModel] = None
    seed: int = 0
    client: Optional[str] = None
    request_id: Optional[str] = None
    checkpoint: Optional[str] = None
    checkpoint_every: int = 1
    stream_offset: int = 0
    shards: int = 2
    shard_size: Optional[int] = None
    shard_workdir: Optional[str] = None
    shard_heartbeat: float = 5.0
    shard_workers: Optional[int] = None
    shard_listen: Optional[str] = None
    shard_autotune_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValueError(
                f"unknown screening mode {self.mode!r} "
                f"(expected one of {', '.join(MODES)})")
        if self.encoders is not None:
            # Freeze the bank list so the request stays hashable-ish
            # and safe to share between threads.
            object.__setattr__(self, "encoders", tuple(self.encoders))
        if self.checkpoint is not None and self.mode != "stream":
            raise ValueError("checkpointing applies to streamed "
                             "campaigns (mode='stream') only")
        if self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if self.stream_offset < 0:
            raise ValueError("stream_offset must be >= 0")
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.shard_size is not None and self.shard_size < 1:
            raise ValueError("shard_size must be >= 1")
        if self.shard_heartbeat <= 0:
            raise ValueError("shard_heartbeat must be positive")
        if self.shard_workers is not None and self.shard_workers < 1:
            raise ValueError("shard_workers must be >= 1")
        if self.shard_autotune_s is not None \
                and self.shard_autotune_s <= 0:
            raise ValueError("shard_autotune_s must be positive")

    def with_population(self, population) -> "ScreeningRequest":
        """Copy of this request over a different population.

        The batcher uses this to re-target a client's request at its
        packed slice bookkeeping without touching the policy fields.
        """
        return replace(self, population=population)


__all__ = ["MODES", "ScreeningRequest"]
