"""Structured outcome of one campaign run.

A :class:`CampaignResult` carries the per-die NDFs and verdicts plus
the fleet-level statistics every consumer of the engine needs: yield
loss / test-escape counts against a ground-truth tolerance, pass rates,
section timings and golden-cache counters.  The analysis modules
(:mod:`repro.analysis.yield_model`, :mod:`repro.analysis.multiparam`)
and the Monte Carlo benchmarks consume this object instead of
re-deriving statistics from per-die loops.

The result is also the hand-off point to the fault-diagnosis stage: a
campaign run with ``keep_signatures=True`` retains the fleet's packed
:class:`~repro.core.signature_batch.SignatureBatch`, and
:meth:`CampaignResult.diagnose` matches the failing rows against a
:class:`repro.diagnosis.FaultDictionary` (screen -> diagnose, no
re-simulation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.analysis.yield_model import (
    CutUnit,
    YieldReport,
    yield_report_from_arrays,
)
from repro.campaign.cache import CacheInfo
from repro.core.multi_signature_batch import MultiSignatureBatch
from repro.core.signature_batch import SignatureBatch


@dataclass
class CampaignResult:
    """Verdicts and statistics of one batched test campaign.

    Attributes
    ----------
    ndfs:
        Per-die NDF against the golden signature, in population order.
    threshold:
        NDF decision threshold used for the verdicts (None = no
        decision requested; ``verdicts`` is then None too).
    verdicts:
        Boolean PASS (True) / FAIL (False) per die.
    f0_deviations, q_deviations:
        Ground-truth parameter deviations where the population knows
        them (NaN otherwise, e.g. for catastrophic faults).
    labels:
        One identifier per die (die index, fault label, corner name).
    tolerance:
        Ground-truth spec tolerance used by the yield statistics.
    timing:
        Wall-clock seconds per engine section: always ``total``, plus
        ``golden`` and the stage timings of the batched pipeline
        (``traces``, ``encode``, ``signature``, ``ndf``).  Two paths
        emit extra sections instead: the heterogeneous-grid CUT
        fallback records ``encode+score`` and noise campaigns add a
        ``noise`` stage.
    executor:
        Name of the executor that ran the campaign.
    cache_info:
        Golden-cache counters observed right after the run.
    signature_batch:
        Packed per-die signatures (one row per die, population order)
        when the campaign ran with ``keep_signatures=True``; None
        otherwise.  This is what :meth:`diagnose` matches against a
        fault dictionary.  For a multi-signature campaign this is
        channel 0 of ``multi_signature_batch`` (the channel-0
        contract keeps every single-channel consumer working).
    channel_ndfs, channel_thresholds, channel_verdicts:
        Multi-signature campaigns (``encoders=[...]``) additionally
        carry the full ``(N, K)`` per-channel NDF matrix, one
        threshold per channel and the aligned per-channel verdicts;
        all None for single-channel runs.  Column 0 is bit-identical
        to ``ndfs``/``verdicts``.
    multi_signature_batch:
        The packed K-channel
        :class:`~repro.core.multi_signature_batch.MultiSignatureBatch`
        of a multi-signature campaign run with
        ``keep_signatures=True``; what :meth:`diagnose` matches
        against a multi-channel fault dictionary.
    shard_stats:
        Sharded campaigns (:meth:`CampaignEngine.run_sharded`) attach
        the coordinator's lifecycle counters here -- shards planned /
        dispatched / completed / reassigned, worker count and merge
        seconds; None for every other execution mode.
    """

    ndfs: np.ndarray
    threshold: Optional[float] = None
    verdicts: Optional[np.ndarray] = None
    f0_deviations: Optional[np.ndarray] = None
    q_deviations: Optional[np.ndarray] = None
    labels: Optional[List[str]] = None
    tolerance: Optional[float] = None
    timing: Dict[str, float] = field(default_factory=dict)
    executor: str = "serial"
    cache_info: Optional[CacheInfo] = None
    signature_batch: Optional[SignatureBatch] = None
    channel_ndfs: Optional[np.ndarray] = None
    channel_thresholds: Optional[np.ndarray] = None
    channel_verdicts: Optional[np.ndarray] = None
    multi_signature_batch: Optional[MultiSignatureBatch] = None
    shard_stats: Optional[Dict[str, float]] = None

    def __post_init__(self) -> None:
        self.ndfs = np.asarray(self.ndfs, dtype=float)
        if self.verdicts is not None:
            self.verdicts = np.asarray(self.verdicts, dtype=bool)
            if self.verdicts.shape != self.ndfs.shape:
                raise ValueError("verdicts must align with ndfs")
        if self.channel_ndfs is not None:
            self.channel_ndfs = np.asarray(self.channel_ndfs,
                                           dtype=float)
            if self.channel_ndfs.ndim != 2 \
                    or self.channel_ndfs.shape[0] != self.ndfs.size:
                raise ValueError("channel NDFs must be (N, K)")

    # ------------------------------------------------------------------
    # Basic statistics
    # ------------------------------------------------------------------
    @property
    def num_dies(self) -> int:
        """Population size."""
        return int(self.ndfs.size)

    @property
    def pass_count(self) -> int:
        """Dies whose NDF lies inside the acceptance band."""
        if self.verdicts is None:
            raise ValueError("campaign ran without a decision band")
        return int(np.count_nonzero(self.verdicts))

    @property
    def fail_count(self) -> int:
        """Dies flagged FAIL."""
        return self.num_dies - self.pass_count

    @property
    def pass_rate(self) -> float:
        """PASS fraction (1.0 for an empty population)."""
        if self.num_dies == 0:
            return 1.0
        return self.pass_count / self.num_dies

    @property
    def num_channels(self) -> int:
        """Signature channels carried by this result (1 when plain)."""
        if self.channel_ndfs is None:
            return 1
        return int(self.channel_ndfs.shape[1])

    @property
    def combined_verdicts(self) -> np.ndarray:
        """OR-verdict over the signature channels: FAIL if *any*
        channel flags the die (PASS only when every channel passes).

        For a single-channel campaign this is simply ``verdicts``;
        the extra channels can only tighten the screen, never loosen
        it -- channel 0 remains the production verdict.
        """
        if self.channel_verdicts is not None:
            return np.all(self.channel_verdicts, axis=1)
        if self.verdicts is None:
            raise ValueError("campaign ran without a decision band")
        return self.verdicts

    @property
    def combined_fail_count(self) -> int:
        """Dies flagged FAIL by at least one channel."""
        return int(np.count_nonzero(~self.combined_verdicts))

    def ndf_percentile(self, q: float) -> float:
        """Percentile of the NDF distribution (NaN when empty)."""
        if self.num_dies == 0:
            return float("nan")
        return float(np.percentile(self.ndfs, q))

    def dies_per_second(self) -> float:
        """Throughput of the run (NaN without timing)."""
        total = self.timing.get("total", 0.0)
        if total <= 0.0:
            return float("nan")
        return self.num_dies / total

    # ------------------------------------------------------------------
    # Yield economics (needs ground-truth deviations)
    # ------------------------------------------------------------------
    def yield_report(self, tolerance: Optional[float] = None,
                     threshold: Optional[float] = None) -> YieldReport:
        """Confusion matrix of the campaign against the ground truth.

        Vectorized equivalent of
        :func:`repro.analysis.yield_model.yield_escape_analysis`.
        """
        tolerance = tolerance if tolerance is not None else self.tolerance
        threshold = threshold if threshold is not None else self.threshold
        if tolerance is None or threshold is None:
            raise ValueError("need both a tolerance and a threshold")
        if self.f0_deviations is None:
            raise ValueError(
                "population carries no ground-truth deviations")
        return yield_report_from_arrays(self.f0_deviations, self.ndfs,
                                        float(threshold),
                                        float(tolerance))

    def escape_rate(self, tolerance: Optional[float] = None,
                    threshold: Optional[float] = None) -> float:
        """Fraction of truly-bad dies that passed."""
        return self.yield_report(tolerance, threshold).escape_rate

    def yield_loss_rate(self, tolerance: Optional[float] = None,
                        threshold: Optional[float] = None) -> float:
        """Fraction of truly-good dies that failed."""
        return self.yield_report(tolerance, threshold).yield_loss_rate

    # ------------------------------------------------------------------
    # Diagnosis edge (repro.diagnosis)
    # ------------------------------------------------------------------
    def failing_indices(self) -> np.ndarray:
        """Population indices of the dies flagged FAIL."""
        if self.verdicts is None:
            raise ValueError("campaign ran without a decision band")
        return np.flatnonzero(~self.verdicts)

    def failing_labels(self) -> List[str]:
        """Labels of the dies flagged FAIL (fault names for a
        fault-dictionary population)."""
        if self.labels is None:
            raise ValueError("population carries no labels")
        return [self.labels[i] for i in self.failing_indices()]

    def diagnose(self, dictionary, top_k: int = 3,
                 failing_only: bool = True, metric: str = "ndf"):
        """Match this campaign's dies against a fault dictionary.

        Requires the campaign to have run with
        ``keep_signatures=True`` (the packed batch is the matcher's
        input).  With ``failing_only`` (default) only the FAIL rows
        are diagnosed -- the screen's verdict gates the diagnosis, as
        on a real tester; otherwise every die is matched.  Returns a
        :class:`repro.diagnosis.DiagnosisResult`.

        A :class:`repro.diagnosis.MultiFaultDictionary` matches
        against the retained multi-channel batch instead (the
        campaign must have run with the same ``encoders`` list the
        dictionary was compiled with); distances then combine across
        channels, which is what splits single-signature ambiguity
        groups.
        """
        from repro.diagnosis import (
            DictionaryMatcher,
            MultiDictionaryMatcher,
            MultiFaultDictionary,
        )

        if isinstance(dictionary, MultiFaultDictionary):
            batch = self.multi_signature_batch
            if batch is None and dictionary.num_channels == 1 \
                    and self.signature_batch is not None:
                # A one-channel "multi" dictionary (the search's
                # degenerate outcome) matches plain campaign results.
                batch = MultiSignatureBatch([self.signature_batch])
            if batch is None:
                raise ValueError(
                    "multi-channel diagnosis needs a multi-signature "
                    "campaign run with keep_signatures=True (pass "
                    "encoders=dictionary.encoders to engine.run)")
            matcher = MultiDictionaryMatcher(dictionary)
        else:
            if self.signature_batch is None:
                raise ValueError(
                    "campaign ran without keep_signatures=True; re-run "
                    "with engine.run(..., keep_signatures=True) to "
                    "retain the packed signatures diagnosis needs")
            batch = self.signature_batch
            matcher = DictionaryMatcher(dictionary)
        labels = self.labels
        if failing_only:
            indices = self.failing_indices()
            batch = batch.select(indices)
            if labels is not None:
                labels = [labels[i] for i in indices]
        return matcher.match(batch, top_k=top_k, metric=metric,
                             die_labels=labels)

    def slice(self, lo: int, hi: int) -> "CampaignResult":
        """Row slice ``[lo, hi)`` of this result, one die per row.

        The scatter half of request coalescing
        (:mod:`repro.service.batcher`): a combined multi-client run is
        sliced back into per-client results.  Per-die arrays (NDFs,
        verdicts, deviations, labels, packed signatures, channel
        matrices) are sliced; campaign-wide fields (threshold,
        tolerance, timing, executor, cache counters) are shared, since
        the slice came from that one run.
        """
        n = self.num_dies
        lo, hi = int(lo), int(hi)
        if not 0 <= lo <= hi <= n:
            raise ValueError(f"slice [{lo}, {hi}) outside 0..{n}")
        indices = np.arange(lo, hi)

        def cut(array):
            return None if array is None \
                else np.ascontiguousarray(array[lo:hi])

        return CampaignResult(
            ndfs=cut(self.ndfs), threshold=self.threshold,
            verdicts=cut(self.verdicts),
            f0_deviations=cut(self.f0_deviations),
            q_deviations=cut(self.q_deviations),
            labels=(None if self.labels is None
                    else list(self.labels[lo:hi])),
            tolerance=self.tolerance, timing=dict(self.timing),
            executor=self.executor, cache_info=self.cache_info,
            signature_batch=(None if self.signature_batch is None
                             else self.signature_batch.select(indices)),
            channel_ndfs=cut(self.channel_ndfs),
            channel_thresholds=self.channel_thresholds,
            channel_verdicts=cut(self.channel_verdicts),
            multi_signature_batch=(
                None if self.multi_signature_batch is None
                else self.multi_signature_batch.select(indices)))

    def to_units(self) -> List[CutUnit]:
        """Per-die view for the legacy list-based yield tooling."""
        if self.f0_deviations is None:
            raise ValueError(
                "population carries no ground-truth deviations")
        return [CutUnit(float(d), float(v))
                for d, v in zip(self.f0_deviations, self.ndfs)]

    # ------------------------------------------------------------------
    def summary(self) -> str:
        """Human-readable one-block summary (CLI / report output)."""
        lines = [f"dies:        {self.num_dies}",
                 f"executor:    {self.executor}"]
        if self.num_dies:
            lines += [
                f"NDF mean:    {float(np.mean(self.ndfs)):.4f}",
                f"NDF p95:     {self.ndf_percentile(95):.4f}",
                f"NDF max:     {float(np.max(self.ndfs)):.4f}",
            ]
        if self.verdicts is not None:
            lines.append(
                f"verdicts:    {self.pass_count} PASS / "
                f"{self.fail_count} FAIL "
                f"(threshold {self.threshold:.4f})")
        if self.channel_verdicts is not None:
            for k in range(self.num_channels):
                fails = int(np.count_nonzero(
                    ~self.channel_verdicts[:, k]))
                lines.append(
                    f"  channel {k}:  {self.num_dies - fails} PASS / "
                    f"{fails} FAIL "
                    f"(threshold {self.channel_thresholds[k]:.4f})")
            lines.append(
                f"combined:    "
                f"{self.num_dies - self.combined_fail_count} PASS / "
                f"{self.combined_fail_count} FAIL (OR over "
                f"{self.num_channels} channels)")
        if (self.tolerance is not None and self.threshold is not None
                and self.f0_deviations is not None and self.num_dies
                and not np.any(np.isnan(self.f0_deviations))):
            report = self.yield_report()
            lines.append(
                f"economics:   {report.yield_loss} overkill / "
                f"{report.escapes} escapes "
                f"(tolerance ±{self.tolerance:.0%})")
        total = self.timing.get("total")
        if total:
            lines.append(f"throughput:  {self.dies_per_second():,.0f} "
                         f"dies/s ({total * 1e3:.1f} ms total)")
        if self.cache_info is not None:
            lines.append(f"golden cache: {self.cache_info}")
        return "\n".join(lines)


@dataclass
class NoiseCampaignResult:
    """Outcome of a Section IV-C noise campaign: N dies x R repeats.

    Each die is signatured ``repeats`` times under fresh measurement
    noise (deterministically seeded per die); the matrix of NDFs
    answers the paper's robustness question -- how often a die's noisy
    measurement crosses the decision threshold.

    Attributes
    ----------
    ndf_matrix:
        ``(N, repeats)`` NDFs against the noise-free golden signature.
    threshold:
        Decision threshold used for detection statistics (None when the
        campaign ran without a band).
    labels:
        One identifier per die.
    tolerance:
        Ground-truth tolerance the threshold was calibrated for.
    timing:
        Wall-clock seconds per engine section.
    executor:
        Name of the executor that ran the campaign.
    """

    ndf_matrix: np.ndarray
    threshold: Optional[float] = None
    labels: Optional[List[str]] = None
    tolerance: Optional[float] = None
    timing: Dict[str, float] = field(default_factory=dict)
    executor: str = "serial"

    def __post_init__(self) -> None:
        self.ndf_matrix = np.atleast_2d(
            np.asarray(self.ndf_matrix, dtype=float))

    @property
    def num_dies(self) -> int:
        """Population size N."""
        return int(self.ndf_matrix.shape[0])

    @property
    def repeats(self) -> int:
        """Noisy measurements per die."""
        return int(self.ndf_matrix.shape[1])

    def detection_rates(self) -> np.ndarray:
        """Per-die fraction of noisy measurements flagged FAIL.

        Matches :meth:`repro.core.testflow.SignatureTester.
        detection_rate`: a measurement detects when its NDF exceeds
        the threshold.
        """
        if self.threshold is None:
            raise ValueError("noise campaign ran without a decision "
                             "band")
        return np.mean(self.ndf_matrix > self.threshold, axis=1)

    def mean_ndfs(self) -> np.ndarray:
        """Per-die NDF mean over the noise repeats."""
        return np.mean(self.ndf_matrix, axis=1)

    def summary(self) -> str:
        """Human-readable one-block summary (CLI / report output)."""
        lines = [f"dies:        {self.num_dies} x {self.repeats} "
                 f"noisy repeats",
                 f"executor:    {self.executor}"]
        if self.ndf_matrix.size:
            lines.append(
                f"NDF mean:    {float(np.mean(self.ndf_matrix)):.4f}")
            lines.append(
                f"NDF p95:     "
                f"{float(np.percentile(self.ndf_matrix, 95)):.4f}")
        if self.threshold is not None and self.ndf_matrix.size:
            rates = self.detection_rates()
            lines.append(
                f"detection:   mean {float(np.mean(rates)):.1%} / "
                f"max {float(np.max(rates)):.1%} "
                f"(threshold {self.threshold:.4f})")
        total = self.timing.get("total")
        if total:
            lines.append(f"throughput:  "
                         f"{self.ndf_matrix.size / total:,.0f} "
                         f"measurements/s ({total * 1e3:.1f} ms total)")
        return "\n".join(lines)
