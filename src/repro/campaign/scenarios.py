"""Population builders: what a campaign iterates over.

A campaign screens one of four population kinds:

* :class:`SpecPopulation` -- N Biquad design points (Monte Carlo dies,
  deviation sweeps, parameter grids, corner lists).  This is the
  vectorized fast path: the closed-form transfer of all N dies
  broadcasts per tone and the whole ``(N, samples)`` trace stack
  synthesizes in one buffered pass
  (:func:`repro.campaign.batch.batch_biquad_traces`) -- no per-die
  filter or signal objects exist anywhere.
* :class:`CutListPopulation` -- N arbitrary CUT objects.  Fault
  dictionaries and other same-topology linear netlist stacks solve
  through one batched MNA sweep per tone frequency
  (:func:`repro.campaign.batch.batch_netlist_traces`); heterogeneous
  cut lists fall back to per-CUT traces, and encoding/scoring always
  run batched.
* :class:`EncoderPopulation` -- one fault-free CUT observed through N
  varied monitor banks (process Monte Carlo, temperature corners).  The
  trace is computed once and re-encoded per bank.
* :class:`TracePopulation` -- N already-measured response traces on the
  shared capture grid (instrument dumps, transient simulations).  Only
  the encode/signature/NDF back half runs; with a
  :class:`~repro.campaign.executors.SharedMemoryExecutor` the stack is
  published once instead of pickled chunk by chunk.

All Monte Carlo builders use :class:`numpy.random.SeedSequence` spawning
for per-die seeding: die ``i`` of seed ``s`` draws the same parameters
regardless of the population size or of how the executor chunks the
work.  For fleets larger than memory, :func:`stream_montecarlo_dies`
yields the same dies as :func:`montecarlo_dies` -- same seeds, same
order -- in bounded-size :class:`SpecPopulation` chunks that a
streaming campaign consumes one at a time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.zones import ZoneEncoder
from repro.devices.mos_model import NMOS_65NM
from repro.devices.process import MonteCarloSampler
from repro.devices.temperature import at_temperature
from repro.filters.biquad import BiquadFilter, BiquadSpec
from repro.filters.faults import Fault, catastrophic_fault_universe
from repro.filters.towthomas import TowThomasValues
from repro.monitor.comparator import MonitorBoundary
from repro.monitor.configurations import table1_bank
from repro.monitor.montecarlo import bank_samples


@dataclass
class SpecPopulation:
    """N Biquad design points plus per-die ground-truth metadata."""

    specs: List[BiquadSpec]
    f0_deviations: np.ndarray
    q_deviations: np.ndarray
    labels: List[str]

    def __post_init__(self) -> None:
        n = len(self.specs)
        self.f0_deviations = np.asarray(self.f0_deviations, dtype=float)
        self.q_deviations = np.asarray(self.q_deviations, dtype=float)
        if (self.f0_deviations.shape != (n,)
                or self.q_deviations.shape != (n,)
                or len(self.labels) != n):
            raise ValueError("metadata must align with the spec list")

    def __len__(self) -> int:
        return len(self.specs)

    def cuts(self) -> List[BiquadFilter]:
        """Behavioural CUT per design point (for the per-die fallback)."""
        return [BiquadFilter(s) for s in self.specs]


@dataclass
class CutListPopulation:
    """N arbitrary CUT objects (anything with ``lissajous``/``response``)."""

    cuts: List[object]
    labels: List[str]

    def __post_init__(self) -> None:
        if len(self.labels) != len(self.cuts):
            raise ValueError("labels must align with the cut list")

    def __len__(self) -> int:
        return len(self.cuts)


@dataclass
class TracePopulation:
    """N captured response traces ``(N, samples)`` on the shared grid.

    ``y_stack`` rows are Y-channel samples on the campaign's capture
    grid (the X channel is the shared stimulus).  This is the entry
    point for screening *measured* waveforms: no CUT model is
    evaluated, only the encode -> signature -> NDF back half runs.
    """

    y_stack: np.ndarray
    labels: List[str]

    def __post_init__(self) -> None:
        self.y_stack = np.atleast_2d(np.asarray(self.y_stack,
                                                dtype=float))
        if len(self.labels) != self.y_stack.shape[0]:
            raise ValueError("labels must align with the trace stack")

    def __len__(self) -> int:
        return self.y_stack.shape[0]


def trace_population(y_stack: np.ndarray,
                     labels: Optional[Sequence[str]] = None
                     ) -> TracePopulation:
    """Wrap a measured ``(N, samples)`` stack as a population."""
    y_stack = np.atleast_2d(np.asarray(y_stack, dtype=float))
    if labels is None:
        labels = [f"trace{i:05d}" for i in range(y_stack.shape[0])]
    return TracePopulation(y_stack, list(labels))


@dataclass
class EncoderPopulation:
    """N varied zone encoders observing one fault-free CUT."""

    encoders: List[ZoneEncoder]
    labels: List[str]

    def __post_init__(self) -> None:
        if len(self.labels) != len(self.encoders):
            raise ValueError("labels must align with the encoder list")

    def __len__(self) -> int:
        return len(self.encoders)


# ----------------------------------------------------------------------
# Spec population builders
# ----------------------------------------------------------------------
def _die_population(golden_spec: BiquadSpec, children,
                    sigma_f0: float, sigma_q: float,
                    first_index: int) -> SpecPopulation:
    """Dies drawn from spawned seed children, labelled globally."""
    count = len(children)
    f0_devs = np.empty(count)
    q_devs = np.empty(count)
    for i, child in enumerate(children):
        rng = np.random.default_rng(child)
        f0_devs[i] = rng.normal(0.0, sigma_f0) if sigma_f0 > 0 else 0.0
        q_devs[i] = rng.normal(0.0, sigma_q) if sigma_q > 0 else 0.0
    specs = [golden_spec.with_f0_deviation(float(f)).with_q_deviation(
        float(q)) for f, q in zip(f0_devs, q_devs)]
    labels = [f"die{first_index + i:05d}" for i in range(count)]
    return SpecPopulation(specs, f0_devs, q_devs, labels)


def montecarlo_dies(golden_spec: BiquadSpec, count: int,
                    sigma_f0: float = 0.03, sigma_q: float = 0.0,
                    seed: int = 0) -> SpecPopulation:
    """Process-spread production dies, deterministically seeded.

    Die ``i`` draws from ``SeedSequence(seed).spawn()[i]``, so its
    deviations are a pure function of ``(seed, i)`` -- growing the
    population or re-chunking the executor never reshuffles dies.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    children = np.random.SeedSequence(seed).spawn(count)
    return _die_population(golden_spec, children, sigma_f0, sigma_q, 0)


def seed_children(seed: int, lo: int, hi: int) -> List:
    """Seed children ``lo..hi`` of root ``seed``, by global index.

    ``SeedSequence.spawn`` numbers its children globally -- child
    ``i`` is ``SeedSequence(entropy=seed, spawn_key=(i,))`` no matter
    how the spawn calls were batched -- so any contiguous range of a
    fleet's per-die seeds can be reconstructed directly.  This is what
    makes checkpoint/resume bit-identical: a campaign resumed at die
    ``k`` draws exactly the dies the uninterrupted run would have
    (equivalence is locked down by
    ``tests/robustness/test_checkpoint_resume.py``).
    """
    entropy = np.random.SeedSequence(seed).entropy
    return [np.random.SeedSequence(entropy=entropy, spawn_key=(i,))
            for i in range(lo, hi)]


def stream_montecarlo_dies(golden_spec: BiquadSpec, count: int,
                           chunk_size: int = 1024,
                           sigma_f0: float = 0.03, sigma_q: float = 0.0,
                           seed: int = 0, start: int = 0):
    """Generator form of :func:`montecarlo_dies` for bounded memory.

    Yields :class:`SpecPopulation` chunks of at most ``chunk_size``
    dies.  :class:`numpy.random.SeedSequence` numbers its spawned
    children across successive ``spawn`` calls, so die ``i`` of the
    stream draws from exactly the same child as die ``i`` of the
    monolithic builder -- a streamed campaign's verdict vector is
    bit-identical to the one-shot run, while only ``chunk_size``
    specs ever exist at once.

    ``start`` begins the stream mid-fleet: dies ``start..count-1``
    are yielded with the same seeds and labels they would have had
    from die 0 (children reconstruct by global index via
    :func:`seed_children`).  A resumed checkpointed campaign uses
    this to skip the already-screened prefix without re-drawing it.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    if chunk_size < 1:
        raise ValueError("chunk size must be >= 1")
    if start < 0:
        raise ValueError("start must be non-negative")
    emitted = start
    while emitted < count:
        take = min(chunk_size, count - emitted)
        children = seed_children(seed, emitted, emitted + take)
        yield _die_population(golden_spec, children, sigma_f0, sigma_q,
                              emitted)
        emitted += take


def deviation_sweep_population(golden_spec: BiquadSpec,
                               deviations: Sequence[float],
                               parameter: str = "f0") -> SpecPopulation:
    """The Fig. 8 sweep as a population (one die per deviation)."""
    devs = [float(d) for d in deviations]
    if parameter == "f0":
        specs = [golden_spec.with_f0_deviation(d) for d in devs]
        f0_devs, q_devs = devs, [0.0] * len(devs)
    elif parameter == "q":
        specs = [golden_spec.with_q_deviation(d) for d in devs]
        f0_devs, q_devs = [0.0] * len(devs), devs
    elif parameter == "gain":
        specs = [golden_spec.with_gain_deviation(d) for d in devs]
        f0_devs, q_devs = [0.0] * len(devs), [0.0] * len(devs)
    else:
        raise ValueError(f"unknown parameter {parameter!r}")
    labels = [f"{parameter}{d:+.4f}" for d in devs]
    return SpecPopulation(specs, np.asarray(f0_devs),
                          np.asarray(q_devs), labels)


def parameter_grid(golden_spec: BiquadSpec,
                   f0_deviations: Sequence[float],
                   q_deviations: Sequence[float]) -> SpecPopulation:
    """The (f0, Q) deviation grid, row-major in Q (multiparam layout)."""
    f0_axis = [float(d) for d in f0_deviations]
    q_axis = [float(d) for d in q_deviations]
    specs = []
    f0_devs = []
    q_devs = []
    labels = []
    for q_dev in q_axis:
        for f0_dev in f0_axis:
            specs.append(golden_spec.with_f0_deviation(f0_dev)
                         .with_q_deviation(q_dev))
            f0_devs.append(f0_dev)
            q_devs.append(q_dev)
            labels.append(f"f0{f0_dev:+.4f}_q{q_dev:+.4f}")
    return SpecPopulation(specs, np.asarray(f0_devs),
                          np.asarray(q_devs), labels)


# ----------------------------------------------------------------------
# Generic-CUT population builders
# ----------------------------------------------------------------------
def fault_dictionary(values: TowThomasValues,
                     faults: Optional[Sequence[Fault]] = None
                     ) -> Tuple[CutListPopulation, List[Fault]]:
    """Every catastrophic open/short of the Tow-Thomas CUT.

    Returns the population plus the aligned fault list (reports want
    the fault objects back next to the verdicts).
    """
    fault_list = list(faults) if faults is not None \
        else catastrophic_fault_universe()
    cuts = [f.apply_to_biquad(values) for f in fault_list]
    return CutListPopulation(cuts, [f.label for f in fault_list]), fault_list


# ----------------------------------------------------------------------
# Encoder population builders
# ----------------------------------------------------------------------
def montecarlo_monitor_banks(bank: Sequence[MonitorBoundary],
                             num_dies: int,
                             sampler: Optional[MonteCarloSampler] = None,
                             seed: int = 0) -> EncoderPopulation:
    """Process+mismatch-varied copies of a monitor bank, one per die."""
    sampler = sampler if sampler is not None \
        else MonteCarloSampler(rng=seed)
    encoders = [ZoneEncoder(b)
                for b in bank_samples(bank, sampler, num_dies)]
    labels = [f"mcdie{i:05d}" for i in range(num_dies)]
    return EncoderPopulation(encoders, labels)


def temperature_corners(temperatures_k: Sequence[float]
                        ) -> EncoderPopulation:
    """Table I banks re-evaluated at junction-temperature corners."""
    encoders = []
    labels = []
    for t in temperatures_k:
        params = at_temperature(NMOS_65NM, float(t))
        encoders.append(ZoneEncoder(table1_bank(params)))
        labels.append(f"{float(t) - 273.15:+.0f}C")
    return EncoderPopulation(encoders, labels)
