"""Vectorized kernels of the campaign engine.

The per-die test flow (:class:`repro.core.testflow.SignatureTester`)
evaluates one trace, one zone encoding and one capture at a time.  At
fleet scale the same work is batched over stacked ``(N, samples)``
arrays and a packed signature representation:

* :func:`batch_multitone_eval` evaluates N same-frequency multitones on
  a shared time grid in one broadcast pass;
* :func:`batch_responses` propagates one stimulus through N linear CUTs
  (exact steady state, tone by tone);
* :func:`batch_codes` pushes the whole ``(N, samples)`` point stack
  through the zone encoder at once -- monitor banks take the
  shared-branch fast path of
  :func:`repro.monitor.bank_encode.monitor_bank_codes`, which computes
  each model card's EKV term once per gate signal instead of once per
  device;
* :func:`batch_extract` run-length extracts the whole code stack into
  one packed :class:`repro.core.signature_batch.SignatureBatch` (CSR
  ``codes``/``durations``/``row_offsets``) in a single pass -- per-die
  :class:`~repro.core.signature.Signature` objects exist only at the
  diagnosis edges;
* :meth:`SignatureBatch.ndf_to` scores every row against the golden in
  one flat kernel (no per-die ``np.unique`` breakpoint merges);
  :func:`batch_signatures`/:func:`batch_ndf` remain as the unpacked
  per-die reference implementations that benchmarks and equivalence
  tests compare against.

The floating-point expression order of the per-die path is replicated
exactly (same offset-then-tone accumulation, same ``w*t + phase``
association, same run-length subtractions and NDF interval sums), so a
batched campaign with ``refine`` disabled produces **bit-identical**
codes, signatures, NDFs and verdicts to a serial
:class:`SignatureTester` with ``refine=False``.  The campaign
equivalence tests assert this.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

import numpy as np

from repro.core.ndf import ndf
from repro.core.signature import Signature
from repro.core.signature_batch import SignatureBatch
from repro.core.zones import ZoneEncoder
from repro.monitor.bank_encode import monitor_bank_codes
from repro.signals.multitone import Multitone


def sample_times(period: float, samples_per_period: int) -> np.ndarray:
    """The uniform capture grid ``[0, period)`` of the test flow.

    Matches :meth:`repro.signals.waveform.Waveform.from_function` with
    ``t_start=0`` bit for bit, so batched and per-die captures land on
    the same instants.
    """
    if samples_per_period < 2:
        raise ValueError("need at least 2 samples per period")
    return period * np.arange(samples_per_period) / samples_per_period


def batch_multitone_eval(signals: Sequence[Multitone],
                         times: np.ndarray) -> np.ndarray:
    """Evaluate N multitones sharing tone frequencies -> ``(N, T)``.

    All signals must carry the same tone count and, tone for tone, the
    same frequency (the campaign populations are LTI responses to one
    stimulus, so this holds by construction).  The accumulation order
    replicates :meth:`Multitone.__call__` exactly: start from the DC
    offset, then add tones in sequence.
    """
    times = np.asarray(times, dtype=float)
    if not signals:
        return np.empty((0, times.size))
    num_tones = len(signals[0].tones)
    for signal in signals:
        if len(signal.tones) != num_tones:
            raise ValueError("signals must share the tone layout")
    offsets = np.asarray([s.offset for s in signals])
    total = np.repeat(offsets[:, None], times.size, axis=1)
    for k in range(num_tones):
        freqs = np.asarray([s.tones[k].freq_hz for s in signals])
        if np.any(freqs != freqs[0]):
            raise ValueError(
                f"tone {k} frequencies differ across the population; "
                "batched evaluation needs a common tone grid")
        w_t = 2.0 * math.pi * freqs[0] * times
        amps = np.asarray([s.tones[k].amplitude for s in signals])
        phases = np.asarray([s.tones[k].phase_rad for s in signals])
        total = total + amps[:, None] * np.sin(w_t[None, :]
                                               + phases[:, None])
    return total


def batch_responses(cuts: Sequence, stimulus: Multitone) -> List[Multitone]:
    """Exact steady-state output multitone of each linear CUT.

    Every CUT must expose ``response(stimulus) -> Multitone`` (the
    behavioural Biquad does); the per-CUT work is a handful of complex
    transfer evaluations, so a Python loop here is cheap -- the heavy
    sampling happens in :func:`batch_multitone_eval`.
    """
    return [cut.response(stimulus) for cut in cuts]


def batch_codes(encoder: ZoneEncoder, x: np.ndarray,
                y: np.ndarray) -> np.ndarray:
    """Zone codes of a stacked point set; ``x`` broadcasts over rows.

    Monitor banks encode through the shared-branch fast path (one EKV
    evaluation per model card per gate signal, with the shared ``x``
    kept one-dimensional); any other boundary family falls back to the
    generic per-boundary evaluation on a broadcast view.  Both produce
    bit-identical codes to ``encoder.code`` point by point.
    """
    y = np.asarray(y, dtype=float)
    x = np.asarray(x, dtype=float)
    fast = monitor_bank_codes(encoder, x, y)
    if fast is not None:
        return np.asarray(fast, dtype=np.int64)
    x = np.broadcast_to(x, y.shape)
    return np.asarray(encoder.code(x, y), dtype=np.int64)


def batch_extract(times: np.ndarray, codes: np.ndarray,
                  period: float) -> SignatureBatch:
    """One-pass packed run-length extraction of a whole code stack."""
    return SignatureBatch.from_code_stack(times, codes, period)


def batch_signatures(times: np.ndarray, codes: np.ndarray,
                     period: float) -> List[Signature]:
    """Per-die :class:`Signature` objects for a code stack.

    Diagnosis-edge convenience: packs the stack once
    (:func:`batch_extract`) and unpacks every row.  Hot paths should
    stay on the :class:`SignatureBatch` instead.
    """
    return batch_extract(times, codes, period).to_signatures()


def batch_ndf(signatures: Sequence[Signature],
              golden: Signature) -> np.ndarray:
    """Per-die reference NDF loop (exact, unpacked).

    Kept as the equivalence baseline for
    :meth:`SignatureBatch.ndf_to`; campaign hot paths use the packed
    kernel.
    """
    return np.asarray([ndf(s, golden) for s in signatures], dtype=float)


def trace_population_ndf(encoder: ZoneEncoder, times: np.ndarray,
                         x: np.ndarray, y_stack: np.ndarray,
                         period: float, golden: Signature,
                         signatures_out: Optional[list] = None
                         ) -> np.ndarray:
    """Encode + extract + score a stacked trace population in one call.

    ``y_stack`` is ``(N, T)``; ``x`` is shared across the population.
    The whole pipeline stays packed (codes -> CSR batch -> fleet NDF);
    per-die signatures are only unpacked into ``signatures_out`` when a
    diagnosis path asks for them.
    """
    codes = batch_codes(encoder, x, y_stack)
    batch = batch_extract(times, codes, period)
    if signatures_out is not None:
        signatures_out.extend(batch.to_signatures())
    return batch.ndf_to(golden)
