"""Vectorized kernels of the campaign engine.

The per-die test flow (:class:`repro.core.testflow.SignatureTester`)
evaluates one trace, one zone encoding and one capture at a time.  At
fleet scale the same work is batched over stacked ``(N, samples)``
arrays:

* :func:`batch_multitone_eval` evaluates N same-frequency multitones on
  a shared time grid in one broadcast pass;
* :func:`batch_responses` propagates one stimulus through N linear CUTs
  (exact steady state, tone by tone);
* :func:`batch_codes` pushes the whole ``(N, samples)`` point stack
  through the zone encoder at once;
* :func:`batch_signatures` run-length extracts one signature per row,
  sharing the NumPy kernel of
  :func:`repro.core.signature.run_length_starts`;
* :func:`batch_ndf` scores every signature against the golden.

The floating-point expression order of the per-die path is replicated
exactly (same offset-then-tone accumulation, same ``w*t + phase``
association), so a batched campaign with ``refine`` disabled produces
**bit-identical** codes -- and therefore identical signatures, NDFs and
verdicts -- to a serial :class:`SignatureTester` with ``refine=False``.
The campaign equivalence tests assert this.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

import numpy as np

from repro.core.ndf import ndf
from repro.core.signature import Signature
from repro.core.zones import ZoneEncoder
from repro.signals.multitone import Multitone


def sample_times(period: float, samples_per_period: int) -> np.ndarray:
    """The uniform capture grid ``[0, period)`` of the test flow.

    Matches :meth:`repro.signals.waveform.Waveform.from_function` with
    ``t_start=0`` bit for bit, so batched and per-die captures land on
    the same instants.
    """
    if samples_per_period < 2:
        raise ValueError("need at least 2 samples per period")
    return period * np.arange(samples_per_period) / samples_per_period


def batch_multitone_eval(signals: Sequence[Multitone],
                         times: np.ndarray) -> np.ndarray:
    """Evaluate N multitones sharing tone frequencies -> ``(N, T)``.

    All signals must carry the same tone count and, tone for tone, the
    same frequency (the campaign populations are LTI responses to one
    stimulus, so this holds by construction).  The accumulation order
    replicates :meth:`Multitone.__call__` exactly: start from the DC
    offset, then add tones in sequence.
    """
    times = np.asarray(times, dtype=float)
    if not signals:
        return np.empty((0, times.size))
    num_tones = len(signals[0].tones)
    for signal in signals:
        if len(signal.tones) != num_tones:
            raise ValueError("signals must share the tone layout")
    offsets = np.asarray([s.offset for s in signals])
    total = np.repeat(offsets[:, None], times.size, axis=1)
    for k in range(num_tones):
        freqs = np.asarray([s.tones[k].freq_hz for s in signals])
        if np.any(freqs != freqs[0]):
            raise ValueError(
                f"tone {k} frequencies differ across the population; "
                "batched evaluation needs a common tone grid")
        w_t = 2.0 * math.pi * freqs[0] * times
        amps = np.asarray([s.tones[k].amplitude for s in signals])
        phases = np.asarray([s.tones[k].phase_rad for s in signals])
        total = total + amps[:, None] * np.sin(w_t[None, :]
                                               + phases[:, None])
    return total


def batch_responses(cuts: Sequence, stimulus: Multitone) -> List[Multitone]:
    """Exact steady-state output multitone of each linear CUT.

    Every CUT must expose ``response(stimulus) -> Multitone`` (the
    behavioural Biquad does); the per-CUT work is a handful of complex
    transfer evaluations, so a Python loop here is cheap -- the heavy
    sampling happens in :func:`batch_multitone_eval`.
    """
    return [cut.response(stimulus) for cut in cuts]


def batch_codes(encoder: ZoneEncoder, x: np.ndarray,
                y: np.ndarray) -> np.ndarray:
    """Zone codes of a stacked point set; ``x`` broadcasts over rows."""
    y = np.asarray(y, dtype=float)
    x = np.broadcast_to(np.asarray(x, dtype=float), y.shape)
    return np.asarray(encoder.code(x, y), dtype=np.int64)


def batch_signatures(times: np.ndarray, codes: np.ndarray,
                     period: float) -> List[Signature]:
    """One run-length-extracted signature per row of ``codes``.

    Row extraction shares :func:`Signature.from_samples`' NumPy
    run-length kernel; the Python-level cost per die is proportional to
    the number of zone *changes*, not samples.
    """
    codes = np.atleast_2d(np.asarray(codes))
    return [Signature.from_samples(times, row, period) for row in codes]


def batch_ndf(signatures: Sequence[Signature],
              golden: Signature) -> np.ndarray:
    """Exact NDF of every signature against the golden reference."""
    return np.asarray([ndf(s, golden) for s in signatures], dtype=float)


def trace_population_ndf(encoder: ZoneEncoder, times: np.ndarray,
                         x: np.ndarray, y_stack: np.ndarray,
                         period: float, golden: Signature,
                         signatures_out: Optional[list] = None
                         ) -> np.ndarray:
    """Encode + extract + score a stacked trace population in one call.

    ``y_stack`` is ``(N, T)``; ``x`` is shared across the population.
    When ``signatures_out`` is given, the extracted signatures are
    appended to it (diagnosis paths want them; the yield paths only
    need the NDFs).
    """
    codes = batch_codes(encoder, x, y_stack)
    signatures = batch_signatures(times, codes, period)
    if signatures_out is not None:
        signatures_out.extend(signatures)
    return batch_ndf(signatures, golden)
