"""Vectorized kernels of the campaign engine.

The per-die test flow (:class:`repro.core.testflow.SignatureTester`)
evaluates one trace, one zone encoding and one capture at a time.  At
fleet scale the same work is batched over stacked ``(N, samples)``
arrays and a packed signature representation:

* :func:`batch_biquad_traces` synthesizes the whole ``(N, T)`` response
  stack of a Biquad spec population in one pass: the closed-form
  ``H(j w)`` of every die evaluates as a real-array broadcast
  (:func:`repro.filters.biquad.batch_transfer`, replicating Python's
  scalar complex arithmetic bit for bit) and the tone accumulation of
  :func:`batch_through_eval` reuses one scratch buffer -- no per-die
  ``BiquadFilter``/``Multitone`` objects on the hot path;
* :func:`batch_netlist_traces` does the same for stacks of
  same-topology linear netlist CUTs (fault dictionaries): one
  :func:`repro.circuits.ac.ac_analysis_batch` sweep solves every
  circuit per frequency through a single batched ``np.linalg.solve``,
  one :func:`repro.circuits.dc.dc_solve_batch` pass supplies the DC
  gains;
* :func:`batch_multitone_eval` evaluates N same-frequency multitones on
  a shared time grid in one broadcast pass, and
  :func:`batch_responses` propagates one stimulus through N linear CUTs
  object by object -- both retained as the per-die reference the
  equivalence tests and benchmarks compare the fused kernels against;
* :func:`batch_codes` pushes the whole ``(N, samples)`` point stack
  through the zone encoder at once -- monitor banks take the fused
  shared-branch path of
  :func:`repro.monitor.bank_encode.monitor_bank_codes` (one in-place
  EKV table per model card per gate signal, per-boundary balances in
  reused scratch, packed code accumulation);
* :func:`batch_extract` run-length extracts the whole code stack into
  one packed :class:`repro.core.signature_batch.SignatureBatch` (CSR
  ``codes``/``durations``/``row_offsets``) in a single pass -- per-die
  :class:`~repro.core.signature.Signature` objects exist only at the
  diagnosis edges;
* :meth:`SignatureBatch.ndf_to` scores every row against the golden in
  one flat kernel (no per-die ``np.unique`` breakpoint merges);
  :func:`batch_signatures`/:func:`batch_ndf` remain as the unpacked
  per-die reference implementations.

The floating-point expression order of the per-die path is replicated
exactly (same complex quotient and ``hypot``/``arctan2`` rounding in
the transfer evaluation, same offset-then-tone accumulation, same
``w*t + phase`` association, same run-length subtractions and NDF
interval sums), so a batched campaign with ``refine`` disabled produces
**bit-identical** traces, codes, signatures, NDFs and verdicts to a
serial :class:`SignatureTester` with ``refine=False``.  The campaign
equivalence tests assert this for every population kind and executor.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.ndf import ndf
from repro.core.scratch import SCRATCH
from repro.core.signature import Signature
from repro.core.signature_batch import SignatureBatch
from repro.core.zones import ZoneEncoder
from repro.filters.biquad import (
    BiquadSpec,
    batch_transfer_arrays,
    spec_arrays,
)
from repro.monitor.bank_encode import monitor_bank_codes
from repro.signals.multitone import Multitone


def sample_times(period: float, samples_per_period: int) -> np.ndarray:
    """The uniform capture grid ``[0, period)`` of the test flow.

    Matches :meth:`repro.signals.waveform.Waveform.from_function` with
    ``t_start=0`` bit for bit, so batched and per-die captures land on
    the same instants.
    """
    if samples_per_period < 2:
        raise ValueError("need at least 2 samples per period")
    return period * np.arange(samples_per_period) / samples_per_period


def batch_multitone_eval(signals: Sequence[Multitone],
                         times: np.ndarray) -> np.ndarray:
    """Evaluate N multitones sharing tone frequencies -> ``(N, T)``.

    All signals must carry the same tone count and, tone for tone, the
    same frequency (the campaign populations are LTI responses to one
    stimulus, so this holds by construction).  The accumulation order
    replicates :meth:`Multitone.__call__` exactly: start from the DC
    offset, then add tones in sequence.  This is the per-die-object
    reference path; spec populations synthesize through
    :func:`batch_biquad_traces` instead.
    """
    times = np.asarray(times, dtype=float)
    if not signals:
        return np.empty((0, times.size))
    num_tones = len(signals[0].tones)
    for signal in signals:
        if len(signal.tones) != num_tones:
            raise ValueError("signals must share the tone layout")
    offsets = np.asarray([s.offset for s in signals])
    total = np.repeat(offsets[:, None], times.size, axis=1)
    for k in range(num_tones):
        freqs = np.asarray([s.tones[k].freq_hz for s in signals])
        if np.any(freqs != freqs[0]):
            raise ValueError(
                f"tone {k} frequencies differ across the population; "
                "batched evaluation needs a common tone grid")
        w_t = 2.0 * math.pi * freqs[0] * times
        amps = np.asarray([s.tones[k].amplitude for s in signals])
        phases = np.asarray([s.tones[k].phase_rad for s in signals])
        total = total + amps[:, None] * np.sin(w_t[None, :]
                                               + phases[:, None])
    return total


def batch_through_eval(stimulus: Multitone,
                       tone_transfers: Sequence[Tuple[np.ndarray,
                                                      np.ndarray]],
                       dc_gains: np.ndarray,
                       times: np.ndarray) -> np.ndarray:
    """``(N, T)`` steady-state stack from per-die transfer samples.

    ``tone_transfers[k]`` carries the ``(real, imag)`` arrays of every
    die's ``H`` at tone ``k``'s frequency; ``dc_gains`` the (exactly
    real) ``H(0)`` per die.  Replicates
    :meth:`repro.signals.multitone.Multitone.through` --
    ``|H|`` via the C-library ``hypot`` (`np.hypot` rounds
    identically), phase via the ``arctan2 -> degrees -> + phase_deg ->
    radians`` round trip -- followed by :func:`batch_multitone_eval`'s
    offset-then-tone accumulation, all staged through one scratch
    buffer so no fresh ``(N, T)`` temporaries are allocated per tone.
    """
    times = np.asarray(times, dtype=float)
    dc_gains = np.asarray(dc_gains, dtype=float)
    offsets = stimulus.offset * dc_gains
    shape = (dc_gains.shape[0], times.size)
    # The result rides a pooled buffer: callers that are done with the
    # stack may hand it back via SCRATCH.give (the engine's chunk
    # workers do, once the codes are extracted).
    total = SCRATCH.take(shape)
    np.copyto(total, offsets[:, None])  # == np.repeat, value for value
    buf = SCRATCH.take(shape)
    for tone, (h_re, h_im) in zip(stimulus.tones, tone_transfers):
        amps = tone.amplitude * np.hypot(h_re, h_im)
        phase_deg = tone.phase_deg + np.degrees(np.arctan2(h_im, h_re))
        phases = np.radians(phase_deg)
        w_t = 2.0 * math.pi * tone.freq_hz * times
        np.add(w_t[None, :], phases[:, None], out=buf)
        np.sin(buf, out=buf)
        np.multiply(amps[:, None], buf, out=buf)
        np.add(total, buf, out=total)
    SCRATCH.give(buf)
    return total


def batch_biquad_traces(specs: Sequence[BiquadSpec],
                        stimulus: Multitone,
                        times: np.ndarray) -> np.ndarray:
    """Response stack of a Biquad spec population, fully vectorized.

    Bit-identical to ``batch_multitone_eval([BiquadFilter(s).response(
    stimulus) for s in specs], times)`` -- i.e. to the per-die
    reference flow -- without constructing a single per-die object:
    the closed-form transfer of all N dies evaluates per tone as one
    real-array broadcast and the trace accumulates through
    :func:`batch_through_eval`.
    """
    times = np.asarray(times, dtype=float)
    if not specs:
        return np.empty((0, times.size))
    # Stack the parameters once for all tone frequencies plus DC; a
    # mixed-kind population stacks once per kind group.
    n = len(specs)
    kind_list = [spec.kind for spec in specs]
    tone_transfers = [(np.empty(n), np.empty(n))
                      for __ in stimulus.tones]
    dc_re = np.empty(n)
    for kind in set(kind_list):
        idx = [i for i, k in enumerate(kind_list) if k is kind]
        omega0, q, gain = spec_arrays([specs[i] for i in idx])
        for slot, tone in enumerate(stimulus.tones):
            h_re, h_im = batch_transfer_arrays(omega0, q, gain, kind,
                                               tone.freq_hz)
            tone_transfers[slot][0][idx] = h_re
            tone_transfers[slot][1][idx] = h_im
        dc_re[idx], __ = batch_transfer_arrays(omega0, q, gain, kind,
                                               0.0)
    # H(0) of a Biquad is exactly real (the quotient's imaginary part
    # is a signed zero), so Multitone.through's DC-realness guard can
    # never trip on this path.
    return batch_through_eval(stimulus, tone_transfers, dc_re, times)


#: Attributes a netlist CUT class exposes to join the stacked MNA fast
#: path (see :class:`repro.filters.towthomas.TowThomasBiquad`, which
#: defines them for the Tow-Thomas realization).
_NETLIST_PROTOCOL = ("system", "circuit", "ac_output_node",
                     "ac_input_node", "ac_input_source")


def batch_netlist_traces(cuts: Sequence, stimulus: Multitone,
                         times: np.ndarray) -> Optional[np.ndarray]:
    """Response stack of same-topology linear netlist CUTs, or None.

    Qualifying cuts -- linear, shared topology, and publishing the
    batched-synthesis protocol (``system``/``circuit`` plus the
    ``ac_output_node``/``ac_input_node``/``ac_input_source``
    attributes that :class:`~repro.filters.towthomas.TowThomasBiquad`
    defines) -- are solved through
    :func:`repro.circuits.ac.ac_analysis_batch` -- one stacked MNA
    solve per tone frequency -- plus one batched DC pass for the
    offsets, then synthesized by :func:`batch_through_eval`.
    Bit-identical to ``[cut.response(stimulus) for cut in cuts]``
    pushed through :func:`batch_multitone_eval`, because the batched
    LAPACK solves, the numpy transfer quotient and the through()
    replication all round exactly like the per-cut path.

    Returns ``None`` when the stack does not qualify (mixed
    topologies or observation nodes, nonlinear members, non-netlist
    cuts); callers fall back to the per-cut reference.
    """
    from repro.circuits.ac import ac_analysis_batch, systems_share_topology
    from repro.circuits.dc import dc_solve_batch
    from repro.filters.towthomas import TowThomasBiquad

    times = np.asarray(times, dtype=float)
    cuts = list(cuts)
    if not cuts or not all(
            all(hasattr(cut, name) for name in _NETLIST_PROTOCOL)
            for cut in cuts):
        return None
    # A protocol class warrants that its response()/transfer()/dc_gain
    # semantics are exactly what this kernel replicates; a Tow-Thomas
    # subclass that overrides response() breaks that warranty, so it
    # falls back to the per-cut loop.
    if any(isinstance(cut, TowThomasBiquad)
           and type(cut).response is not TowThomasBiquad.response
           for cut in cuts):
        return None
    head = cuts[0]
    out_node = head.ac_output_node
    in_node = head.ac_input_node
    source_name = head.ac_input_source
    if any(cut.ac_output_node != out_node
           or cut.ac_input_node != in_node
           or cut.ac_input_source != source_name for cut in cuts[1:]):
        return None
    systems = [cut.system for cut in cuts]
    first = systems[0]
    if first.has_nonlinear or not all(
            systems_share_topology(first, s) for s in systems[1:]):
        return None

    # AC transfer at every tone frequency, all cuts per solve.
    sweep = ac_analysis_batch(systems,
                              [tone.freq_hz for tone in stimulus.tones])
    transfer = sweep.transfer(out_node, in_node)  # (M, K) complex

    # DC gains replicate the per-cut dc_gain protocol: drive the input
    # source with 1 V, solve the (linear) operating point, read the
    # output node.
    sources = [cut.circuit.element(source_name) for cut in cuts]
    saved = [source.dc for source in sources]
    for source in sources:
        source.dc = 1.0
    try:
        solutions = dc_solve_batch(systems)
    finally:
        for source, value in zip(sources, saved):
            source.dc = value
    out_idx = first.circuit.node_index(out_node)
    dc_gains = (solutions[:, out_idx] if out_idx >= 0
                else np.zeros(len(cuts)))

    tone_transfers = [
        (np.ascontiguousarray(transfer[:, k].real),
         np.ascontiguousarray(transfer[:, k].imag))
        for k in range(len(stimulus.tones))]
    return batch_through_eval(stimulus, tone_transfers, dc_gains, times)


def batch_responses(cuts: Sequence, stimulus: Multitone) -> List[Multitone]:
    """Exact steady-state output multitone of each linear CUT.

    Every CUT must expose ``response(stimulus) -> Multitone``.  This is
    the per-cut reference path: spec populations go through
    :func:`batch_biquad_traces`, netlist stacks through
    :func:`batch_netlist_traces`; only heterogeneous cut lists pay the
    per-object loop.
    """
    return [cut.response(stimulus) for cut in cuts]


def batch_codes(encoder: ZoneEncoder, x: np.ndarray,
                y: np.ndarray) -> np.ndarray:
    """Zone codes of a stacked point set; ``x`` broadcasts over rows.

    Monitor banks encode through the fused shared-branch path (one
    in-place EKV evaluation per model card per gate signal, reused
    balance scratch, packed bit accumulation -- with the shared ``x``
    kept one-dimensional); any other boundary family falls back to the
    generic per-boundary evaluation on a broadcast view.  Both produce
    bit-identical codes to ``encoder.code`` point by point.
    """
    y = np.asarray(y, dtype=float)
    x = np.asarray(x, dtype=float)
    fast = monitor_bank_codes(encoder, x, y)
    if fast is not None:
        return np.asarray(fast, dtype=np.int64)
    x = np.broadcast_to(x, y.shape)
    return np.asarray(encoder.code(x, y), dtype=np.int64)


def batch_extract(times: np.ndarray, codes: np.ndarray,
                  period: float) -> SignatureBatch:
    """One-pass packed run-length extraction of a whole code stack."""
    return SignatureBatch.from_code_stack(times, codes, period)


def batch_signatures(times: np.ndarray, codes: np.ndarray,
                     period: float) -> List[Signature]:
    """Per-die :class:`Signature` objects for a code stack.

    Diagnosis-edge convenience: packs the stack once
    (:func:`batch_extract`) and unpacks every row.  Hot paths should
    stay on the :class:`SignatureBatch` instead.
    """
    return batch_extract(times, codes, period).to_signatures()


def batch_ndf(signatures: Sequence[Signature],
              golden: Signature) -> np.ndarray:
    """Per-die reference NDF loop (exact, unpacked).

    Kept as the equivalence baseline for
    :meth:`SignatureBatch.ndf_to`; campaign hot paths use the packed
    kernel.
    """
    return np.asarray([ndf(s, golden) for s in signatures], dtype=float)


def trace_population_ndf(encoder: ZoneEncoder, times: np.ndarray,
                         x: np.ndarray, y_stack: np.ndarray,
                         period: float, golden: Signature,
                         signatures_out: Optional[list] = None
                         ) -> np.ndarray:
    """Encode + extract + score a stacked trace population in one call.

    ``y_stack`` is ``(N, T)``; ``x`` is shared across the population.
    The whole pipeline stays packed (codes -> CSR batch -> fleet NDF);
    per-die signatures are only unpacked into ``signatures_out`` when a
    diagnosis path asks for them.
    """
    codes = batch_codes(encoder, x, y_stack)
    batch = batch_extract(times, codes, period)
    if signatures_out is not None:
        signatures_out.extend(batch.to_signatures())
    return batch.ndf_to(golden)
