"""The batched test-campaign engine.

One :class:`CampaignEngine` runs the paper's full signature flow --
stimulus, Lissajous composition, zone encoding, signature capture, NDF,
verdict -- over an entire *population* of CUTs in a single call,
instead of once per die through
:class:`repro.core.testflow.SignatureTester`:

* golden signatures and calibrated decision bands are computed once per
  configuration and content-cached (:mod:`repro.campaign.cache`);
* the hot path is array-resident end to end: spec populations
  synthesize their ``(N, samples)`` trace stacks straight from stacked
  ``(omega0, q, gain)`` parameter arrays (no per-die
  ``BiquadFilter``/``Multitone`` objects), fault-dictionary netlists
  solve as one stacked MNA sweep, the fused shared-branch encoder
  emits packed codes (:mod:`repro.campaign.batch`), and each chunk
  flows into one packed
  :class:`~repro.core.signature_batch.SignatureBatch` scored by the
  flat fleet-NDF kernel -- per-die ``Signature`` objects exist only
  at the diagnosis edges;
* an executor layer chunks the population serially, over a process
  pool, or over a shared-memory pool
  (:mod:`repro.campaign.executors`) with deterministic per-die
  seeding, so every executor yields bit-identical verdict vectors;
* populations larger than memory stream through
  :meth:`CampaignEngine.run_stream` (or simply by passing a generator
  of chunks to :meth:`run`), keeping RSS bounded by the chunk size;
* :meth:`CampaignEngine.run_noise` repeats every die's measurement
  under fresh Section IV-C noise as one ``(N * repeats, samples)``
  stack with per-die deterministic seeding;
* multi-signature screening (``run(..., encoders=[enc0, enc1])``)
  re-encodes the same trace stacks through extra monitor banks --
  per-channel NDFs/verdicts plus a combined OR-verdict, channel 0
  bit-identical to the single-channel flow (see ``docs/paper_map.md``
  for the contract and ``docs/ambiguity.md`` for why a second channel
  exists).

Worked example (mirrors ``examples/campaign_fleet.py``)::

    from repro.campaign import CampaignEngine, montecarlo_dies
    from repro.monitor.configurations import table1_encoder
    from repro.paper import PAPER_BIQUAD, PAPER_STIMULUS

    engine = CampaignEngine.from_parts(
        table1_encoder(), PAPER_STIMULUS, PAPER_BIQUAD)
    dies = montecarlo_dies(PAPER_BIQUAD, count=500, sigma_f0=0.03,
                           seed=7)
    result = engine.run(dies, band="auto")   # Fig. 8-calibrated band
    print(result.summary())                  # verdicts, escapes, timing
"""

from __future__ import annotations

import time
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.campaign.batch import (
    batch_biquad_traces,
    batch_codes,
    batch_extract,
    batch_multitone_eval,
    batch_netlist_traces,
    sample_times,
)
from repro.campaign.cache import (
    GoldenArtifacts,
    GoldenCache,
    _PROCESS_CACHE,
    encoder_key,
    spec_key,
    stimulus_key,
)
from repro.campaign.executors import SerialExecutor, chunked
from repro.campaign.request import ScreeningRequest
from repro.campaign.result import CampaignResult, NoiseCampaignResult
from repro.campaign.scenarios import (
    CutListPopulation,
    EncoderPopulation,
    SpecPopulation,
    TracePopulation,
    deviation_sweep_population,
)
from repro.core.decision import DecisionBand, ThresholdCalibration
from repro.core.multi_signature_batch import MultiSignatureBatch
from repro.core.scratch import SCRATCH
from repro.core.signature import Signature
from repro.core.signature_batch import SignatureBatch
from repro.core.zones import ZoneEncoder
from repro.filters.biquad import BiquadFilter, BiquadSpec
from repro.obs.metrics import record_engine_timings
from repro.obs.profile import STAGE_PREFIX
from repro.obs.trace import span
from repro.signals.multitone import Multitone
from repro.signals.noise import NoiseModel

#: Default Fig. 8 calibration sweep for "auto" decision bands.
DEFAULT_CALIBRATION_DEVIATIONS: Tuple[float, ...] = tuple(
    np.linspace(-0.10, 0.10, 9))

#: Entropy-domain tag ("Nois") mixed into the noise campaign's seed
#: root, so run_noise(seed=s) never draws from the same per-die
#: streams as montecarlo_dies(seed=s) -- measurement noise must stay
#: statistically independent of the process deviations it is measured
#: against, even when both use the same user-facing seed.
NOISE_SEED_DOMAIN = 0x4E6F6973

Population = Union[SpecPopulation, CutListPopulation, EncoderPopulation,
                   TracePopulation, Sequence[BiquadSpec]]


@dataclass(frozen=True)
class CampaignConfig:
    """Everything that identifies one test configuration.

    Instances are picklable (they travel to pool workers) and define
    the content key under which golden artifacts are cached.
    """

    encoder: ZoneEncoder
    stimulus: Multitone
    golden_spec: BiquadSpec
    samples_per_period: int = 2048
    tolerance: float = 0.05
    calibration_deviations: Tuple[float, ...] = \
        DEFAULT_CALIBRATION_DEVIATIONS
    chunk_size: int = 256
    #: Additional observation channels: each extra encoder re-encodes
    #: the same trace stacks (the front half runs once), producing a
    #: multi-signature campaign whose channel 0 is bit-identical to
    #: the single-channel flow with ``encoder`` alone.
    extra_encoders: Tuple[ZoneEncoder, ...] = ()

    def golden_key(self) -> Tuple:
        """Content key of the golden artifacts for this configuration.

        Golden artifacts depend only on the *primary* encoder -- the
        extra channels have their own goldens keyed through their own
        single-channel configs -- so a multi-signature engine shares
        its channel-0 cache entries with the plain engine.
        """
        return ("golden", stimulus_key(self.stimulus),
                encoder_key(self.encoder), spec_key(self.golden_spec),
                int(self.samples_per_period))

    @property
    def num_channels(self) -> int:
        """Observation channels (1 + the extra encoders)."""
        return 1 + len(self.extra_encoders)

    def channel_config(self, k: int) -> "CampaignConfig":
        """Single-channel config of channel ``k`` (0 = primary)."""
        if k == 0:
            return replace(self, extra_encoders=()) \
                if self.extra_encoders else self
        return replace(self, encoder=self.extra_encoders[k - 1],
                       extra_encoders=())


class _stage:
    """One pipeline stage: a timing-dict bucket plus a ``stage.*`` span.

    The span and the accumulated ``timing[name]`` measure the same
    block at the same nesting level, which is what makes the
    ``--profile`` cross-check (span sums within 10% of
    ``CampaignResult.timing``) hold by construction.  With tracing
    disabled the span side is the shared no-op span, so the cost over
    the old bare ``perf_counter`` chains is a branch.
    """

    __slots__ = ("_timing", "_name", "_span", "_start")

    def __init__(self, timing: Dict[str, float], name: str,
                 **attributes: object) -> None:
        self._timing = timing
        self._name = name
        self._span = span(STAGE_PREFIX + name, **attributes)

    def __enter__(self) -> "_stage":
        self._span.__enter__()
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        elapsed = time.perf_counter() - self._start
        self._timing[self._name] = \
            self._timing.get(self._name, 0.0) + elapsed
        return self._span.__exit__(exc_type, exc, tb)


# ----------------------------------------------------------------------
# Chunk workers (module level: pool executors pickle them)
# ----------------------------------------------------------------------
def _compute_golden(config: CampaignConfig) -> GoldenArtifacts:
    """Golden trace, codes and signature for one configuration."""
    stimulus = config.stimulus
    period = stimulus.period()
    times = sample_times(period, config.samples_per_period)
    x = np.asarray(stimulus(times), dtype=float)
    y = batch_biquad_traces([config.golden_spec], stimulus, times)[0]
    codes = batch_codes(config.encoder, x, y[None, :])[0]
    signature = Signature.from_samples(times, codes, period)
    return GoldenArtifacts(times, x, y, codes, signature, period)


def _golden_artifacts(config: CampaignConfig,
                      cache: GoldenCache) -> GoldenArtifacts:
    return cache.get_or_compute(config.golden_key(),
                                lambda: _compute_golden(config))


def _score_code_stack(config: CampaignConfig, golden: GoldenArtifacts,
                      x: np.ndarray, y: np.ndarray,
                      timing: Dict[str, float], collect: bool = False,
                      cache: Optional[GoldenCache] = None
                      ) -> Tuple[np.ndarray,
                                 Union[None, SignatureBatch,
                                       MultiSignatureBatch]]:
    """Encode -> pack -> fleet-NDF one trace stack, timing each stage.

    With ``collect`` the packed :class:`SignatureBatch` of the stack is
    returned alongside the NDFs (the diagnosis subsystem consumes it);
    otherwise the batch is released with the chunk.

    When the config carries ``extra_encoders``, every extra channel
    re-encodes the *same* stack (the synthesized traces are shared, so
    the expensive front half runs once) against its own cached golden
    signature.  The return then becomes an ``(n, K)`` NDF matrix and,
    with ``collect``, a :class:`MultiSignatureBatch`; channel 0 is
    computed by exactly the single-channel operations, so it stays
    bit-identical to a plain run.
    """
    dies = int(y.shape[0])
    with _stage(timing, "encode", dies=dies):
        codes = batch_codes(config.encoder, x, y)
    with _stage(timing, "signature", dies=dies):
        batch = batch_extract(golden.times, codes, golden.period)
    with _stage(timing, "ndf", dies=dies):
        values = batch.ndf_to(golden.signature)
    if not config.extra_encoders:
        return values, (batch if collect else None)
    cache = cache if cache is not None else _PROCESS_CACHE
    columns = [values]
    channels = [batch]
    for k in range(1, config.num_channels):
        sub = config.channel_config(k)
        sub_golden = _golden_artifacts(sub, cache)
        with _stage(timing, "encode", dies=dies, channel=k):
            sub_codes = batch_codes(sub.encoder, x, y)
        with _stage(timing, "signature", dies=dies, channel=k):
            sub_batch = batch_extract(golden.times, sub_codes,
                                      golden.period)
        with _stage(timing, "ndf", dies=dies, channel=k):
            columns.append(sub_batch.ndf_to(sub_golden.signature))
        channels.append(sub_batch)
    stacked = np.stack(columns, axis=1)
    return stacked, (MultiSignatureBatch(channels) if collect else None)


def _spec_chunk_ndfs(config: CampaignConfig,
                     specs: Sequence[BiquadSpec], cache: GoldenCache,
                     collect: bool = False
                     ) -> Tuple[np.ndarray, Dict[str, float],
                                Optional[SignatureBatch]]:
    """NDFs of a chunk of Biquad design points, object-free.

    The whole front half is one array pass: closed-form transfer
    broadcast + buffered tone accumulation
    (:func:`~repro.campaign.batch.batch_biquad_traces`), then the
    fused encode and packed back half.
    """
    timing: Dict[str, float] = {}
    with _stage(timing, "golden"):
        golden = _golden_artifacts(config, cache)
    with _stage(timing, "traces", dies=len(specs)):
        y = batch_biquad_traces(specs, config.stimulus, golden.times)
    values, batch = _score_code_stack(config, golden, golden.x, y,
                                      timing, collect, cache)
    SCRATCH.give(y)  # trace stacks ride pooled buffers; codes are out
    return values, timing, batch


def _response_chunk_ndfs(config: CampaignConfig, cuts: Sequence,
                         cache: GoldenCache, collect: bool = False
                         ) -> Tuple[np.ndarray, Dict[str, float],
                                    Optional[SignatureBatch]]:
    """NDFs of a chunk of linear CUTs (objects with ``response``).

    Same-topology netlist stacks (fault dictionaries) synthesize
    through the stacked-MNA kernel
    (:func:`~repro.campaign.batch.batch_netlist_traces`); anything
    else falls back to the per-cut ``response()`` reference loop.
    """
    timing: Dict[str, float] = {}
    with _stage(timing, "golden"):
        golden = _golden_artifacts(config, cache)
    with _stage(timing, "traces", dies=len(cuts)):
        y = batch_netlist_traces(cuts, config.stimulus, golden.times)
        # Exact-type check: a BiquadFilter subclass may override
        # response(), which the closed-form synthesis would bypass.
        if y is None and cuts and all(type(cut) is BiquadFilter
                                      for cut in cuts):
            y = batch_biquad_traces([cut.spec for cut in cuts],
                                    config.stimulus, golden.times)
        if y is None:
            responses = [cut.response(config.stimulus) for cut in cuts]
            y = batch_multitone_eval(responses, golden.times)
    values, batch = _score_code_stack(config, golden, golden.x, y,
                                      timing, collect, cache)
    SCRATCH.give(y)
    return values, timing, batch


def _spec_chunk_worker(payload
                       ) -> Tuple[np.ndarray, Dict[str, float],
                                  Optional[SignatureBatch]]:
    """Pool-side entry point; uses the worker process' default cache."""
    config, specs, collect = payload
    return _spec_chunk_ndfs(config, specs, _PROCESS_CACHE, collect)


def _trace_rows_ndfs(config: CampaignConfig, y_rows: np.ndarray,
                     cache: GoldenCache, collect: bool = False
                     ) -> Tuple[np.ndarray, Dict[str, float],
                                Optional[SignatureBatch]]:
    """NDFs of a slice of measured traces on the shared grid."""
    timing: Dict[str, float] = {}
    with _stage(timing, "golden"):
        golden = _golden_artifacts(config, cache)
    values, batch = _score_code_stack(config, golden, golden.x, y_rows,
                                      timing, collect, cache)
    return values, timing, batch


def _trace_chunk_worker(payload
                        ) -> Tuple[np.ndarray, Dict[str, float],
                                   Optional[SignatureBatch]]:
    """Pool-side trace scoring: the chunk's rows travel pickled."""
    config, y_rows, collect = payload
    return _trace_rows_ndfs(config, np.asarray(y_rows),
                            _PROCESS_CACHE, collect)


def _trace_chunk_worker_shm(payload
                            ) -> Tuple[np.ndarray, Dict[str, float],
                                       Optional[SignatureBatch]]:
    """Pool-side trace scoring against a shared-memory stack.

    The payload carries only ``(config, handle, start, stop,
    collect)``: the worker attaches a zero-copy view of the published
    ``(N, T)`` stack and scores its row slice -- nothing bulky crosses
    the pickle boundary in either direction except the per-row NDFs
    (plus the packed signature rows when the campaign collects them).
    """
    from repro.campaign.executors import attach_shared_array

    config, handle, start, stop, collect = payload
    stack, close = attach_shared_array(handle)
    try:
        return _trace_rows_ndfs(config, stack[start:stop],
                                _PROCESS_CACHE, collect)
    finally:
        close()


def _noise_chunk_ndfs(config: CampaignConfig,
                      specs: Sequence[BiquadSpec], children,
                      repeats: int, three_sigma: float,
                      cache: GoldenCache
                      ) -> Tuple[np.ndarray, Dict[str, float]]:
    """Noisy-repeat NDFs of a chunk of dies: an ``(n * R, T)`` stack.

    Die ``i`` draws all of its ``repeats`` noise realizations (X then Y
    per repeat) from its own spawned seed child, so the matrix is a
    pure function of ``(seed, die index)`` -- chunking and streaming
    never reshuffle noise.
    """
    timing: Dict[str, float] = {}
    with _stage(timing, "golden"):
        golden = _golden_artifacts(config, cache)
    with _stage(timing, "traces", dies=len(specs)):
        y = batch_biquad_traces(specs, config.stimulus, golden.times)
    n, t = y.shape
    with _stage(timing, "noise", dies=n, repeats=repeats):
        sigma = three_sigma / 3.0
        x_stack = np.broadcast_to(golden.x, (n * repeats, t))
        if sigma > 0.0:
            noise = np.empty((n, repeats, 2, t))
            for i, child in enumerate(children):
                rng = np.random.default_rng(child)
                noise[i] = rng.normal(0.0, sigma, size=(repeats, 2, t))
            x_stack = x_stack + noise[:, :, 0, :].reshape(n * repeats, t)
            y_stack = (np.repeat(y, repeats, axis=0)
                       + noise[:, :, 1, :].reshape(n * repeats, t))
        else:
            y_stack = np.repeat(y, repeats, axis=0)
        SCRATCH.give(y)  # repeated stack supersedes the clean traces
    values, __ = _score_code_stack(config, golden, x_stack, y_stack,
                                   timing)
    return values.reshape(n, repeats), timing


def _noise_chunk_worker(payload) -> Tuple[np.ndarray, Dict[str, float]]:
    """Pool-side noise-campaign entry point.

    The payload carries the chunk's specs and their pre-spawned seed
    children; since every die's noise is a pure function of its child,
    the matrix is independent of how the executor chunks the fleet --
    pool and serial runs are bit-identical.
    """
    config, specs, children, repeats, three_sigma = payload
    return _noise_chunk_ndfs(config, specs, children, repeats,
                             three_sigma, _PROCESS_CACHE)


def _merge_timing(total: Dict[str, float],
                  section: Dict[str, float]) -> None:
    for key, value in section.items():
        total[key] = total.get(key, 0.0) + value


class CampaignEngine:
    """Runs signature-test campaigns over CUT populations.

    Parameters
    ----------
    config:
        The test configuration (stimulus, encoder, golden nominal).
    cache:
        Golden/calibration cache.  Defaults to a fresh per-engine
        :class:`~repro.campaign.cache.GoldenCache`; pass one
        explicitly to share warm artifacts between engines (channel
        engines and service sessions do).  The old process-global
        ``DEFAULT_CACHE`` backing store is retired -- engines no
        longer share state implicitly.
    executor:
        Chunk scheduler; :class:`SerialExecutor` when omitted.
    """

    def __init__(self, config: CampaignConfig,
                 cache: Optional[GoldenCache] = None,
                 executor=None) -> None:
        self.config = config
        self.cache = cache if cache is not None else GoldenCache()
        self.executor = executor if executor is not None \
            else SerialExecutor()

    @classmethod
    def from_parts(cls, encoder: ZoneEncoder, stimulus: Multitone,
                   golden_spec: BiquadSpec,
                   samples_per_period: int = 2048,
                   tolerance: float = 0.05, **kwargs) -> "CampaignEngine":
        """Engine from loose bench parts (the common construction)."""
        config = CampaignConfig(encoder, stimulus, golden_spec,
                                samples_per_period, tolerance)
        return cls(config, **kwargs)

    # ------------------------------------------------------------------
    # Cached golden artifacts / calibration
    # ------------------------------------------------------------------
    def golden(self) -> GoldenArtifacts:
        """Golden trace + signature (content-cached)."""
        return _golden_artifacts(self.config, self.cache)

    def calibration(self,
                    deviations: Optional[Sequence[float]] = None
                    ) -> ThresholdCalibration:
        """Fig. 8 sweep for this configuration (content-cached).

        Calibration is a property of one channel: the sweep always
        runs through the *primary* encoder alone, so a multi-signature
        engine shares its channel-0 calibration cache entry with the
        plain engine (per-channel thresholds come from
        :meth:`channel_thresholds`).
        """
        config = self.config.channel_config(0)
        devs = tuple(float(d) for d in (
            deviations if deviations is not None
            else config.calibration_deviations))
        key = ("calibration", config.golden_key(), devs)

        def compute() -> ThresholdCalibration:
            population = deviation_sweep_population(
                config.golden_spec, devs)
            values, __, __ = _spec_chunk_ndfs(
                config, population.specs, self.cache)
            return ThresholdCalibration(np.asarray(devs), values)

        return self.cache.get_or_compute(key, compute)

    def band(self, tolerance: Optional[float] = None) -> DecisionBand:
        """Decision band calibrated for a ground-truth tolerance."""
        tol = float(tolerance) if tolerance is not None \
            else self.config.tolerance
        return self.calibration().band_for_tolerance(tol)

    def channel_engine(self, k: int) -> "CampaignEngine":
        """Single-channel engine of channel ``k`` (shared cache)."""
        return CampaignEngine(self.config.channel_config(k),
                              cache=self.cache,
                              executor=self.executor)

    def with_encoders(self, encoders: Sequence[ZoneEncoder]
                      ) -> "CampaignEngine":
        """Engine screening through a list of monitor banks at once.

        ``encoders[0]`` becomes the primary channel (pass the current
        encoder there to keep the channel-0 bit-identity with this
        engine's single-channel results); the rest become extra
        signature channels encoded from the same trace stacks.
        """
        encoders = list(encoders)
        if not encoders:
            raise ValueError("need at least one encoder")
        config = replace(self.config, encoder=encoders[0],
                         extra_encoders=tuple(encoders[1:]))
        return CampaignEngine(config, cache=self.cache,
                              executor=self.executor)

    def channel_thresholds(self, band: Union[None, str, float,
                                             DecisionBand] = "auto"
                           ) -> Optional[np.ndarray]:
        """Per-channel NDF thresholds under one band policy.

        ``"auto"`` calibrates every channel's own Fig. 8 sweep (each
        encoder sees deviations differently, so thresholds differ per
        channel); a float or :class:`DecisionBand` applies one raw
        threshold to every channel; None disables verdicts.
        """
        if band is None:
            return None
        if band == "auto":
            return np.asarray([
                self.channel_engine(k)._resolve_threshold("auto")
                for k in range(self.config.num_channels)])
        threshold = self._resolve_threshold(band)
        return np.full(self.config.num_channels, float(threshold))

    # ------------------------------------------------------------------
    # Campaign entry points
    # ------------------------------------------------------------------
    def submit(self, request: ScreeningRequest
               ) -> Union[CampaignResult, NoiseCampaignResult]:
        """Execute one :class:`~repro.campaign.request.ScreeningRequest`.

        The unified entry point behind :meth:`run`, :meth:`run_stream`
        and :meth:`run_noise` (all three are thin shims that build a
        request and call this).  Service sessions and the coalescing
        batcher submit requests directly; ``request.client`` is
        ignored here -- it is service-layer bookkeeping.

        With tracing enabled (:func:`repro.obs.tracing`) the whole
        submission runs under a ``campaign.submit`` span and every
        pipeline stage opens a ``stage.*`` child; per-campaign stage
        timings also land in the process-default metrics registry
        (``engine_stage_seconds`` histograms) either way.
        """
        with span("campaign.submit", mode=request.mode,
                  executor=getattr(self.executor, "name", "custom")):
            if request.mode == "stream":
                return self._submit_stream(request)
            if request.mode == "noise":
                return self._submit_noise(request)
            if request.mode == "sharded":
                return self._submit_sharded(request)
            return self._submit_run(request)

    def run(self, population: Union[Population, Iterable],
            band: Union[None, str, float, DecisionBand] = "auto",
            keep_signatures: bool = False,
            encoders: Optional[Sequence[ZoneEncoder]] = None
            ) -> CampaignResult:
        """Screen a whole population and collect fleet statistics.

        ``band`` selects the verdict policy: ``"auto"`` calibrates the
        Fig. 8 band for the configured tolerance, a float is a raw NDF
        threshold, a :class:`DecisionBand` is used as-is and ``None``
        skips verdicts (NDFs only).

        ``keep_signatures`` retains the fleet's packed
        :class:`~repro.core.signature_batch.SignatureBatch` on the
        result (one row per die, in population order), which
        :meth:`CampaignResult.diagnose` feeds to the fault-dictionary
        matcher of :mod:`repro.diagnosis`.

        ``encoders`` switches the campaign to multi-signature
        screening: the population's trace stacks synthesize once and
        every listed monitor bank encodes its own signature channel
        (``encoders[0]`` replaces the configured encoder as channel 0
        -- pass the engine's own encoder there to keep channel 0
        bit-identical to the plain run).  The result then carries
        per-channel NDFs/verdicts, a combined OR-verdict and, with
        ``keep_signatures``, a packed
        :class:`~repro.core.multi_signature_batch.MultiSignatureBatch`.

        The configured executor parallelizes *spec* populations (the
        chunkable fast path) and trace stacks; cut and encoder
        populations always run in process, and the result's
        ``executor`` field reports what actually ran.  Passing a
        generator/iterator of population *chunks* delegates to
        :meth:`run_stream` (bounded memory); an iterator of individual
        specs is simply materialized and run in one shot.
        """
        return self.submit(ScreeningRequest(
            population=population, mode="run", band=band,
            keep_signatures=keep_signatures, encoders=encoders))

    def _submit_run(self, request: ScreeningRequest) -> CampaignResult:
        population = request.population
        band = request.band
        keep_signatures = request.keep_signatures
        if request.encoders is not None:
            return self.with_encoders(request.encoders).run(
                population, band, keep_signatures)
        if isinstance(population, Iterator):
            import itertools

            try:
                first = next(population)
            except StopIteration:
                return self.run_stream(iter(()), band, keep_signatures)
            rest = itertools.chain([first], population)
            if isinstance(first, BiquadSpec):
                population = list(rest)
            else:
                return self.run_stream(rest, band, keep_signatures)
        start = time.perf_counter()
        population = self._as_population(population)
        threshold = self._resolve_threshold(band)
        if isinstance(population, SpecPopulation):
            values, timing, labels, batch = self._run_specs(
                population, keep_signatures)
            f0_devs = population.f0_deviations
            q_devs = population.q_deviations
            executor_name = getattr(self.executor, "name", "custom")
        elif isinstance(population, TracePopulation):
            values, timing, labels, batch = self._run_traces(
                population, keep_signatures)
            f0_devs = q_devs = None
            executor_name = getattr(self.executor, "name", "custom")
        elif isinstance(population, CutListPopulation):
            values, timing, labels, batch = self._run_cuts(
                population, keep_signatures)
            f0_devs = q_devs = None
            # Cut/encoder populations run in process: their per-die
            # work is one vector op, not worth shipping to a pool.
            executor_name = "serial"
        else:
            values, timing, labels, batch = self._run_encoders(
                population, keep_signatures)
            f0_devs = q_devs = None
            executor_name = "serial"
        return self._package_result(values, timing, labels, batch,
                                    band, threshold, f0_devs, q_devs,
                                    executor_name, start)

    def _package_result(self, values, timing, labels, batch, band,
                        threshold, f0_devs, q_devs, executor_name,
                        start) -> CampaignResult:
        """Assemble a :class:`CampaignResult`, channel-shape aware.

        Single-channel values pass through untouched.  An ``(N, K)``
        multi-channel matrix is split: column 0 becomes the result's
        primary ``ndfs``/``verdicts`` (the same floats the
        single-channel flow produces -- the channel-0 contract), the
        full matrix plus per-channel thresholds/verdicts and the
        packed multi batch ride the ``channel_*`` fields.
        """
        channel_ndfs = channel_thresholds = channel_verdicts = None
        multi_batch = None
        if values.ndim == 2:
            channel_ndfs = values
            channel_thresholds = self.channel_thresholds(band)
            if channel_thresholds is not None:
                channel_verdicts = (channel_ndfs
                                    <= channel_thresholds[None, :])
            values = np.ascontiguousarray(channel_ndfs[:, 0])
            multi_batch = batch
            batch = multi_batch.channel(0) \
                if multi_batch is not None else None
        verdicts = None if threshold is None else values <= threshold
        timing["total"] = time.perf_counter() - start
        # Terminal result constructor: recursive delegations (extra
        # encoders, iterator -> stream) all funnel through here exactly
        # once per logical campaign, so engine-level metrics record
        # here, not in submit().
        record_engine_timings(timing)
        return CampaignResult(
            ndfs=values, threshold=threshold, verdicts=verdicts,
            f0_deviations=f0_devs, q_deviations=q_devs, labels=labels,
            tolerance=self.config.tolerance, timing=timing,
            executor=executor_name, cache_info=self.cache.info,
            signature_batch=batch, channel_ndfs=channel_ndfs,
            channel_thresholds=channel_thresholds,
            channel_verdicts=channel_verdicts,
            multi_signature_batch=multi_batch)

    def run_stream(self, chunks: Iterable,
                   band: Union[None, str, float, DecisionBand] = "auto",
                   keep_signatures: bool = False,
                   encoders: Optional[Sequence[ZoneEncoder]] = None,
                   checkpoint: Optional[str] = None,
                   checkpoint_every: int = 1,
                   stream_offset: int = 0) -> CampaignResult:
        """Screen a stream of population chunks at bounded memory.

        ``chunks`` yields :class:`SpecPopulation` instances (or raw
        spec sequences), e.g. from
        :func:`repro.campaign.scenarios.stream_montecarlo_dies`.  Each
        chunk runs through the configured executor and is released
        before the next is drawn, so peak RSS scales with the chunk
        size, not the fleet size; verdict vectors are bit-identical to
        the monolithic run over the concatenated population.  (With
        ``keep_signatures`` the retained batch grows with the fleet,
        trading the memory bound for diagnosability.)  ``encoders``
        enables multi-signature screening exactly as in :meth:`run`;
        streamed multi-channel results are bit-identical per channel
        to the monolithic multi-channel run.

        ``checkpoint`` names a file making the stream crash-safe:
        accumulated fleet stats plus the next global die index persist
        there (atomically) every ``checkpoint_every`` chunks, and a
        run that finds an existing checkpoint continues behind it --
        fast-forwarding past the already-screened prefix (or trusting
        ``stream_offset`` when the chunk stream itself restarts
        mid-fleet).  The merged result is bit-identical to the
        uninterrupted run; see :meth:`resume` and
        ``docs/persistence.md``.
        """
        return self.submit(ScreeningRequest(
            population=chunks, mode="stream", band=band,
            keep_signatures=keep_signatures, encoders=encoders,
            checkpoint=checkpoint, checkpoint_every=checkpoint_every,
            stream_offset=stream_offset))

    def resume(self, checkpoint: str, chunks: Iterable,
               band: Union[None, str, float, DecisionBand] = "auto",
               checkpoint_every: int = 1,
               stream_offset: int = 0) -> CampaignResult:
        """Continue an interrupted checkpointed streamed campaign.

        ``checkpoint`` must exist (an interrupted :meth:`run_stream`
        left it); a missing file raises ``FileNotFoundError`` rather
        than silently starting over -- start-over is what a plain
        checkpointed :meth:`run_stream` does.  ``chunks`` re-supplies
        the population stream: either restarted from die 0 (the
        engine skips the screened prefix) or rebuilt mid-fleet with
        ``stream_offset`` declaring its first global die index, e.g.
        ``stream_montecarlo_dies(..., start=k)`` with
        ``stream_offset=k``.  The returned result is bit-identical
        (NDFs, verdicts, deviations, labels) to the uninterrupted
        run's -- global-index-stable seeding plus chunk-boundary-
        independent scoring make the merge exact.
        """
        from repro.campaign.checkpoint import StreamCheckpoint

        StreamCheckpoint.load(checkpoint)  # must exist and parse
        return self.run_stream(chunks, band,
                               checkpoint=checkpoint,
                               checkpoint_every=checkpoint_every,
                               stream_offset=stream_offset)

    def _submit_stream(self, request: ScreeningRequest
                       ) -> CampaignResult:
        from repro.campaign.checkpoint import StreamCheckpoint
        from repro.testing.faultinject import fail_if_armed

        chunks = request.population
        band = request.band
        keep_signatures = request.keep_signatures
        if request.encoders is not None:
            engine = self.with_encoders(request.encoders)
            return engine.submit(replace(request, encoders=None))
        start = time.perf_counter()
        threshold = self._resolve_threshold(band)
        # The stream state -- accumulated NDF/deviation/label parts,
        # merged timings, the next global die index -- always lives in
        # a StreamCheckpoint; only a request with a checkpoint path
        # ever persists it.
        config_key = repr(self.config.golden_key())
        state = None
        if request.checkpoint is not None:
            if keep_signatures:
                raise ValueError(
                    "checkpointed streams cannot keep signatures: the "
                    "packed batch is not part of the mergeable "
                    "checkpoint state (run without checkpoint=, or "
                    "without keep_signatures)")
            state = StreamCheckpoint.load_if_valid(request.checkpoint)
            if state is not None:
                state.validate(config_key, threshold)
        if state is None:
            # A fresh stream that starts mid-fleet (a shard worker, or
            # a rebuilt resume stream) covers [stream_offset, ...) --
            # the checkpoint names that range so partials can merge.
            state = StreamCheckpoint(config_key, threshold,
                                     start_index=request.stream_offset)
        elif request.stream_offset < state.start_index:
            raise ValueError(
                f"stream starts at global die {request.stream_offset} "
                f"but the checkpoint covers dies from "
                f"{state.start_index}: the prefix would merge into a "
                "checkpoint that does not contain it")
        # Dies already screened by a previous (interrupted) run that
        # the restarted chunk stream will re-yield.
        skip = state.next_index - request.stream_offset
        if skip < 0:
            raise ValueError(
                f"stream starts at global die {request.stream_offset} "
                f"but the checkpoint resumes at {state.next_index}: "
                f"dies {state.next_index}..{request.stream_offset - 1} "
                "would be missing")
        batch_parts: List[Union[SignatureBatch,
                                MultiSignatureBatch]] = []
        seen = 0  # dies drawn from the iterable so far
        chunks_since_save = 0
        for chunk in chunks:
            # Raw spec-sequence chunks get placeholder labels numbered
            # from the global die index, not per chunk -- labels must
            # stay unique across the whole stream (and across the
            # interrupted runs of a checkpointed one).
            chunk = self._as_population(
                chunk, first_index=request.stream_offset + seen)
            if not isinstance(chunk, SpecPopulation):
                raise TypeError("streamed campaigns consume spec "
                                "population chunks")
            n = len(chunk)
            seen += n
            if skip > 0:
                if n <= skip:  # whole chunk already screened
                    skip -= n
                    continue
                # Partially-screened chunk: resume mid-chunk.  Per-die
                # rows are chunk-boundary independent, so the sliced
                # tail scores bit-identically to its uninterrupted
                # position.
                chunk = SpecPopulation(
                    chunk.specs[skip:], chunk.f0_deviations[skip:],
                    chunk.q_deviations[skip:], chunk.labels[skip:])
                skip = 0
            values, section, chunk_labels, batch = self._run_specs(
                chunk, keep_signatures)
            if batch is not None:
                batch_parts.append(batch)
            state.extend(values, chunk.f0_deviations,
                         chunk.q_deviations, chunk_labels, section)
            if request.checkpoint is not None:
                chunks_since_save += 1
                if chunks_since_save >= request.checkpoint_every:
                    state.save(request.checkpoint)
                    chunks_since_save = 0
                # Robustness-suite injection point: die *after* the
                # checkpoint landed, before the next chunk is drawn.
                fail_if_armed("stream.chunk.crash")
        values = state.values(self._empty_values())
        batch = (self._concatenate_batches(batch_parts)
                 if keep_signatures else None)
        timing = dict(state.timing)
        if request.checkpoint is not None:
            state.complete = True
            state.save(request.checkpoint)
        name = getattr(self.executor, "name", "custom") + "+stream"
        return self._package_result(values, timing, state.labels,
                                    batch, band, threshold,
                                    state.f0_deviations(),
                                    state.q_deviations(), name, start)

    def run_noise(self, population: Union[SpecPopulation,
                                          Sequence[BiquadSpec]],
                  repeats: int = 20,
                  noise: Union[None, float, NoiseModel] = None,
                  seed: int = 0,
                  band: Union[None, str, float, DecisionBand] = "auto"
                  ) -> NoiseCampaignResult:
        """Batched Section IV-C noise campaign: N dies x R repeats.

        Every die is signatured ``repeats`` times under fresh additive
        measurement noise (``noise``: a :class:`NoiseModel`, a raw
        3-sigma volt spread, or None for the paper's 0.015 V).  The
        repeats run as one ``(n * repeats, samples)`` stack per chunk
        through the same packed signature pipeline as the clean
        campaign; the golden signature stays the noise-free reference.
        Noise is seeded per die from
        ``SeedSequence([seed, NOISE_SEED_DOMAIN])`` children -- a
        pure function of ``(seed, die index)``, so results are
        independent of chunking, and a distinct entropy domain from
        the population builders, so noise never correlates with the
        process deviations drawn from the same user seed.

        The ``(die, repeat)`` chunks fan out over the configured
        executor exactly like the clean campaign's spec chunks; since
        chunking never reshuffles the per-die seed children, pool and
        serial runs produce bit-identical NDF matrices (and hence
        detection rates).
        """
        return self.submit(ScreeningRequest(
            population=population, mode="noise", band=band,
            repeats=repeats, noise=noise, seed=seed))

    def _submit_noise(self, request: ScreeningRequest
                      ) -> NoiseCampaignResult:
        population = request.population
        repeats = request.repeats
        noise = request.noise
        seed = request.seed
        band = request.band
        if self.config.extra_encoders:
            raise ValueError(
                "noise campaigns are single-channel; run them on the "
                "primary engine (channel_engine(0)) -- the "
                "multi-signature dictionary rows stay noise-free "
                "references either way")
        if repeats < 1:
            raise ValueError("need at least one noisy repeat")
        if noise is None:
            three_sigma = NoiseModel().three_sigma
        elif isinstance(noise, NoiseModel):
            three_sigma = noise.three_sigma
        else:
            three_sigma = float(noise)
        start = time.perf_counter()
        population = self._as_population(population)
        if not isinstance(population, SpecPopulation):
            raise TypeError("noise campaigns run over spec populations")
        threshold = self._resolve_threshold(band)
        n = len(population)
        children = np.random.SeedSequence(
            [seed, NOISE_SEED_DOMAIN]).spawn(n)
        die_chunk = self._pool_chunk_size(
            n, max(1, self.config.chunk_size // repeats))
        ranges = [(lo, min(lo + die_chunk, n))
                  for lo in range(0, n, die_chunk)]
        if getattr(self.executor, "needs_picklable_work", False):
            payloads = [(self.config,
                         tuple(population.specs[lo:hi]),
                         tuple(children[lo:hi]), repeats, three_sigma)
                        for lo, hi in ranges]
            outputs = self.executor.map(_noise_chunk_worker, payloads)
        else:
            outputs = self.executor.map(
                lambda bounds: _noise_chunk_ndfs(
                    self.config,
                    population.specs[bounds[0]:bounds[1]],
                    children[bounds[0]:bounds[1]], repeats,
                    three_sigma, self.cache), ranges)
        timing: Dict[str, float] = {}
        for __, section in outputs:
            _merge_timing(timing, section)
        matrix = (np.concatenate([v for v, __ in outputs], axis=0)
                  if outputs else np.empty((0, repeats)))
        timing["total"] = time.perf_counter() - start
        record_engine_timings(timing)
        return NoiseCampaignResult(
            ndf_matrix=matrix, threshold=threshold,
            labels=list(population.labels),
            tolerance=self.config.tolerance, timing=timing,
            executor=getattr(self.executor, "name", "custom"))

    def run_sharded(self, fleet, shards: int = 2,
                    band: Union[None, str, float, DecisionBand] = "auto",
                    shard_size: Optional[int] = None,
                    workdir: Optional[str] = None,
                    heartbeat: float = 5.0,
                    workers: Optional[int] = None,
                    listen: Optional[str] = None,
                    autotune_s: Optional[float] = None
                    ) -> CampaignResult:
        """Screen a fleet split across subprocess shard workers.

        ``fleet`` is a :class:`repro.shard.ShardFleet` (or anything
        :func:`repro.shard.as_fleet` accepts: a
        :class:`SpecPopulation` works directly).  The global die-index
        range splits into shards -- each exactly "a checkpoint whose
        next index starts past another's" -- dispatched to ``workers``
        subprocess workers (default: one per shard, capped at
        ``shards``); partial checkpoints merge in global-index order
        **bit-identical** to the monolithic :meth:`run` /
        :meth:`run_stream` over the same fleet.  A worker that dies or
        stalls past the ``heartbeat`` deadline has its shard
        reassigned, resuming from the shard's last checkpoint -- never
        from zero.  See ``docs/sharding.md``.

        ``shard_size`` caps dies per shard, yielding more shards than
        workers -- finer-grained reassignment on worker loss.  The
        band policy resolves *once* here (the coordinator process);
        workers receive the raw threshold, so calibration never runs
        N times.

        ``listen="HOST:PORT"`` runs the campaign multi-node: instead
        of spawning subprocesses the coordinator accepts ``repro
        shard-worker --connect`` processes over TCP, shipping
        checkpoints inline (no shared filesystem).  ``autotune_s``
        replaces the static plan with shards carved to roughly that
        many seconds of each worker's observed rate.
        """
        return self.submit(ScreeningRequest(
            population=fleet, mode="sharded", band=band,
            shards=shards, shard_size=shard_size,
            shard_workdir=workdir, shard_heartbeat=heartbeat,
            shard_workers=workers, shard_listen=listen,
            shard_autotune_s=autotune_s))

    def _submit_sharded(self, request: ScreeningRequest
                        ) -> CampaignResult:
        from repro.shard import as_fleet
        from repro.shard.coordinator import ShardCoordinator

        if request.keep_signatures:
            raise ValueError(
                "sharded campaigns cannot keep signatures: the packed "
                "batch is not part of the mergeable checkpoint state")
        if request.encoders is not None or self.config.extra_encoders:
            raise ValueError(
                "sharded campaigns are single-channel today; run "
                "multi-signature screening through run()/run_stream()")
        start = time.perf_counter()
        fleet = as_fleet(request.population)
        threshold = self._resolve_threshold(request.band)
        listen = None
        if request.shard_listen is not None:
            from repro.shard.transport import parse_endpoint
            listen = parse_endpoint(request.shard_listen)
        coordinator = ShardCoordinator(
            config=self.config, threshold=threshold, fleet=fleet,
            shards=request.shards, shard_size=request.shard_size,
            workers=request.shard_workers,
            workdir=request.shard_workdir,
            heartbeat=request.shard_heartbeat,
            listen=listen,
            autotune_target_s=request.shard_autotune_s)
        merged, stats = coordinator.run()
        values = merged.values(self._empty_values())
        timing = dict(merged.timing)
        timing["merge"] = float(stats.get("merge_seconds", 0.0))
        mode = "sharded-tcp" if listen is not None else "sharded"
        name = f"{mode}[{coordinator.num_workers}]"
        result = self._package_result(
            values, timing, merged.labels, None, request.band,
            threshold, merged.f0_deviations(), merged.q_deviations(),
            name, start)
        result.shard_stats = stats
        return result

    # ------------------------------------------------------------------
    # Population runners
    # ------------------------------------------------------------------
    @staticmethod
    def _as_population(population, first_index: int = 0):
        """Wrap raw spec sequences; pass population objects through.

        ``first_index`` numbers the placeholder labels globally when a
        stream wraps one raw chunk after another.
        """
        if isinstance(population, (SpecPopulation, CutListPopulation,
                                   EncoderPopulation, TracePopulation)):
            return population
        specs = list(population)
        return SpecPopulation(
            specs, np.full(len(specs), np.nan),
            np.full(len(specs), np.nan),
            [f"die{first_index + i:05d}" for i in range(len(specs))])

    def _resolve_threshold(self, band) -> Optional[float]:
        if band is None:
            return None
        if isinstance(band, DecisionBand):
            return band.threshold
        if band == "auto":
            return self.band().threshold
        return float(band)

    def _pool_chunk_size(self, n: int, chunk_size: int) -> int:
        """Shrink chunks so a pool's workers all get work.

        Chunking never changes results -- populations are pre-seeded
        per die -- only scheduling; serial executors keep the
        configured chunk size.
        """
        workers = getattr(self.executor, "max_workers", None)
        if workers and workers > 1:
            per_worker = -(-n // workers)  # ceil division
            chunk_size = max(1, min(chunk_size, per_worker))
        return chunk_size

    def _empty_values(self) -> np.ndarray:
        """NDF array of an empty population (1-D or ``(0, K)``)."""
        if self.config.extra_encoders:
            return np.empty((0, self.config.num_channels))
        return np.empty(0)

    def _empty_batch(self, collect: bool
                     ) -> Union[None, SignatureBatch,
                                MultiSignatureBatch]:
        """Packed batch of an empty population, channel-shape aware."""
        if not collect:
            return None
        if self.config.extra_encoders:
            return MultiSignatureBatch.empty(self.config.num_channels)
        return SignatureBatch.empty()

    def _concatenate_batches(self, parts
                             ) -> Union[SignatureBatch,
                                        MultiSignatureBatch]:
        """Row-stack collected chunk batches, channel-shape aware.

        Single source of the Multi-vs-plain dispatch for both the
        chunked (:meth:`_merge_outputs`) and the streamed
        (:meth:`run_stream`) merge.
        """
        parts = [part for part in parts if part is not None]
        if not parts:
            return self._empty_batch(True)
        if isinstance(parts[0], MultiSignatureBatch):
            return MultiSignatureBatch.concatenate(parts)
        return SignatureBatch.concatenate(parts)

    def _merge_outputs(self, outputs, collect: bool):
        """Merge chunk outputs ``(values, timing, batch)`` in order.

        NDF parts concatenate along the die axis whether they are
        per-die vectors or ``(n, K)`` multi-channel matrices; packed
        batches concatenate through their own class, so streamed and
        chunked multi-signature campaigns merge channel by channel.
        """
        timing: Dict[str, float] = {}
        for __, section_times, __batch in outputs:
            _merge_timing(timing, section_times)
        values = (np.concatenate([v for v, __, __b in outputs])
                  if outputs else self._empty_values())
        batch = None
        if collect:
            batch = self._concatenate_batches(
                [b for __, __t, b in outputs])
        return values, timing, batch

    def _map_spec_chunks(self, specs: Sequence[BiquadSpec],
                         collect: bool = False
                         ) -> Tuple[np.ndarray, Dict[str, float],
                                    Optional[SignatureBatch]]:
        """Chunk design points over the executor and merge the results.

        Specs travel directly (they are picklable frozen dataclasses);
        no per-die CUT objects are materialized on any path.
        """
        chunk_size = self._pool_chunk_size(len(specs),
                                           self.config.chunk_size)
        chunks = chunked(list(specs), chunk_size)
        if getattr(self.executor, "needs_picklable_work", False):
            # Pool workers use the per-process default cache.
            payloads = [(self.config, tuple(chunk), collect)
                        for chunk in chunks]
            outputs = self.executor.map(_spec_chunk_worker, payloads)
        else:
            outputs = self.executor.map(
                lambda chunk: _spec_chunk_ndfs(
                    self.config, chunk, self.cache, collect), chunks)
        return self._merge_outputs(outputs, collect)

    def _run_specs(self, population: SpecPopulation,
                   collect: bool = False
                   ) -> Tuple[np.ndarray, Dict[str, float], List[str],
                              Optional[SignatureBatch]]:
        if len(population) == 0:
            return (self._empty_values(), {"golden": 0.0}, [],
                    self._empty_batch(collect))
        values, timing, batch = self._map_spec_chunks(population.specs,
                                                      collect)
        return values, timing, list(population.labels), batch

    def _run_traces(self, population: TracePopulation,
                    collect: bool = False
                    ) -> Tuple[np.ndarray, Dict[str, float], List[str],
                               Optional[SignatureBatch]]:
        """Measured-trace stacks: encode/score only, shared-memory aware.

        With a :class:`~repro.campaign.executors.SharedMemoryExecutor`
        the ``(N, T)`` stack is published to shared memory once and
        workers attach zero-copy row views; with a plain process pool
        the chunk rows travel pickled; serially the views are used in
        place.
        """
        n = len(population)
        if n == 0:
            return (self._empty_values(), {"golden": 0.0}, [],
                    self._empty_batch(collect))
        stack = population.y_stack
        chunk_size = self._pool_chunk_size(n, self.config.chunk_size)
        ranges = [(lo, min(lo + chunk_size, n))
                  for lo in range(0, n, chunk_size)]
        map_shared = getattr(self.executor, "map_shared", None)
        if map_shared is not None:
            outputs = map_shared(
                _trace_chunk_worker_shm, stack,
                lambda handle: [(self.config, handle, lo, hi, collect)
                                for lo, hi in ranges])
        elif getattr(self.executor, "needs_picklable_work", False):
            payloads = [(self.config, stack[lo:hi], collect)
                        for lo, hi in ranges]
            outputs = self.executor.map(_trace_chunk_worker, payloads)
        else:
            outputs = self.executor.map(
                lambda bounds: _trace_rows_ndfs(
                    self.config, stack[bounds[0]:bounds[1]],
                    self.cache, collect), ranges)
        values, timing, batch = self._merge_outputs(outputs, collect)
        return values, timing, list(population.labels), batch

    def _run_cuts(self, population: CutListPopulation,
                  collect: bool = False
                  ) -> Tuple[np.ndarray, Dict[str, float], List[str],
                             Optional[SignatureBatch]]:
        """Generic CUTs: batched when they expose ``response``."""
        if len(population) == 0:
            return (self._empty_values(), {"golden": 0.0}, [],
                    self._empty_batch(collect))
        if all(hasattr(cut, "response") for cut in population.cuts):
            values, timing, batch = _response_chunk_ndfs(
                self.config, population.cuts, self.cache, collect)
            return values, timing, list(population.labels), batch
        if self.config.extra_encoders:
            raise ValueError(
                "multi-signature campaigns need populations that take "
                "the batched trace path (spec, trace, or netlist/"
                "response cut populations); per-CUT lissajous "
                "fallbacks only encode the primary channel")
        # Fallback: per-CUT traces (e.g. transient-simulated CUTs) are
        # stacked on their own shared grid, then the packed
        # encode/score path runs once over the whole stack.  Each
        # trace keeps its native time base (shifted to t = 0), exactly
        # like the per-die flow.  Traces are generated one at a time
        # and only the Y rows are retained (the stack the batch needs
        # anyway), so memory stays O(stack), never O(N) full traces.
        timing: Dict[str, float] = {}
        with _stage(timing, "golden"):
            golden = self.golden()
        with _stage(timing, "traces", dies=len(population)):
            first = population.cuts[0].lissajous(
                self.config.stimulus, self.config.samples_per_period)
            xs, first_y = first.points()
            y_stack = np.empty((len(population), xs.size))
            y_stack[0] = first_y
            shared_grid = True
            for i, cut in enumerate(population.cuts[1:], start=1):
                trace = cut.lissajous(self.config.stimulus,
                                      self.config.samples_per_period)
                if not (trace.period == first.period
                        and np.array_equal(trace.times, first.times)
                        and np.array_equal(trace.points()[0], xs)):
                    shared_grid = False
                    break
                y_stack[i] = trace.points()[1]
        if shared_grid:
            with _stage(timing, "encode", dies=len(population)):
                codes = batch_codes(self.config.encoder, xs, y_stack)
            with _stage(timing, "signature", dies=len(population)):
                batch = batch_extract(first.times - first.times[0],
                                      codes, first.period)
            with _stage(timing, "ndf", dies=len(population)):
                values = batch.ndf_to(golden.signature)
            return (values, timing, list(population.labels),
                    batch if collect else None)
        # Heterogeneous grids: score die by die, one trace resident at
        # a time (rare -- mixed CUT families in one population).
        from repro.core.ndf import ndf as _ndf
        del y_stack
        with _stage(timing, "encode+score", dies=len(population)):
            values = np.empty(len(population))
            signatures: List[Signature] = []
            for i, cut in enumerate(population.cuts):
                trace = cut.lissajous(self.config.stimulus,
                                      self.config.samples_per_period)
                txs, tys = trace.points()
                codes = batch_codes(self.config.encoder, txs,
                                    tys[None, :])[0]
                observed = Signature.from_samples(
                    trace.times - trace.times[0], codes, trace.period)
                if collect:
                    signatures.append(observed)
                values[i] = _ndf(observed, golden.signature)
        batch = (SignatureBatch.from_signatures(signatures)
                 if collect else None)
        return values, timing, list(population.labels), batch

    def _run_encoders(self, population: EncoderPopulation,
                      collect: bool = False
                      ) -> Tuple[np.ndarray, Dict[str, float], List[str],
                                 Optional[SignatureBatch]]:
        """One fault-free CUT seen through N varied monitor banks.

        The golden signature stays the *nominal*-bank reference, so the
        returned NDFs quantify the test margin the monitor's own
        variability consumes (the seed's per-die loop re-derived the
        golden through each varied bank and therefore measured exactly
        zero).  Encoding still runs per bank (each bank draws its own
        boundaries), but the signatures of all banks pack into one
        batch and score through the fleet-NDF kernel.
        """
        if self.config.extra_encoders:
            raise ValueError(
                "encoder populations vary the primary monitor bank "
                "per die; extra signature channels are ambiguous here "
                "-- run them single-channel")
        if len(population) == 0:
            return (np.empty(0), {"golden": 0.0}, [],
                    SignatureBatch.empty() if collect else None)
        timing: Dict[str, float] = {}
        with _stage(timing, "golden"):
            golden = self.golden()
        with _stage(timing, "encode", dies=len(population)):
            code_stack = np.stack(
                [batch_codes(encoder, golden.x, golden.y[None, :])[0]
                 for encoder in population.encoders])
        with _stage(timing, "signature", dies=len(population)):
            batch = batch_extract(golden.times, code_stack,
                                  golden.period)
        with _stage(timing, "ndf", dies=len(population)):
            values = batch.ndf_to(golden.signature)
        return (values, timing, list(population.labels),
                batch if collect else None)
