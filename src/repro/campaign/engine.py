"""The batched test-campaign engine.

One :class:`CampaignEngine` runs the paper's full signature flow --
stimulus, Lissajous composition, zone encoding, signature capture, NDF,
verdict -- over an entire *population* of CUTs in a single call,
instead of once per die through
:class:`repro.core.testflow.SignatureTester`:

* golden signatures and calibrated decision bands are computed once per
  configuration and content-cached (:mod:`repro.campaign.cache`);
* the hot path is vectorized over stacked ``(N, samples)`` arrays
  (:mod:`repro.campaign.batch`);
* an executor layer chunks the population serially or over a process
  pool (:mod:`repro.campaign.executors`) with deterministic per-die
  seeding, so every executor yields bit-identical verdict vectors.

Worked example (mirrors ``examples/campaign_fleet.py``)::

    from repro.campaign import CampaignEngine, montecarlo_dies
    from repro.monitor.configurations import table1_encoder
    from repro.paper import PAPER_BIQUAD, PAPER_STIMULUS

    engine = CampaignEngine.from_parts(
        table1_encoder(), PAPER_STIMULUS, PAPER_BIQUAD)
    dies = montecarlo_dies(PAPER_BIQUAD, count=500, sigma_f0=0.03,
                           seed=7)
    result = engine.run(dies, band="auto")   # Fig. 8-calibrated band
    print(result.summary())                  # verdicts, escapes, timing
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.campaign.batch import (
    batch_codes,
    batch_multitone_eval,
    sample_times,
    trace_population_ndf,
)
from repro.campaign.cache import (
    DEFAULT_CACHE,
    GoldenArtifacts,
    GoldenCache,
    encoder_key,
    spec_key,
    stimulus_key,
)
from repro.campaign.executors import SerialExecutor, chunked
from repro.campaign.result import CampaignResult
from repro.campaign.scenarios import (
    CutListPopulation,
    EncoderPopulation,
    SpecPopulation,
    deviation_sweep_population,
)
from repro.core.decision import DecisionBand, ThresholdCalibration
from repro.core.ndf import ndf
from repro.core.signature import Signature
from repro.core.zones import ZoneEncoder
from repro.filters.biquad import BiquadFilter, BiquadSpec
from repro.signals.multitone import Multitone

#: Default Fig. 8 calibration sweep for "auto" decision bands.
DEFAULT_CALIBRATION_DEVIATIONS: Tuple[float, ...] = tuple(
    np.linspace(-0.10, 0.10, 9))

Population = Union[SpecPopulation, CutListPopulation, EncoderPopulation,
                   Sequence[BiquadSpec]]


@dataclass(frozen=True)
class CampaignConfig:
    """Everything that identifies one test configuration.

    Instances are picklable (they travel to pool workers) and define
    the content key under which golden artifacts are cached.
    """

    encoder: ZoneEncoder
    stimulus: Multitone
    golden_spec: BiquadSpec
    samples_per_period: int = 2048
    tolerance: float = 0.05
    calibration_deviations: Tuple[float, ...] = \
        DEFAULT_CALIBRATION_DEVIATIONS
    chunk_size: int = 256

    def golden_key(self) -> Tuple:
        """Content key of the golden artifacts for this configuration."""
        return ("golden", stimulus_key(self.stimulus),
                encoder_key(self.encoder), spec_key(self.golden_spec),
                int(self.samples_per_period))


# ----------------------------------------------------------------------
# Chunk workers (module level: pool executors pickle them)
# ----------------------------------------------------------------------
def _compute_golden(config: CampaignConfig) -> GoldenArtifacts:
    """Golden trace, codes and signature for one configuration."""
    stimulus = config.stimulus
    period = stimulus.period()
    times = sample_times(period, config.samples_per_period)
    x = np.asarray(stimulus(times), dtype=float)
    response = BiquadFilter(config.golden_spec).response(stimulus)
    y = batch_multitone_eval([response], times)[0]
    codes = batch_codes(config.encoder, x, y[None, :])[0]
    signature = Signature.from_samples(times, codes, period)
    return GoldenArtifacts(times, x, y, codes, signature, period)


def _golden_artifacts(config: CampaignConfig,
                      cache: GoldenCache) -> GoldenArtifacts:
    return cache.get_or_compute(config.golden_key(),
                                lambda: _compute_golden(config))


def _response_chunk_ndfs(config: CampaignConfig, cuts: Sequence,
                         cache: GoldenCache
                         ) -> Tuple[np.ndarray, Dict[str, float]]:
    """NDFs of a chunk of linear CUTs (objects with ``response``)."""
    timing: Dict[str, float] = {}
    t0 = time.perf_counter()
    golden = _golden_artifacts(config, cache)
    t1 = time.perf_counter()
    timing["golden"] = t1 - t0
    responses = [cut.response(config.stimulus) for cut in cuts]
    y = batch_multitone_eval(responses, golden.times)
    t2 = time.perf_counter()
    timing["traces"] = t2 - t1
    values = trace_population_ndf(config.encoder, golden.times, golden.x,
                                  y, golden.period, golden.signature)
    timing["encode+score"] = time.perf_counter() - t2
    return values, timing


def _spec_chunk_worker(payload: Tuple[CampaignConfig, Tuple[BiquadSpec, ...]]
                       ) -> Tuple[np.ndarray, Dict[str, float]]:
    """Pool-side entry point; uses the worker process' default cache."""
    config, specs = payload
    cuts = [BiquadFilter(spec) for spec in specs]
    return _response_chunk_ndfs(config, cuts, DEFAULT_CACHE)


class CampaignEngine:
    """Runs signature-test campaigns over CUT populations.

    Parameters
    ----------
    config:
        The test configuration (stimulus, encoder, golden nominal).
    cache:
        Golden/calibration cache; the process-wide default when omitted.
    executor:
        Chunk scheduler; :class:`SerialExecutor` when omitted.
    """

    def __init__(self, config: CampaignConfig,
                 cache: Optional[GoldenCache] = None,
                 executor=None) -> None:
        self.config = config
        self.cache = cache if cache is not None else DEFAULT_CACHE
        self.executor = executor if executor is not None \
            else SerialExecutor()

    @classmethod
    def from_parts(cls, encoder: ZoneEncoder, stimulus: Multitone,
                   golden_spec: BiquadSpec,
                   samples_per_period: int = 2048,
                   tolerance: float = 0.05, **kwargs) -> "CampaignEngine":
        """Engine from loose bench parts (the common construction)."""
        config = CampaignConfig(encoder, stimulus, golden_spec,
                                samples_per_period, tolerance)
        return cls(config, **kwargs)

    # ------------------------------------------------------------------
    # Cached golden artifacts / calibration
    # ------------------------------------------------------------------
    def golden(self) -> GoldenArtifacts:
        """Golden trace + signature (content-cached)."""
        return _golden_artifacts(self.config, self.cache)

    def calibration(self,
                    deviations: Optional[Sequence[float]] = None
                    ) -> ThresholdCalibration:
        """Fig. 8 sweep for this configuration (content-cached)."""
        devs = tuple(float(d) for d in (
            deviations if deviations is not None
            else self.config.calibration_deviations))
        key = ("calibration", self.config.golden_key(), devs)

        def compute() -> ThresholdCalibration:
            population = deviation_sweep_population(
                self.config.golden_spec, devs)
            values, __ = _response_chunk_ndfs(
                self.config, population.cuts(), self.cache)
            return ThresholdCalibration(np.asarray(devs), values)

        return self.cache.get_or_compute(key, compute)

    def band(self, tolerance: Optional[float] = None) -> DecisionBand:
        """Decision band calibrated for a ground-truth tolerance."""
        tol = float(tolerance) if tolerance is not None \
            else self.config.tolerance
        return self.calibration().band_for_tolerance(tol)

    # ------------------------------------------------------------------
    # Campaign entry point
    # ------------------------------------------------------------------
    def run(self, population: Population,
            band: Union[None, str, float, DecisionBand] = "auto"
            ) -> CampaignResult:
        """Screen a whole population and collect fleet statistics.

        ``band`` selects the verdict policy: ``"auto"`` calibrates the
        Fig. 8 band for the configured tolerance, a float is a raw NDF
        threshold, a :class:`DecisionBand` is used as-is and ``None``
        skips verdicts (NDFs only).

        The configured executor parallelizes *spec* populations (the
        chunkable fast path); cut and encoder populations always run
        in process, and the result's ``executor`` field reports what
        actually ran.
        """
        start = time.perf_counter()
        if not isinstance(population, (SpecPopulation, CutListPopulation,
                                       EncoderPopulation)):
            specs = list(population)
            population = SpecPopulation(
                specs, np.full(len(specs), np.nan),
                np.full(len(specs), np.nan),
                [f"die{i:05d}" for i in range(len(specs))])
        threshold = self._resolve_threshold(band)
        if isinstance(population, SpecPopulation):
            values, timing, labels = self._run_specs(population)
            f0_devs = population.f0_deviations
            q_devs = population.q_deviations
            executor_name = getattr(self.executor, "name", "custom")
        elif isinstance(population, CutListPopulation):
            values, timing, labels = self._run_cuts(population)
            f0_devs = q_devs = None
            # Cut/encoder populations run in process: their per-die
            # work is one vector op, not worth shipping to a pool.
            executor_name = "serial"
        else:
            values, timing, labels = self._run_encoders(population)
            f0_devs = q_devs = None
            executor_name = "serial"
        verdicts = None if threshold is None else values <= threshold
        timing["total"] = time.perf_counter() - start
        return CampaignResult(
            ndfs=values, threshold=threshold, verdicts=verdicts,
            f0_deviations=f0_devs, q_deviations=q_devs, labels=labels,
            tolerance=self.config.tolerance, timing=timing,
            executor=executor_name, cache_info=self.cache.info)

    # ------------------------------------------------------------------
    # Population runners
    # ------------------------------------------------------------------
    def _resolve_threshold(self, band) -> Optional[float]:
        if band is None:
            return None
        if isinstance(band, DecisionBand):
            return band.threshold
        if band == "auto":
            return self.band().threshold
        return float(band)

    def _map_chunks(self, cuts: Sequence
                    ) -> Tuple[np.ndarray, Dict[str, float]]:
        """Chunk linear CUTs over the executor and merge the results."""
        chunk_size = self.config.chunk_size
        workers = getattr(self.executor, "max_workers", None)
        if workers and workers > 1:
            # Give every pool worker something to do: shrink chunks so
            # the population spreads across the pool.  Chunking never
            # changes results (dies are pre-seeded), only scheduling.
            per_worker = -(-len(cuts) // workers)  # ceil division
            chunk_size = max(1, min(chunk_size, per_worker))
        chunks = chunked(list(cuts), chunk_size)
        if getattr(self.executor, "needs_picklable_work", False):
            # Pool workers rebuild specs (always picklable) and use the
            # per-process default cache.
            payloads = [(self.config,
                         tuple(cut.spec for cut in chunk))
                        for chunk in chunks]
            outputs = self.executor.map(_spec_chunk_worker, payloads)
        else:
            outputs = self.executor.map(
                lambda chunk: _response_chunk_ndfs(self.config, chunk,
                                                   self.cache), chunks)
        timing: Dict[str, float] = {}
        for __, section_times in outputs:
            for key, value in section_times.items():
                timing[key] = timing.get(key, 0.0) + value
        values = (np.concatenate([v for v, __ in outputs])
                  if outputs else np.empty(0))
        return values, timing

    def _run_specs(self, population: SpecPopulation
                   ) -> Tuple[np.ndarray, Dict[str, float], List[str]]:
        if len(population) == 0:
            return np.empty(0), {"golden": 0.0}, []
        values, timing = self._map_chunks(population.cuts())
        return values, timing, list(population.labels)

    def _run_cuts(self, population: CutListPopulation
                  ) -> Tuple[np.ndarray, Dict[str, float], List[str]]:
        """Generic CUTs: batched when they expose ``response``."""
        if len(population) == 0:
            return np.empty(0), {"golden": 0.0}, []
        if all(hasattr(cut, "response") for cut in population.cuts):
            values, timing = _response_chunk_ndfs(
                self.config, population.cuts, self.cache)
            return values, timing, list(population.labels)
        # Fallback: per-CUT traces (e.g. transient-simulated CUTs),
        # still scored against the shared cached golden.
        timing: Dict[str, float] = {}
        t0 = time.perf_counter()
        golden = self.golden()
        timing["golden"] = time.perf_counter() - t0
        t1 = time.perf_counter()
        values = np.empty(len(population))
        for i, cut in enumerate(population.cuts):
            trace = cut.lissajous(self.config.stimulus,
                                  self.config.samples_per_period)
            xs, ys = trace.points()
            codes = batch_codes(self.config.encoder, xs, ys[None, :])[0]
            observed = Signature.from_samples(
                trace.times - trace.times[0], codes, trace.period)
            values[i] = ndf(observed, golden.signature)
        timing["traces+score"] = time.perf_counter() - t1
        return values, timing, list(population.labels)

    def _run_encoders(self, population: EncoderPopulation
                      ) -> Tuple[np.ndarray, Dict[str, float], List[str]]:
        """One fault-free CUT seen through N varied monitor banks.

        The golden signature stays the *nominal*-bank reference, so the
        returned NDFs quantify the test margin the monitor's own
        variability consumes (the seed's per-die loop re-derived the
        golden through each varied bank and therefore measured exactly
        zero).
        """
        if len(population) == 0:
            return np.empty(0), {"golden": 0.0}, []
        timing: Dict[str, float] = {}
        t0 = time.perf_counter()
        golden = self.golden()
        t1 = time.perf_counter()
        timing["golden"] = t1 - t0
        values = np.empty(len(population))
        for i, encoder in enumerate(population.encoders):
            codes = batch_codes(encoder, golden.x, golden.y[None, :])[0]
            observed = Signature.from_samples(golden.times, codes,
                                              golden.period)
            values[i] = ndf(observed, golden.signature)
        timing["encode+score"] = time.perf_counter() - t1
        return values, timing, list(population.labels)
