"""The shard-worker loop behind ``repro shard-worker``.

A worker is a subprocess speaking the :mod:`repro.shard.protocol`
line protocol on stdin/stdout.  It receives one ``init`` (engine
config, resolved threshold, fleet description, trace context), then
``assign`` messages naming global die ranges.  Each assignment runs
as an ordinary checkpointed streamed campaign
(:meth:`CampaignEngine.run_stream`) over ``fleet.chunks(lo, hi)``
into the shard's own checkpoint file -- which is the whole trick: a
shard worker *is* a streamed campaign whose checkpoint starts past
another's, so every crash-safety and bit-identity property of PR 7's
stream machinery carries over unchanged.

Reassignment resumes, never restarts: on assign, the worker loads the
shard's checkpoint if a previous (killed) worker left one and begins
at its ``next_index``.  A daemon thread emits ``ping`` heartbeats so
the coordinator can tell a stalled worker from a slow chunk.

Fault points (the worker-loss drill):

=========================  =========================================
``shard.worker.kill``      SIGKILL this worker after a progress
                           report (armed via ``REPRO_FAULTS`` in the
                           *worker's* environment; the coordinator
                           strips the variable from respawned
                           workers so the drill kills exactly once)
``shard.worker.error``     raise inside the assignment (exercises
                           the ``error`` protocol path)
=========================  =========================================
"""

from __future__ import annotations

import os
import signal
import sys
import threading
import traceback
from typing import Dict, Optional, TextIO

from repro.campaign.checkpoint import StreamCheckpoint
from repro.campaign.engine import CampaignEngine
from repro.obs.trace import (
    TraceContext,
    context_tracer,
    install_tracer,
    span,
    stamped_records,
)
from repro.shard.protocol import decode_message, encode_message
from repro.shard.protocol import unpack_payload
from repro.testing.faultinject import fail_if_armed, should_fail


class _Emitter:
    """Locked line writer (the heartbeat thread shares stdout)."""

    def __init__(self, stream: TextIO) -> None:
        self._stream = stream
        self._lock = threading.Lock()

    def send(self, message: Dict[str, object]) -> None:
        line = encode_message(message)
        with self._lock:
            self._stream.write(line + "\n")
            self._stream.flush()


def _heartbeat_loop(emit: _Emitter, interval: float,
                    stop: threading.Event) -> None:
    while not stop.wait(interval):
        try:
            emit.send({"type": "ping"})
        except Exception:
            return  # coordinator went away; the stdin loop will end us


def _progressing_chunks(chunks, emit: _Emitter, shard_index: int,
                        start: int):
    """Yield chunks, reporting progress between draws.

    The engine draws chunk ``k+1`` only after chunk ``k`` was screened
    and checkpointed, so the report between draws means "everything up
    to ``next_index`` is durably done".  The kill fault point sits
    here too: dying right after a progress report is the worst case
    for the coordinator (it believes the worker healthy).
    """
    emitted = start
    for chunk in chunks:
        yield chunk
        emitted += len(chunk)
        emit.send({"type": "progress", "shard": shard_index,
                   "next_index": emitted})
        if should_fail("shard.worker.kill"):
            os.kill(os.getpid(), signal.SIGKILL)


def worker_main(stdin: Optional[TextIO] = None,
                stdout: Optional[TextIO] = None) -> int:
    """Run the worker loop until ``shutdown`` or EOF; returns exit code."""
    stdin = stdin if stdin is not None else sys.stdin
    stdout = stdout if stdout is not None else sys.stdout
    emit = _Emitter(stdout)

    init_line = stdin.readline()
    if not init_line:
        return 1
    init = decode_message(init_line)
    if init.get("type") != "init":
        emit.send({"type": "error", "shard": None,
                   "message": f"expected init, got {init.get('type')!r}"})
        return 1
    config = unpack_payload(init["config_b64"])
    fleet = unpack_payload(init["fleet_b64"])
    threshold = init.get("threshold")
    checkpoint_every = int(init.get("checkpoint_every", 1))
    heartbeat = float(init.get("heartbeat", 5.0))
    tracer = None
    if init.get("trace") is not None:
        tracer = context_tracer(
            TraceContext.from_dict(init["trace"]))
        install_tracer(tracer)

    engine = CampaignEngine(config)
    stop = threading.Event()
    pinger = threading.Thread(
        target=_heartbeat_loop, args=(emit, heartbeat / 2.0, stop),
        daemon=True, name="shard-heartbeat")
    pinger.start()
    emit.send({"type": "hello", "pid": os.getpid()})

    try:
        for line in stdin:
            message = decode_message(line)
            kind = message.get("type")
            if kind == "shutdown":
                break
            if kind != "assign":
                emit.send({"type": "error", "shard": None,
                           "message": f"unexpected message {kind!r}"})
                return 1
            shard_index = int(message["shard"])
            lo, hi = int(message["lo"]), int(message["hi"])
            checkpoint = str(message["checkpoint"])
            try:
                num_dies = _run_assignment(
                    engine, fleet, emit, shard_index, lo, hi,
                    checkpoint, threshold, checkpoint_every)
            except Exception:
                emit.send({"type": "error", "shard": shard_index,
                           "message": traceback.format_exc(limit=8)})
                return 1
            rows = [] if tracer is None else stamped_records(tracer)
            if tracer is not None:
                tracer.clear()
            emit.send({"type": "done", "shard": shard_index,
                       "num_dies": num_dies, "checkpoint": checkpoint,
                       "spans": rows})
        return 0
    finally:
        stop.set()


def _run_assignment(engine: CampaignEngine, fleet, emit: _Emitter,
                    shard_index: int, lo: int, hi: int,
                    checkpoint: str, threshold,
                    checkpoint_every: int) -> int:
    """Screen shard ``[lo, hi)`` into ``checkpoint``; returns dies done.

    Resumes from the shard's last checkpoint when one exists (a
    previous worker died mid-shard) -- never from zero.  The band
    passed down is the coordinator's *resolved* threshold, so no
    worker ever re-runs calibration.
    """
    state = StreamCheckpoint.load_if_valid(checkpoint)
    resume_at = lo
    if state is not None and lo <= state.next_index <= hi:
        resume_at = state.next_index
    with span("shard.worker.run", shard=shard_index, lo=lo, hi=hi,
              resume_at=resume_at, pid=os.getpid()):
        fail_if_armed("shard.worker.error")
        engine.run_stream(
            _progressing_chunks(fleet.chunks(resume_at, hi), emit,
                                shard_index, resume_at),
            band=threshold, checkpoint=checkpoint,
            checkpoint_every=checkpoint_every,
            stream_offset=resume_at)
    return hi - lo


__all__ = ["worker_main"]
