"""The shard-worker loop behind ``repro shard-worker``.

A worker speaks the :mod:`repro.shard.protocol` line protocol on
stdin/stdout when the coordinator spawned it, or over a TCP socket
when it dialed in with ``repro shard-worker --connect HOST:PORT``
(the two carriers are byte-identical: the socket path simply wraps
the connection in text streams and runs the same loop).  It receives
one ``init`` (engine config, resolved threshold, fleet description,
trace context, remote flag), then ``assign`` messages naming global
die ranges.  Each assignment runs as an ordinary checkpointed
streamed campaign (:meth:`CampaignEngine.run_stream`) over
``fleet.chunks(lo, hi)`` into the shard's own checkpoint file --
which is the whole trick: a shard worker *is* a streamed campaign
whose checkpoint starts past another's, so every crash-safety and
bit-identity property of PR 7's stream machinery carries over
unchanged.

A *remote* worker (``init.remote`` true) assumes no shared
filesystem: it checkpoints into its own temp dir, ships the archive
bytes home base64-encoded -- in ``progress`` whenever the checkpoint
advanced, and in ``done`` -- and seeds a reassigned shard's resume
from the ``resume_b64`` bytes the coordinator kept.

Reassignment resumes, never restarts: on assign, the worker loads the
shard's checkpoint if a previous (killed) worker left one and begins
at its ``next_index``.  A daemon thread emits ``ping`` heartbeats so
the coordinator can tell a stalled worker from a slow chunk.

Fault points (the worker-loss drill):

=========================  =========================================
``shard.worker.kill``      SIGKILL this worker after a progress
                           report (armed via ``REPRO_FAULTS`` in the
                           *worker's* environment; the coordinator
                           strips the variable from respawned
                           workers so the drill kills exactly once)
``shard.worker.error``     raise inside the assignment (exercises
                           the ``error`` protocol path)
=========================  =========================================
"""

from __future__ import annotations

import argparse
import base64
import os
import shutil
import signal
import socket as socket_module
import sys
import tempfile
import threading
import traceback
from typing import Dict, List, Optional, TextIO

from repro.campaign.checkpoint import StreamCheckpoint
from repro.campaign.engine import CampaignEngine
from repro.obs.trace import (
    TraceContext,
    context_tracer,
    install_tracer,
    span,
    stamped_records,
)
from repro.shard.protocol import decode_message, encode_message
from repro.shard.protocol import unpack_payload
from repro.shard.transport import dial, parse_endpoint
from repro.testing.faultinject import fail_if_armed, should_fail


class _Emitter:
    """Locked line writer (the heartbeat thread shares stdout)."""

    def __init__(self, stream: TextIO) -> None:
        self._stream = stream
        self._lock = threading.Lock()

    def send(self, message: Dict[str, object]) -> None:
        line = encode_message(message)
        with self._lock:
            self._stream.write(line + "\n")
            self._stream.flush()


def _heartbeat_loop(emit: _Emitter, interval: float,
                    stop: threading.Event) -> None:
    while not stop.wait(interval):
        try:
            emit.send({"type": "ping"})
        except Exception:
            return  # coordinator went away; the stdin loop will end us


def _progressing_chunks(chunks, emit: _Emitter, shard_index: int,
                        start: int,
                        checkpoint: Optional[str] = None):
    """Yield chunks, reporting progress between draws.

    The engine draws chunk ``k+1`` only after chunk ``k`` was screened
    and checkpointed, so the report between draws means "everything up
    to ``next_index`` is durably done".  A remote worker (``checkpoint``
    given) attaches the checkpoint's archive bytes whenever the file
    advanced, so the coordinator always holds the partial state a
    reassignment would resume from -- the only copy that survives a
    partition.  The kill fault point sits here too: dying right after
    a progress report is the worst case for the coordinator (it
    believes the worker healthy).
    """
    emitted = start
    last_stat = None
    for chunk in chunks:
        yield chunk
        emitted += len(chunk)
        message: Dict[str, object] = {
            "type": "progress", "shard": shard_index,
            "next_index": emitted}
        if checkpoint is not None:
            try:
                stat = os.stat(checkpoint)
                key = (stat.st_mtime_ns, stat.st_size)
            except OSError:
                key = None
            if key is not None and key != last_stat:
                last_stat = key
                with open(checkpoint, "rb") as fh:
                    message["checkpoint_b64"] = base64.b64encode(
                        fh.read()).decode("ascii")
        emit.send(message)
        if should_fail("shard.worker.kill"):
            os.kill(os.getpid(), signal.SIGKILL)


def worker_main(stdin: Optional[TextIO] = None,
                stdout: Optional[TextIO] = None) -> int:
    """Run the worker loop until ``shutdown`` or EOF; returns exit code."""
    stdin = stdin if stdin is not None else sys.stdin
    stdout = stdout if stdout is not None else sys.stdout
    emit = _Emitter(stdout)

    init_line = stdin.readline()
    if not init_line:
        return 1
    init = decode_message(init_line)
    if init.get("type") != "init":
        emit.send({"type": "error", "shard": None,
                   "message": f"expected init, got {init.get('type')!r}"})
        return 1
    config = unpack_payload(init["config_b64"])
    fleet = unpack_payload(init["fleet_b64"])
    threshold = init.get("threshold")
    checkpoint_every = int(init.get("checkpoint_every", 1))
    heartbeat = float(init.get("heartbeat", 5.0))
    remote = bool(init.get("remote", False))
    tracer = None
    if init.get("trace") is not None:
        tracer = context_tracer(
            TraceContext.from_dict(init["trace"]))
        install_tracer(tracer)

    engine = CampaignEngine(config)
    workdir = tempfile.mkdtemp(prefix="repro-shard-worker-") \
        if remote else None
    stop = threading.Event()
    pinger = threading.Thread(
        target=_heartbeat_loop, args=(emit, heartbeat / 2.0, stop),
        daemon=True, name="shard-heartbeat")
    pinger.start()
    emit.send({"type": "hello", "pid": os.getpid(),
               "host": socket_module.gethostname()})

    try:
        for line in stdin:
            message = decode_message(line)
            kind = message.get("type")
            if kind == "shutdown":
                break
            if kind != "assign":
                emit.send({"type": "error", "shard": None,
                           "message": f"unexpected message {kind!r}"})
                return 1
            shard_index = int(message["shard"])
            lo, hi = int(message["lo"]), int(message["hi"])
            checkpoint = str(message["checkpoint"])
            local_path = checkpoint
            if remote:
                # No shared filesystem: checkpoint locally, seeded
                # from the bytes the coordinator kept for this shard.
                local_path = os.path.join(
                    workdir, os.path.basename(checkpoint))
                resume_b64 = message.get("resume_b64")
                if resume_b64 is not None:
                    with open(local_path, "wb") as fh:
                        fh.write(base64.b64decode(resume_b64))
            try:
                num_dies = _run_assignment(
                    engine, fleet, emit, shard_index, lo, hi,
                    local_path, threshold, checkpoint_every,
                    ship_checkpoints=remote)
            except Exception:
                emit.send({"type": "error", "shard": shard_index,
                           "message": traceback.format_exc(limit=8)})
                return 1
            rows = [] if tracer is None else stamped_records(tracer)
            if tracer is not None:
                tracer.clear()
            done: Dict[str, object] = {
                "type": "done", "shard": shard_index,
                "num_dies": num_dies, "checkpoint": checkpoint,
                "spans": rows}
            if remote:
                with open(local_path, "rb") as fh:
                    done["checkpoint_b64"] = base64.b64encode(
                        fh.read()).decode("ascii")
            emit.send(done)
        return 0
    finally:
        stop.set()
        if workdir is not None:
            shutil.rmtree(workdir, ignore_errors=True)


def _run_assignment(engine: CampaignEngine, fleet, emit: _Emitter,
                    shard_index: int, lo: int, hi: int,
                    checkpoint: str, threshold,
                    checkpoint_every: int,
                    ship_checkpoints: bool = False) -> int:
    """Screen shard ``[lo, hi)`` into ``checkpoint``; returns dies done.

    Resumes from the shard's last checkpoint when one exists (a
    previous worker died mid-shard) -- never from zero.  The band
    passed down is the coordinator's *resolved* threshold, so no
    worker ever re-runs calibration.
    """
    state = StreamCheckpoint.load_if_valid(checkpoint)
    resume_at = lo
    if state is not None and lo <= state.next_index <= hi:
        resume_at = state.next_index
    with span("shard.worker.run", shard=shard_index, lo=lo, hi=hi,
              resume_at=resume_at, pid=os.getpid()):
        fail_if_armed("shard.worker.error")
        engine.run_stream(
            _progressing_chunks(
                fleet.chunks(resume_at, hi), emit, shard_index,
                resume_at,
                checkpoint=checkpoint if ship_checkpoints else None),
            band=threshold, checkpoint=checkpoint,
            checkpoint_every=checkpoint_every,
            stream_offset=resume_at)
    return hi - lo


def connect_main(host: str, port: int, attempts: int = 40,
                 delay: float = 0.25) -> int:
    """Dial a listening coordinator and run the worker loop over TCP.

    The socket is wrapped in line-buffered text streams and handed to
    the exact :func:`worker_main` the stdio path runs -- the protocol
    and every screening semantic are carrier-independent by
    construction.
    """
    sock = dial(host, port, attempts=attempts, delay=delay)
    try:
        sock.setsockopt(socket_module.IPPROTO_TCP,
                        socket_module.TCP_NODELAY, 1)
    except OSError:
        pass
    reader = sock.makefile("r", encoding="utf-8", newline="\n")
    writer = sock.makefile("w", encoding="utf-8", newline="\n")
    try:
        return worker_main(stdin=reader, stdout=writer)
    except (BrokenPipeError, ConnectionError, OSError):
        return 1  # coordinator went away mid-campaign
    finally:
        for handle in (reader, writer):
            try:
                handle.close()
            except (OSError, ValueError):
                pass
        try:
            sock.close()
        except OSError:
            pass


def worker_cli(argv: Optional[List[str]] = None) -> int:
    """``repro shard-worker`` entry: stdio by default, TCP with
    ``--connect HOST:PORT``."""
    parser = argparse.ArgumentParser(
        prog="repro shard-worker",
        description="Run a shard worker: speaks the shard line "
                    "protocol on stdin/stdout (when spawned by a "
                    "coordinator) or dials a coordinator listening "
                    "with --listen (multi-node campaigns).")
    parser.add_argument("--connect", metavar="HOST:PORT", default=None,
                        help="dial a coordinator instead of speaking "
                             "on stdin/stdout")
    parser.add_argument("--retries", type=int, default=40,
                        help="connection attempts before giving up "
                             "(default 40)")
    parser.add_argument("--retry-delay", type=float, default=0.25,
                        help="seconds between connection attempts "
                             "(default 0.25)")
    args = parser.parse_args(argv)
    if args.connect is None:
        return worker_main()
    try:
        host, port = parse_endpoint(args.connect)
    except ValueError as error:
        parser.error(str(error))
    try:
        return connect_main(host, port, attempts=args.retries,
                            delay=args.retry_delay)
    except ConnectionError as error:
        print(f"shard-worker: {error}", file=sys.stderr)
        return 1


__all__ = ["connect_main", "worker_cli", "worker_main"]
