"""Shard planning: split a global die-index range into shards.

A shard is exactly "a :class:`~repro.campaign.checkpoint.StreamCheckpoint`
whose next index starts past another's": the contiguous global range
``[lo, hi)`` one worker screens into its own checkpoint file.  The
planner only decides the ranges; per-die work is a pure function of the
global index (seeds, labels, scoring are all chunk-boundary
independent), so any plan merges bit-identical to the monolithic run.

Two planning modes:

* ``shards=N`` -- near-equal split into N contiguous ranges, the first
  ``count % N`` shards one die longer (uneven-tail handling: no shard
  differs from another by more than one die, and no empty shards are
  emitted for ``N > count``).
* ``shard_size=C`` -- fixed-size shards of at most C dies (the last
  carries the tail).  More shards than workers means finer-grained
  reassignment when a worker dies: only the lost shard re-executes,
  from its last checkpoint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional


@dataclass(frozen=True)
class Shard:
    """One contiguous global die range ``[lo, hi)``."""

    index: int
    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.lo < 0 or self.hi <= self.lo:
            raise ValueError(f"invalid shard range [{self.lo}, {self.hi})")

    @property
    def num_dies(self) -> int:
        return self.hi - self.lo

    def checkpoint_name(self) -> str:
        """Stable per-shard checkpoint filename."""
        return f"shard_{self.index:04d}.npz"


def plan_shards(count: int, shards: int = 2,
                shard_size: Optional[int] = None) -> List[Shard]:
    """Split ``count`` dies into contiguous shards.

    ``shard_size`` wins when given (fixed-size shards, tail in the
    last); otherwise ``shards`` near-equal ranges.  Empty shards are
    never emitted; a zero-die fleet plans zero shards.  Consecutive
    shards tile ``[0, count)`` exactly -- the invariant
    :meth:`StreamCheckpoint.merge` enforces when reassembling.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    if count == 0:
        return []
    if shard_size is not None:
        if shard_size < 1:
            raise ValueError("shard_size must be >= 1")
        return [Shard(i, lo, min(lo + shard_size, count))
                for i, lo in enumerate(range(0, count, shard_size))]
    if shards < 1:
        raise ValueError("shards must be >= 1")
    shards = min(shards, count)
    base, extra = divmod(count, shards)
    plan: List[Shard] = []
    lo = 0
    for i in range(shards):
        hi = lo + base + (1 if i < extra else 0)
        plan.append(Shard(i, lo, hi))
        lo = hi
    return plan


class ShardAutotuner:
    """Size the *next* shard from observed per-shard seconds.

    The static planner cuts equal slices, which is exactly wrong for a
    heterogeneous fleet of hosts: the slowest worker gates the
    campaign.  The autotuner closes the loop -- the coordinator
    reports every completed shard's ``(dies, seconds)`` per worker
    (:meth:`observe`), and :meth:`next_size` targets
    ``target_seconds`` of work for *that* worker from its smoothed
    die rate.  Slow hosts get smaller slices; fast hosts get bigger
    ones; a worker never measured gets ``initial_size``.

    Sizes are rounded up to a multiple of ``align`` (the fleet chunk
    size: checkpoints land on chunk boundaries, so an aligned shard
    never splits a chunk) and clamped to ``[min_size, max_size]``.
    The *ranges* stay contiguous regardless -- the coordinator carves
    them sequentially from the frontier -- so bit-identity of the
    merge never depends on sizing decisions.
    """

    def __init__(self, target_seconds: float,
                 initial_size: int = 256, align: int = 1,
                 min_size: Optional[int] = None,
                 max_size: Optional[int] = None,
                 smoothing: float = 0.5) -> None:
        if target_seconds <= 0:
            raise ValueError("target_seconds must be positive")
        if initial_size < 1:
            raise ValueError("initial_size must be >= 1")
        if align < 1:
            raise ValueError("align must be >= 1")
        if not 0.0 < smoothing <= 1.0:
            raise ValueError("smoothing must be in (0, 1]")
        self.target_seconds = float(target_seconds)
        self.align = int(align)
        self.min_size = max(int(min_size) if min_size is not None
                            else self.align, 1)
        self.max_size = None if max_size is None else int(max_size)
        self.initial_size = self._quantize(int(initial_size))
        self.smoothing = float(smoothing)
        self._rates: Dict[object, float] = {}

    def _quantize(self, size: int) -> int:
        aligned = -(-size // self.align) * self.align  # ceil multiple
        aligned = max(aligned, self.min_size)
        if self.max_size is not None:
            aligned = min(aligned, self.max_size)
        return max(aligned, 1)

    def observe(self, worker: object, dies: int,
                seconds: float) -> None:
        """Record one completed shard for ``worker``'s rate."""
        if dies <= 0 or seconds <= 0:
            return
        rate = dies / seconds
        previous = self._rates.get(worker)
        if previous is None:
            self._rates[worker] = rate
        else:
            self._rates[worker] = (self.smoothing * rate +
                                   (1.0 - self.smoothing) * previous)

    def rate(self, worker: object) -> Optional[float]:
        """Smoothed dies/second for ``worker`` (None = unmeasured)."""
        return self._rates.get(worker)

    def next_size(self, worker: object) -> int:
        """Dies the next shard for ``worker`` should carry."""
        rate = self._rates.get(worker)
        if rate is None:
            return self.initial_size
        return self._quantize(int(round(rate * self.target_seconds)))


__all__ = ["Shard", "ShardAutotuner", "plan_shards"]
