"""Shard planning: split a global die-index range into shards.

A shard is exactly "a :class:`~repro.campaign.checkpoint.StreamCheckpoint`
whose next index starts past another's": the contiguous global range
``[lo, hi)`` one worker screens into its own checkpoint file.  The
planner only decides the ranges; per-die work is a pure function of the
global index (seeds, labels, scoring are all chunk-boundary
independent), so any plan merges bit-identical to the monolithic run.

Two planning modes:

* ``shards=N`` -- near-equal split into N contiguous ranges, the first
  ``count % N`` shards one die longer (uneven-tail handling: no shard
  differs from another by more than one die, and no empty shards are
  emitted for ``N > count``).
* ``shard_size=C`` -- fixed-size shards of at most C dies (the last
  carries the tail).  More shards than workers means finer-grained
  reassignment when a worker dies: only the lost shard re-executes,
  from its last checkpoint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional


@dataclass(frozen=True)
class Shard:
    """One contiguous global die range ``[lo, hi)``."""

    index: int
    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.lo < 0 or self.hi <= self.lo:
            raise ValueError(f"invalid shard range [{self.lo}, {self.hi})")

    @property
    def num_dies(self) -> int:
        return self.hi - self.lo

    def checkpoint_name(self) -> str:
        """Stable per-shard checkpoint filename."""
        return f"shard_{self.index:04d}.npz"


def plan_shards(count: int, shards: int = 2,
                shard_size: Optional[int] = None) -> List[Shard]:
    """Split ``count`` dies into contiguous shards.

    ``shard_size`` wins when given (fixed-size shards, tail in the
    last); otherwise ``shards`` near-equal ranges.  Empty shards are
    never emitted; a zero-die fleet plans zero shards.  Consecutive
    shards tile ``[0, count)`` exactly -- the invariant
    :meth:`StreamCheckpoint.merge` enforces when reassembling.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    if count == 0:
        return []
    if shard_size is not None:
        if shard_size < 1:
            raise ValueError("shard_size must be >= 1")
        return [Shard(i, lo, min(lo + shard_size, count))
                for i, lo in enumerate(range(0, count, shard_size))]
    if shards < 1:
        raise ValueError("shards must be >= 1")
    shards = min(shards, count)
    base, extra = divmod(count, shards)
    plan: List[Shard] = []
    lo = 0
    for i in range(shards):
        hi = lo + base + (1 if i < extra else 0)
        plan.append(Shard(i, lo, hi))
        lo = hi
    return plan


__all__ = ["Shard", "plan_shards"]
