"""The shard coordinator: split, dispatch, watch, reassign, merge.

One :class:`ShardCoordinator` owns a sharded campaign end to end:

1. **Plan** -- :func:`~repro.shard.planner.plan_shards` tiles the
   fleet's global die range into contiguous shards.  With
   ``autotune_target_s`` set the plan is carved *during* the campaign
   instead: each idle worker gets a slice sized from its observed die
   rate (:class:`~repro.shard.planner.ShardAutotuner`), so slow hosts
   get smaller slices and the ranges still tile ``[0, N)``.
2. **Dispatch** -- workers reach the coordinator through a
   :class:`~repro.shard.transport.Transport`: spawned subprocesses
   over stdio pipes (the default), or remote processes that dialed a
   ``listen`` TCP endpoint (``repro shard-worker --connect``).  Each
   gets an ``init`` (pickled config, the threshold resolved *once* in
   this process, the fleet description, the trace context) and then
   ``assign`` messages; a reader thread per worker funnels its
   protocol lines into one queue.  A worker that dials in mid-
   campaign -- a late rejoin -- is init-ed on accept and handed
   pending shards like any other.
3. **Watch** -- workers heartbeat every ``heartbeat/2`` seconds and
   report progress per screened chunk.  A worker whose channel closes
   (pipe EOF, process exit, socket close/reset), that goes silent
   past the heartbeat deadline, or that speaks an undecodable line
   (protocol desync) is declared lost: its channel is torn down, its
   shard goes back on the queue and -- pipe mode only -- a fresh
   worker respawns into the slot (a remote worker must redial).
   Reassignment **resumes from the shard's last checkpoint, never
   from zero**: remote workers ship checkpoint bytes home inside
   ``progress``, so the resume state survives a partition with no
   shared filesystem.
4. **Merge** -- completed shards are plain checkpoint files (remote
   ``done`` messages carry the archive bytes inline and the
   coordinator writes them);  :meth:`StreamCheckpoint.merge`
   reassembles them in global-index order, bit-identical to the
   monolithic stream (proven by ``tests/shard/`` and the CI
   ``sharded-campaign-smoke`` drill, including its loopback-TCP
   partition phase).

Lifecycle metrics land in the process-default registry
(``shard_dispatched_total`` / ``shard_completed_total`` /
``shard_reassigned_total`` / ``shard_merge_seconds``, plus
``shard_bytes_total`` per transport direction and
``shard_rtt_seconds`` -- the assign-to-done round trip per shard,
which is also what feeds the autotuner); with tracing on, the whole
campaign nests under a ``shard.campaign`` span whose
``shard.dispatch`` children carry ``(shard, worker, attempt)`` -- a
re-dispatch is visible as ``attempt > 1`` -- and worker-side spans
come home pid- and host-stamped through the ``done`` message.

The drill hook: ``REPRO_SHARD_WORKER_FAULTS`` in the coordinator's
environment is forwarded (as ``REPRO_FAULTS``) to the *first* spawned
worker only, and ``REPRO_FAULTS`` itself is stripped from every worker
environment -- so ``shard.worker.kill`` SIGKILLs exactly one worker
and the respawned replacement cannot inherit the same death.  The
``shard.transport.*`` fault points break the channel itself
(:mod:`repro.shard.transport`).
"""

from __future__ import annotations

import base64
import math
import os
import queue
import shutil
import subprocess
import sys
import tempfile
import threading
import time
from collections import deque
from typing import Dict, List, Optional, Tuple

from repro.campaign.checkpoint import StreamCheckpoint
from repro.obs.logs import log_event
from repro.obs.metrics import default_registry
from repro.obs.trace import (
    SpanRecord,
    current_trace_context,
    current_tracer,
    span,
)
from repro.shard.planner import Shard, ShardAutotuner, plan_shards
from repro.shard.protocol import (
    assign_message,
    decode_message,
    encode_message,
    init_message,
    shutdown_message,
)
from repro.shard.transport import (
    PipeTransport,
    SocketListener,
    Transport,
    TransportClosed,
)
from repro.store import atomic_write_bytes

#: Environment variable naming faults to arm in the FIRST spawned
#: worker only (the worker-loss drill).  Respawned workers never see
#: it, so an armed ``shard.worker.kill`` cannot loop forever.
WORKER_FAULTS_ENV = "REPRO_SHARD_WORKER_FAULTS"

#: Silence allowance before the first ``hello`` (interpreter start +
#: imports are much slower than a heartbeat interval).  Doubles as the
#: default grace a listening coordinator waits for its first -- or a
#: replacement -- worker to dial in.
STARTUP_GRACE = 60.0


class ShardWorkerError(RuntimeError):
    """A worker reported a non-recoverable error or a shard ran out
    of reassignment attempts."""


class _Worker:
    """One worker slot (transport + bookkeeping), any carrier."""

    __slots__ = ("index", "transport", "shard", "last_seen",
                 "last_progress", "hello_seen", "generation",
                 "assigned_at", "host")

    def __init__(self, index: int, transport: Transport,
                 generation: int) -> None:
        self.index = index
        self.transport = transport
        self.shard: Optional[Shard] = None
        self.last_seen = time.monotonic()
        self.last_progress = self.last_seen
        self.hello_seen = False
        self.generation = generation
        self.assigned_at = 0.0
        self.host: Optional[str] = None

    @property
    def idle(self) -> bool:
        return self.shard is None

    @property
    def remote(self) -> bool:
        return self.transport.kind == "socket"


class ShardCoordinator:
    """Run one sharded campaign; see the module docstring.

    Parameters
    ----------
    config, threshold, fleet:
        The engine configuration, the *resolved* NDF threshold (float
        or None -- workers never calibrate), and the shardable fleet
        (:mod:`repro.shard.fleets`).
    shards, shard_size, workers:
        Planning and pool sizing: split into ``shards`` near-equal
        ranges, or fixed ``shard_size`` ranges; run at most
        ``workers`` subprocesses (default: one per shard).  With
        ``listen`` set the pool is whoever dials in -- ``workers``
        only sizes the stats and spans.
    workdir:
        Directory for shard checkpoints and worker stderr logs.  A
        temp dir (cleaned up on success) when None.
    heartbeat:
        Seconds of silence after which a worker counts as stalled.
    checkpoint_every:
        Chunks between worker checkpoint saves (1 = every chunk, the
        finest resume granularity).
    max_attempts:
        Dispatch attempts per shard before the campaign fails.
    listen:
        ``(host, port)`` to accept remote workers on (port 0 binds an
        ephemeral port; read it back from :attr:`address`).  The
        coordinator then spawns nothing: ``repro shard-worker
        --connect HOST:PORT`` processes dial in, possibly late,
        possibly from other machines.  Checkpoints travel inline in
        protocol messages -- no shared filesystem is assumed.
    autotune_target_s:
        When set, ignore the static plan and carve each worker's next
        shard to ``~autotune_target_s`` seconds of its *observed*
        screening rate (:class:`ShardAutotuner`).  The first slice
        per worker is ``ceil(count / (2 * shards))`` dies, aligned to
        the fleet chunk size.
    progress_timeout:
        Optional seconds without a ``progress``/``done`` from an
        assigned worker before it counts as lost even while its
        heartbeat still arrives -- the guard against a dropped
        completion line (heartbeats prove liveness, not progress).
    rejoin_grace:
        Listening mode only: seconds the coordinator waits with work
        pending and *zero* connected workers before failing the
        campaign (default :data:`STARTUP_GRACE`).
    """

    def __init__(self, config, threshold: Optional[float], fleet,
                 shards: int = 2, shard_size: Optional[int] = None,
                 workers: Optional[int] = None,
                 workdir: Optional[str] = None,
                 heartbeat: float = 5.0,
                 checkpoint_every: int = 1,
                 max_attempts: int = 3,
                 listen: Optional[Tuple[str, int]] = None,
                 autotune_target_s: Optional[float] = None,
                 progress_timeout: Optional[float] = None,
                 rejoin_grace: float = STARTUP_GRACE) -> None:
        self.config = config
        self.threshold = None if threshold is None else float(threshold)
        self.fleet = fleet
        self._total = len(fleet)
        self.autotuner: Optional[ShardAutotuner] = None
        if autotune_target_s is not None:
            align = max(1, int(getattr(fleet, "chunk_size", 1) or 1))
            initial = max(align, math.ceil(
                self._total / max(1, 2 * shards)))
            self.autotuner = ShardAutotuner(
                float(autotune_target_s), initial_size=initial,
                align=align, max_size=max(self._total, 1))
            self.plan: List[Shard] = []
            self._frontier = 0
        else:
            self.plan = plan_shards(self._total, shards, shard_size)
            self._frontier = self._total
        self._carved: List[Shard] = list(self.plan)
        self.remote = listen is not None
        self._listener = (SocketListener(listen[0], listen[1])
                          if self.remote else None)
        if self.remote:
            self.num_workers = max(1, workers if workers is not None
                                   else shards)
        else:
            self.num_workers = max(1, min(
                workers if workers is not None else shards,
                max(1, len(self.plan) or shards)))
        self.heartbeat = float(heartbeat)
        self.checkpoint_every = int(checkpoint_every)
        self.max_attempts = int(max_attempts)
        self.progress_timeout = (None if progress_timeout is None
                                 else float(progress_timeout))
        self.rejoin_grace = float(rejoin_grace)
        self._workdir = workdir
        self._own_workdir = workdir is None
        self._queue: "queue.Queue[Tuple[Optional[int], dict]]" = \
            queue.Queue()
        self._workers: Dict[int, _Worker] = {}
        self._next_slot = 0
        self._drill_faults = os.environ.get(WORKER_FAULTS_ENV)
        self._trace_context = None
        self._accept_stop = threading.Event()
        self._accept_thread: Optional[threading.Thread] = None
        self.stats: Dict[str, float] = {
            "planned": float(len(self.plan)), "dispatched": 0.0,
            "completed": 0.0, "reassigned": 0.0,
            "workers": float(0 if self.remote else self.num_workers),
            "merge_seconds": 0.0,
        }

    @property
    def address(self) -> Optional[Tuple[str, int]]:
        """The listening ``(host, port)``; None in pipe mode."""
        return None if self._listener is None \
            else self._listener.address

    # ------------------------------------------------------------------
    # Worker channel management
    # ------------------------------------------------------------------
    def _worker_env(self) -> Dict[str, str]:
        env = dict(os.environ)
        # Never let the coordinator's own armed faults leak into
        # workers -- a respawned worker inheriting shard.worker.kill
        # would die forever.
        env.pop("REPRO_FAULTS", None)
        env.pop(WORKER_FAULTS_ENV, None)
        src_root = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))))
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = src_root if not existing \
            else src_root + os.pathsep + existing
        if self._drill_faults:
            env["REPRO_FAULTS"] = self._drill_faults
            self._drill_faults = None  # first spawn only
        return env

    def _spawn(self, slot: int, generation: int) -> _Worker:
        stderr_path = os.path.join(
            self._workdir, f"worker_{slot}_g{generation}.stderr.log")
        with open(stderr_path, "w") as stderr_file:
            proc = subprocess.Popen(
                [sys.executable, "-m", "repro", "shard-worker"],
                stdin=subprocess.PIPE, stdout=subprocess.PIPE,
                stderr=stderr_file,
                env=self._worker_env(), text=True, bufsize=1)
        transport = PipeTransport(proc, stderr_path)
        worker = self._admit(slot, transport, generation)
        log_event("shard.worker.spawned", slot=slot,
                  generation=generation, pid=proc.pid)
        return worker

    def _admit(self, slot: int, transport: Transport,
               generation: int) -> _Worker:
        """Register a channel: send ``init``, start its reader."""
        worker = _Worker(slot, transport, generation)
        self._workers[slot] = worker
        self.stats["workers"] = max(self.stats["workers"],
                                    float(len(self._workers)))
        context = self._trace_context if self._trace_context \
            is not None else current_trace_context()
        try:
            transport.send_line(encode_message(init_message(
                self.config, self.threshold, self.fleet,
                self.checkpoint_every, self.heartbeat,
                None if context is None else context.to_dict(),
                remote=worker.remote)))
        except TransportClosed:
            pass  # the reader loop's EOF will declare it lost
        reader = threading.Thread(
            target=self._reader_loop, args=(slot, generation,
                                            transport),
            daemon=True, name=f"shard-reader-{slot}")
        reader.start()
        return worker

    def _accept_loop(self) -> None:
        while not self._accept_stop.is_set():
            transport = self._listener.accept(timeout=0.2)
            if transport is not None:
                self._queue.put((None, {"type": "_connect",
                                        "transport": transport}))

    def _reader_loop(self, slot: int, generation: int,
                     transport: Transport) -> None:
        for line in transport.lines():
            try:
                message = decode_message(line)
            except ValueError:
                # Protocol desync: there is no way to trust anything
                # after an undecodable line, so this worker is lost
                # (the coordinator survives; the worker does not).
                self._queue.put((slot, {"_gen": generation,
                                        "type": "_garbage",
                                        "line": line[:200]}))
                return
            self._queue.put((slot, {"_gen": generation, **message}))
        self._queue.put((slot, {"_gen": generation, "type": "_eof"}))

    def _send(self, worker: _Worker,
              message: Dict[str, object]) -> bool:
        try:
            worker.transport.send_line(encode_message(message))
            return True
        except TransportClosed:
            return False

    # ------------------------------------------------------------------
    # The campaign
    # ------------------------------------------------------------------
    def run(self) -> Tuple[StreamCheckpoint, Dict[str, float]]:
        """Execute every shard and merge; returns ``(merged, stats)``."""
        if self._workdir is None:
            self._workdir = tempfile.mkdtemp(prefix="repro-shards-")
        try:
            with span("shard.campaign",
                      shards=len(self.plan) or None,
                      workers=self.num_workers,
                      dies=self._total,
                      transport="socket" if self.remote else "pipe"):
                self._trace_context = current_trace_context()
                if self.remote:
                    self._accept_thread = threading.Thread(
                        target=self._accept_loop, daemon=True,
                        name="shard-accept")
                    self._accept_thread.start()
                parts = self._run_shards()
                merged = self._merge(parts)
            if self._own_workdir:
                shutil.rmtree(self._workdir, ignore_errors=True)
            return merged, dict(self.stats)
        finally:
            self._stop_accepting()
            self._shutdown_workers()

    def _stop_accepting(self) -> None:
        self._accept_stop.set()
        if self._listener is not None:
            self._listener.close()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2.0)
            self._accept_thread = None

    def _checkpoint_path(self, shard: Shard) -> str:
        return os.path.join(self._workdir, shard.checkpoint_name())

    def _store_checkpoint_b64(self, shard: Shard, data: str) -> None:
        """Persist checkpoint bytes a remote worker shipped home."""
        atomic_write_bytes(self._checkpoint_path(shard),
                           base64.b64decode(data))

    def _carve(self, worker: _Worker) -> Optional[Shard]:
        """Autotune mode: cut the next shard off the frontier, sized
        for this worker's observed rate."""
        if self._frontier >= self._total:
            return None
        size = self.autotuner.next_size(worker.index)
        shard = Shard(len(self._carved), self._frontier,
                      min(self._frontier + size, self._total))
        self._carved.append(shard)
        self._frontier = shard.hi
        self.stats["planned"] += 1
        log_event("shard.carved", shard=shard.index, lo=shard.lo,
                  hi=shard.hi, worker=worker.index,
                  rate=self.autotuner.rate(worker.index))
        return shard

    def _assign(self, worker: _Worker, shard: Shard,
                attempts: Dict[int, int]) -> bool:
        attempt = attempts.get(shard.index, 0) + 1
        attempts[shard.index] = attempt
        resume_b64 = None
        if worker.remote:
            path = self._checkpoint_path(shard)
            if os.path.exists(path):
                with open(path, "rb") as fh:
                    resume_b64 = base64.b64encode(
                        fh.read()).decode("ascii")
        with span("shard.dispatch", shard=shard.index, lo=shard.lo,
                  hi=shard.hi, worker=worker.index, attempt=attempt,
                  transport=worker.transport.kind):
            ok = self._send(worker, assign_message(
                shard.index, shard.lo, shard.hi,
                self._checkpoint_path(shard),
                resume_b64=resume_b64))
        if ok:
            worker.shard = shard
            now = time.monotonic()
            worker.last_seen = now
            worker.last_progress = now
            worker.assigned_at = now
            self.stats["dispatched"] += 1
            default_registry().counter("shard_dispatched_total").inc()
            log_event("shard.dispatched", shard=shard.index,
                      lo=shard.lo, hi=shard.hi, worker=worker.index,
                      attempt=attempt)
        return ok

    def _lose_worker(self, worker: _Worker, pending: "deque[Shard]",
                     attempts: Dict[int, int], reason: str) -> None:
        """Tear down a lost worker and requeue its shard.

        Pipe mode respawns the slot (the coordinator owns the
        process); listening mode discards it and waits for the
        survivors or a redial -- the coordinator cannot restart a
        process on another machine.
        """
        worker.transport.kill()
        self._workers.pop(worker.index, None)
        shard = worker.shard
        worker.shard = None
        if shard is not None:
            if attempts.get(shard.index, 0) >= self.max_attempts:
                raise ShardWorkerError(
                    f"shard {shard.index} dies [{shard.lo}, "
                    f"{shard.hi}) failed {self.max_attempts} "
                    f"dispatch attempts (last worker "
                    f"{worker.transport.describe()} {reason}); "
                    f"worker stderr tail:\n"
                    f"{worker.transport.stderr_tail()}")
            pending.appendleft(shard)
            self.stats["reassigned"] += 1
            default_registry().counter("shard_reassigned_total").inc()
            log_event("shard.reassigned", shard=shard.index,
                      worker=worker.index, reason=reason)
        else:
            log_event("shard.worker.lost", worker=worker.index,
                      reason=reason)
        if not self.remote:
            self._spawn(worker.index, worker.generation + 1)

    def _work_remaining(self, pending: "deque[Shard]",
                        done: Dict[int, str]) -> bool:
        return (len(done) < len(self._carved)
                or self._frontier < self._total)

    def _run_shards(self) -> List[StreamCheckpoint]:
        if not self._carved and self._frontier >= self._total:
            return []
        pending: "deque[Shard]" = deque(self.plan)
        attempts: Dict[int, int] = {}
        done: Dict[int, str] = {}
        if not self.remote:
            for slot in range(self.num_workers):
                self._spawn(slot, generation=0)
            self._next_slot = self.num_workers
        tick = max(0.05, min(0.5, self.heartbeat / 4.0))
        workerless_since: Optional[float] = (
            time.monotonic() if self.remote else None)
        while self._work_remaining(pending, done):
            for worker in list(self._workers.values()):
                if not worker.idle:
                    continue
                if not pending and self.autotuner is not None:
                    carved = self._carve(worker)
                    if carved is not None:
                        pending.append(carved)
                if not pending:
                    continue
                if self._assign(worker, pending[0], attempts):
                    pending.popleft()
                else:
                    # Channel already closed: treat as lost (shard
                    # stays at the queue front for the next worker).
                    self._lose_worker(worker, pending, attempts,
                                      "channel closed at assign")
            try:
                slot, message = self._queue.get(timeout=tick)
            except queue.Empty:
                message = None
            if message is not None and slot is None:
                if message.get("type") == "_connect" \
                        and not self._accept_stop.is_set():
                    transport = message["transport"]
                    worker = self._admit(self._next_slot, transport,
                                         generation=0)
                    self._next_slot += 1
                    workerless_since = None
                    log_event("shard.worker.connected",
                              worker=worker.index,
                              peer=transport.describe())
            elif message is not None:
                worker = self._workers.get(slot)
                if worker is None or \
                        message.get("_gen") != worker.generation:
                    continue  # line from a replaced worker
                worker.last_seen = time.monotonic()
                kind = message.get("type")
                if kind == "hello":
                    worker.hello_seen = True
                    worker.host = message.get("host")
                elif kind == "progress":
                    worker.last_progress = time.monotonic()
                    shard = worker.shard
                    data = message.get("checkpoint_b64")
                    if data is not None and shard is not None \
                            and int(message.get("shard", -1)) == \
                            shard.index:
                        self._store_checkpoint_b64(shard, str(data))
                elif kind == "done":
                    self._complete(worker, message, done)
                elif kind == "error":
                    raise ShardWorkerError(
                        f"worker {slot} "
                        f"({worker.transport.describe()}) failed "
                        f"shard {message.get('shard')}: "
                        f"{message.get('message')}\nstderr tail:\n"
                        f"{worker.transport.stderr_tail()}")
                elif kind == "_garbage":
                    self._lose_worker(
                        worker, pending, attempts,
                        f"sent an undecodable line "
                        f"{message.get('line')!r}")
                elif kind == "_eof":
                    worker.transport.wait()
                    if worker.shard is not None or pending \
                            or self._frontier < self._total:
                        self._lose_worker(worker, pending, attempts,
                                          "channel closed")
                    else:
                        self._workers.pop(worker.index, None)
                # ping only refreshes last_seen (above)
            # Stall detection: silent past the deadline with work
            # assigned.  Pre-hello workers get the startup grace.
            now = time.monotonic()
            for worker in list(self._workers.values()):
                if worker.shard is None:
                    continue
                deadline = self.heartbeat if worker.hello_seen \
                    else max(self.heartbeat, STARTUP_GRACE)
                if now - worker.last_seen > deadline:
                    self._lose_worker(worker, pending, attempts,
                                      "heartbeat deadline passed")
                elif self.progress_timeout is not None and \
                        now - worker.last_progress > \
                        self.progress_timeout:
                    self._lose_worker(worker, pending, attempts,
                                      "progress deadline passed")
            # Listening mode liveness: fail rather than wait forever
            # when every worker is gone and none redials.
            if self.remote:
                if self._workers:
                    workerless_since = None
                elif workerless_since is None:
                    workerless_since = now
                elif now - workerless_since > self.rejoin_grace:
                    raise ShardWorkerError(
                        f"no connected workers for "
                        f"{self.rejoin_grace:.0f}s with "
                        f"{len(pending)} shard(s) pending; workers "
                        f"dial in with: repro shard-worker "
                        f"--connect {self.address[0]}:"
                        f"{self.address[1]}")
        return [StreamCheckpoint.load(done[shard.index])
                for shard in self._carved]

    def _complete(self, worker: _Worker, message: dict,
                  done: Dict[int, str]) -> None:
        shard = worker.shard
        worker.shard = None
        index = int(message["shard"])
        data = message.get("checkpoint_b64")
        if data is None:
            done[index] = str(message["checkpoint"])
        else:
            # Remote completion: the archive travelled inline; land
            # it where the merge (and any resume) expects it.
            target = next(s for s in self._carved
                          if s.index == index)
            self._store_checkpoint_b64(target, str(data))
            done[index] = self._checkpoint_path(target)
        rtt = time.monotonic() - worker.assigned_at
        self.stats["completed"] += 1
        default_registry().counter("shard_completed_total").inc()
        default_registry().histogram(
            "shard_rtt_seconds",
            transport=worker.transport.kind).observe(rtt)
        if self.autotuner is not None and shard is not None:
            self.autotuner.observe(worker.index, shard.num_dies, rtt)
        log_event("shard.completed", shard=index,
                  worker=worker.index, host=worker.host,
                  num_dies=int(message["num_dies"]),
                  seconds=round(rtt, 3))
        rows = message.get("spans") or []
        tracer = current_tracer()
        if tracer is not None and rows:
            tracer.absorb(SpanRecord.from_dict(r) for r in rows)

    def _merge(self, parts: List[StreamCheckpoint]) -> StreamCheckpoint:
        start = time.perf_counter()
        with span("shard.merge", parts=len(parts)):
            if parts:
                merged = StreamCheckpoint.merge(parts)
            else:
                merged = StreamCheckpoint(
                    repr(self.config.golden_key()), self.threshold)
                merged.complete = True
        elapsed = time.perf_counter() - start
        self.stats["merge_seconds"] = elapsed
        default_registry().histogram(
            "shard_merge_seconds").observe(elapsed)
        return merged

    def _shutdown_workers(self) -> None:
        for worker in self._workers.values():
            transport = worker.transport
            if not transport.alive():
                continue
            if not self._send(worker, shutdown_message()):
                transport.kill()
                continue
            try:
                transport.wait(timeout=5.0)
            except subprocess.TimeoutExpired:
                transport.kill()
            else:
                transport.close()
        self._workers.clear()


__all__ = ["STARTUP_GRACE", "ShardCoordinator", "ShardWorkerError",
           "WORKER_FAULTS_ENV"]
