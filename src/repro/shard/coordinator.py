"""The shard coordinator: split, dispatch, watch, reassign, merge.

One :class:`ShardCoordinator` owns a sharded campaign end to end:

1. **Plan** -- :func:`~repro.shard.planner.plan_shards` tiles the
   fleet's global die range into contiguous shards.
2. **Dispatch** -- subprocess workers (``repro shard-worker``) each
   receive an ``init`` (pickled config, the threshold resolved *once*
   in this process, the fleet description, the trace context) and then
   ``assign`` messages; a reader thread per worker funnels its
   protocol lines into one queue.
3. **Watch** -- workers heartbeat every ``heartbeat/2`` seconds and
   report progress per screened chunk.  A worker whose pipe closes
   (killed), whose process exits, or that goes silent past the
   heartbeat deadline is declared lost: its process is killed, its
   shard goes back on the queue, and a fresh worker respawns into the
   slot.  Reassignment **resumes from the shard's last checkpoint,
   never from zero** -- the shard checkpoint file is the unit of both
   sharding and recovery.
4. **Merge** -- completed shards are plain checkpoint files;
   :meth:`StreamCheckpoint.merge` reassembles them in global-index
   order, bit-identical to the monolithic stream (proven by
   ``tests/shard/`` and the CI ``sharded-campaign-smoke`` drill).

Lifecycle metrics land in the process-default registry
(``shard_dispatched_total`` / ``shard_completed_total`` /
``shard_reassigned_total`` / ``shard_merge_seconds``); with tracing
on, the whole campaign nests under a ``shard.campaign`` span whose
``shard.dispatch`` children carry ``(shard, worker, attempt)`` -- a
re-dispatch is visible as ``attempt > 1`` -- and worker-side spans
come home pid-stamped through the ``done`` message.

The drill hook: ``REPRO_SHARD_WORKER_FAULTS`` in the coordinator's
environment is forwarded (as ``REPRO_FAULTS``) to the *first* spawned
worker only, and ``REPRO_FAULTS`` itself is stripped from every worker
environment -- so ``shard.worker.kill`` SIGKILLs exactly one worker
and the respawned replacement cannot inherit the same death.
"""

from __future__ import annotations

import os
import queue
import shutil
import subprocess
import sys
import tempfile
import threading
import time
from collections import deque
from typing import Dict, List, Optional, Tuple

from repro.campaign.checkpoint import StreamCheckpoint
from repro.obs.logs import log_event
from repro.obs.metrics import default_registry
from repro.obs.trace import (
    SpanRecord,
    current_trace_context,
    current_tracer,
    span,
)
from repro.shard.planner import Shard, plan_shards
from repro.shard.protocol import (
    assign_message,
    decode_message,
    encode_message,
    init_message,
    shutdown_message,
)

#: Environment variable naming faults to arm in the FIRST spawned
#: worker only (the worker-loss drill).  Respawned workers never see
#: it, so an armed ``shard.worker.kill`` cannot loop forever.
WORKER_FAULTS_ENV = "REPRO_SHARD_WORKER_FAULTS"

#: Silence allowance before the first ``hello`` (interpreter start +
#: imports are much slower than a heartbeat interval).
STARTUP_GRACE = 60.0


class ShardWorkerError(RuntimeError):
    """A worker reported a non-recoverable error or a shard ran out
    of reassignment attempts."""


class _Worker:
    """One subprocess worker slot and its bookkeeping."""

    __slots__ = ("index", "proc", "stderr_path", "shard", "last_seen",
                 "hello_seen", "generation")

    def __init__(self, index: int, proc: subprocess.Popen,
                 stderr_path: str, generation: int) -> None:
        self.index = index
        self.proc = proc
        self.stderr_path = stderr_path
        self.shard: Optional[Shard] = None
        self.last_seen = time.monotonic()
        self.hello_seen = False
        self.generation = generation

    @property
    def idle(self) -> bool:
        return self.shard is None

    def stderr_tail(self, lines: int = 20) -> str:
        try:
            with open(self.stderr_path, "r", errors="replace") as fh:
                return "".join(fh.readlines()[-lines:])
        except OSError:
            return "<no stderr captured>"


class ShardCoordinator:
    """Run one sharded campaign; see the module docstring.

    Parameters
    ----------
    config, threshold, fleet:
        The engine configuration, the *resolved* NDF threshold (float
        or None -- workers never calibrate), and the shardable fleet
        (:mod:`repro.shard.fleets`).
    shards, shard_size, workers:
        Planning and pool sizing: split into ``shards`` near-equal
        ranges, or fixed ``shard_size`` ranges; run at most
        ``workers`` subprocesses (default: one per shard).
    workdir:
        Directory for shard checkpoints and worker stderr logs.  A
        temp dir (cleaned up on success) when None.
    heartbeat:
        Seconds of silence after which a worker counts as stalled.
    checkpoint_every:
        Chunks between worker checkpoint saves (1 = every chunk, the
        finest resume granularity).
    max_attempts:
        Dispatch attempts per shard before the campaign fails.
    """

    def __init__(self, config, threshold: Optional[float], fleet,
                 shards: int = 2, shard_size: Optional[int] = None,
                 workers: Optional[int] = None,
                 workdir: Optional[str] = None,
                 heartbeat: float = 5.0,
                 checkpoint_every: int = 1,
                 max_attempts: int = 3) -> None:
        self.config = config
        self.threshold = None if threshold is None else float(threshold)
        self.fleet = fleet
        self.plan = plan_shards(len(fleet), shards, shard_size)
        self.num_workers = max(1, min(
            workers if workers is not None else shards,
            max(1, len(self.plan))))
        self.heartbeat = float(heartbeat)
        self.checkpoint_every = int(checkpoint_every)
        self.max_attempts = int(max_attempts)
        self._workdir = workdir
        self._own_workdir = workdir is None
        self._queue: "queue.Queue[Tuple[int, Optional[dict]]]" = \
            queue.Queue()
        self._workers: Dict[int, _Worker] = {}
        self._next_slot = 0
        self._drill_faults = os.environ.get(WORKER_FAULTS_ENV)
        self.stats: Dict[str, float] = {
            "planned": float(len(self.plan)), "dispatched": 0.0,
            "completed": 0.0, "reassigned": 0.0,
            "workers": float(self.num_workers), "merge_seconds": 0.0,
        }

    # ------------------------------------------------------------------
    # Worker process management
    # ------------------------------------------------------------------
    def _worker_env(self) -> Dict[str, str]:
        env = dict(os.environ)
        # Never let the coordinator's own armed faults leak into
        # workers -- a respawned worker inheriting shard.worker.kill
        # would die forever.
        env.pop("REPRO_FAULTS", None)
        env.pop(WORKER_FAULTS_ENV, None)
        src_root = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))))
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = src_root if not existing \
            else src_root + os.pathsep + existing
        if self._drill_faults:
            env["REPRO_FAULTS"] = self._drill_faults
            self._drill_faults = None  # first spawn only
        return env

    def _spawn(self, slot: int, generation: int) -> _Worker:
        stderr_path = os.path.join(
            self._workdir, f"worker_{slot}_g{generation}.stderr.log")
        with open(stderr_path, "w") as stderr_file:
            proc = subprocess.Popen(
                [sys.executable, "-m", "repro", "shard-worker"],
                stdin=subprocess.PIPE, stdout=subprocess.PIPE,
                stderr=stderr_file,
                env=self._worker_env(), text=True, bufsize=1)
        worker = _Worker(slot, proc, stderr_path, generation)
        self._workers[slot] = worker
        context = current_trace_context()
        self._send(worker, init_message(
            self.config, self.threshold, self.fleet,
            self.checkpoint_every, self.heartbeat,
            None if context is None else context.to_dict()))
        reader = threading.Thread(
            target=self._reader_loop, args=(slot, generation, proc),
            daemon=True, name=f"shard-reader-{slot}")
        reader.start()
        log_event("shard.worker.spawned", slot=slot,
                  generation=generation, pid=proc.pid)
        return worker

    def _reader_loop(self, slot: int, generation: int,
                     proc: subprocess.Popen) -> None:
        for line in proc.stdout:
            try:
                message = decode_message(line)
            except ValueError:
                continue
            self._queue.put((slot, {"_gen": generation, **message}))
        self._queue.put((slot, {"_gen": generation, "type": "_eof"}))

    def _send(self, worker: _Worker, message: Dict[str, object]) -> bool:
        try:
            worker.proc.stdin.write(encode_message(message) + "\n")
            worker.proc.stdin.flush()
            return True
        except (BrokenPipeError, OSError, ValueError):
            return False

    def _kill(self, worker: _Worker) -> None:
        try:
            worker.proc.kill()
        except OSError:
            pass
        worker.proc.wait()

    # ------------------------------------------------------------------
    # The campaign
    # ------------------------------------------------------------------
    def run(self) -> Tuple[StreamCheckpoint, Dict[str, float]]:
        """Execute every shard and merge; returns ``(merged, stats)``."""
        if self._workdir is None:
            self._workdir = tempfile.mkdtemp(prefix="repro-shards-")
        try:
            with span("shard.campaign", shards=len(self.plan),
                      workers=self.num_workers,
                      dies=len(self.fleet)):
                parts = self._run_shards()
                merged = self._merge(parts)
            if self._own_workdir:
                shutil.rmtree(self._workdir, ignore_errors=True)
            return merged, dict(self.stats)
        finally:
            self._shutdown_workers()

    def _checkpoint_path(self, shard: Shard) -> str:
        return os.path.join(self._workdir, shard.checkpoint_name())

    def _assign(self, worker: _Worker, shard: Shard,
                attempts: Dict[int, int]) -> bool:
        attempt = attempts.get(shard.index, 0) + 1
        attempts[shard.index] = attempt
        with span("shard.dispatch", shard=shard.index, lo=shard.lo,
                  hi=shard.hi, worker=worker.index, attempt=attempt):
            ok = self._send(worker, assign_message(
                shard.index, shard.lo, shard.hi,
                self._checkpoint_path(shard)))
        if ok:
            worker.shard = shard
            worker.last_seen = time.monotonic()
            self.stats["dispatched"] += 1
            default_registry().counter("shard_dispatched_total").inc()
            log_event("shard.dispatched", shard=shard.index,
                      lo=shard.lo, hi=shard.hi, worker=worker.index,
                      attempt=attempt)
        return ok

    def _lose_worker(self, worker: _Worker, pending: "deque[Shard]",
                     attempts: Dict[int, int], reason: str) -> None:
        """Kill a lost worker, requeue its shard, respawn the slot."""
        self._kill(worker)
        shard = worker.shard
        worker.shard = None
        if shard is not None:
            if attempts.get(shard.index, 0) >= self.max_attempts:
                raise ShardWorkerError(
                    f"shard {shard.index} dies [{shard.lo}, "
                    f"{shard.hi}) failed {self.max_attempts} "
                    f"dispatch attempts (last worker {reason}); "
                    f"worker stderr tail:\n{worker.stderr_tail()}")
            pending.appendleft(shard)
            self.stats["reassigned"] += 1
            default_registry().counter("shard_reassigned_total").inc()
            log_event("shard.reassigned", shard=shard.index,
                      worker=worker.index, reason=reason)
        self._spawn(worker.index, worker.generation + 1)

    def _run_shards(self) -> List[StreamCheckpoint]:
        if not self.plan:
            return []
        pending: "deque[Shard]" = deque(self.plan)
        attempts: Dict[int, int] = {}
        done: Dict[int, str] = {}
        for slot in range(self.num_workers):
            self._spawn(slot, generation=0)
        tick = max(0.05, min(0.5, self.heartbeat / 4.0))
        tracer = current_tracer()
        while len(done) < len(self.plan):
            for worker in list(self._workers.values()):
                if worker.idle and pending:
                    if not self._assign(worker, pending[0], attempts):
                        # Pipe already closed: treat as lost (shard
                        # stays at the queue front for the respawn).
                        self._lose_worker(worker, pending, attempts,
                                          "pipe closed at assign")
                    else:
                        pending.popleft()
            try:
                slot, message = self._queue.get(timeout=tick)
            except queue.Empty:
                message = None
            if message is not None:
                worker = self._workers.get(slot)
                if worker is None or \
                        message.get("_gen") != worker.generation:
                    continue  # line from a replaced worker
                worker.last_seen = time.monotonic()
                kind = message.get("type")
                if kind == "hello":
                    worker.hello_seen = True
                elif kind == "done":
                    shard = worker.shard
                    worker.shard = None
                    index = int(message["shard"])
                    done[index] = str(message["checkpoint"])
                    self.stats["completed"] += 1
                    default_registry().counter(
                        "shard_completed_total").inc()
                    log_event("shard.completed", shard=index,
                              worker=slot,
                              num_dies=int(message["num_dies"]))
                    rows = message.get("spans") or []
                    if tracer is not None and rows:
                        tracer.absorb(SpanRecord.from_dict(r)
                                      for r in rows)
                elif kind == "error":
                    raise ShardWorkerError(
                        f"worker {slot} failed shard "
                        f"{message.get('shard')}: "
                        f"{message.get('message')}\nstderr tail:\n"
                        f"{worker.stderr_tail()}")
                elif kind == "_eof":
                    if worker.proc.poll() is None:
                        worker.proc.wait()
                    if worker.shard is not None or pending:
                        self._lose_worker(worker, pending, attempts,
                                          "process exited")
                # ping / progress only refresh last_seen (above)
            # Stall detection: silent past the deadline with work
            # assigned.  Pre-hello workers get the startup grace.
            now = time.monotonic()
            for worker in list(self._workers.values()):
                if worker.shard is None:
                    continue
                deadline = self.heartbeat if worker.hello_seen \
                    else max(self.heartbeat, STARTUP_GRACE)
                if now - worker.last_seen > deadline:
                    self._lose_worker(worker, pending, attempts,
                                      "heartbeat deadline passed")
        return [StreamCheckpoint.load(done[shard.index])
                for shard in self.plan]

    def _merge(self, parts: List[StreamCheckpoint]) -> StreamCheckpoint:
        start = time.perf_counter()
        with span("shard.merge", parts=len(parts)):
            if parts:
                merged = StreamCheckpoint.merge(parts)
            else:
                merged = StreamCheckpoint(
                    repr(self.config.golden_key()), self.threshold)
                merged.complete = True
        elapsed = time.perf_counter() - start
        self.stats["merge_seconds"] = elapsed
        default_registry().histogram(
            "shard_merge_seconds").observe(elapsed)
        return merged

    def _shutdown_workers(self) -> None:
        for worker in self._workers.values():
            if worker.proc.poll() is None:
                if not self._send(worker, shutdown_message()):
                    self._kill(worker)
                    continue
                try:
                    worker.proc.wait(timeout=5.0)
                except subprocess.TimeoutExpired:
                    self._kill(worker)
        self._workers.clear()


__all__ = ["STARTUP_GRACE", "ShardCoordinator", "ShardWorkerError",
           "WORKER_FAULTS_ENV"]
