"""Line protocol between the shard coordinator and its workers.

One JSON object per line over the worker's stdin/stdout -- the same
framing a remote transport (ssh, a socket) would carry, which is why
the worker entry point is a CLI command rather than a pool function.
Binary payloads (the pickled :class:`CampaignConfig` and fleet) ride
base64-encoded inside the ``init`` message; everything after that is
plain JSON.

Coordinator -> worker
---------------------
``init``      config_b64, threshold, fleet_b64, checkpoint_every,
              heartbeat, trace (a ``TraceContext`` dict or null)
``assign``    shard (index), lo, hi, checkpoint (path)
``shutdown``  --

Worker -> coordinator
---------------------
``hello``     pid (after init: ready for assignments)
``ping``      -- (heartbeat, every ``heartbeat/2`` seconds)
``progress``  shard, next_index (after each screened chunk)
``done``      shard, num_dies, checkpoint, spans (pid-stamped span
              rows when the campaign is traced)
``error``     shard (or null), message (the worker then exits 1)

The pickles only ever travel coordinator -> worker within one
invocation (same code, same interpreter); results come back as
checkpoint *files*, never pickled arrays -- the merge reads the same
atomic ``.npz`` format crash recovery uses.
"""

from __future__ import annotations

import base64
import json
import pickle
from typing import Dict, Optional


def encode_message(message: Dict[str, object]) -> str:
    """One wire line (no trailing newline)."""
    return json.dumps(message, separators=(",", ":"))


def decode_message(line: str) -> Dict[str, object]:
    """Parse one wire line; raises ``ValueError`` on junk."""
    try:
        message = json.loads(line)
    except json.JSONDecodeError as error:
        raise ValueError(f"undecodable protocol line {line!r}: "
                         f"{error}") from None
    if not isinstance(message, dict) or "type" not in message:
        raise ValueError(f"protocol line without a type: {line!r}")
    return message


def pack_payload(obj: object) -> str:
    """Pickle + base64 an object for the ``init`` message."""
    return base64.b64encode(
        pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    ).decode("ascii")


def unpack_payload(data: str) -> object:
    """Inverse of :func:`pack_payload`."""
    return pickle.loads(base64.b64decode(data.encode("ascii")))


def init_message(config, threshold: Optional[float], fleet,
                 checkpoint_every: int, heartbeat: float,
                 trace: Optional[Dict[str, object]]
                 ) -> Dict[str, object]:
    return {"type": "init", "config_b64": pack_payload(config),
            "threshold": threshold, "fleet_b64": pack_payload(fleet),
            "checkpoint_every": int(checkpoint_every),
            "heartbeat": float(heartbeat), "trace": trace}


def assign_message(shard_index: int, lo: int, hi: int,
                   checkpoint: str) -> Dict[str, object]:
    return {"type": "assign", "shard": int(shard_index),
            "lo": int(lo), "hi": int(hi),
            "checkpoint": str(checkpoint)}


def shutdown_message() -> Dict[str, object]:
    return {"type": "shutdown"}


__all__ = ["assign_message", "decode_message", "encode_message",
           "init_message", "pack_payload", "shutdown_message",
           "unpack_payload"]
