"""Line protocol between the shard coordinator and its workers.

One JSON object per line -- the identical framing over a stdio pipe
(:class:`~repro.shard.transport.PipeTransport`) or a TCP socket
(:class:`~repro.shard.transport.SocketTransport`), which is why the
worker entry point is a CLI command rather than a pool function.
Binary payloads (the pickled :class:`CampaignConfig` and fleet) ride
base64-encoded inside the ``init`` message; everything after that is
plain JSON.

Coordinator -> worker
---------------------
``init``      config_b64, threshold, fleet_b64, checkpoint_every,
              heartbeat, trace (a ``TraceContext`` dict or null),
              remote (true when no shared filesystem can be assumed:
              the worker must return checkpoints inline)
``assign``    shard (index), lo, hi, checkpoint (path); remote
              assignments add resume_b64 (base64 ``.npz`` bytes of
              the shard's last known checkpoint, or absent) so a
              reassigned shard resumes without a shared filesystem
``shutdown``  --

Worker -> coordinator
---------------------
``hello``     pid, host (after init: ready for assignments)
``ping``      -- (heartbeat, every ``heartbeat/2`` seconds)
``progress``  shard, next_index (after each screened chunk); remote
              workers add checkpoint_b64 whenever the shard's
              checkpoint advanced, so the coordinator always holds
              the partial state a reassignment would resume from
``done``      shard, num_dies, checkpoint, spans (pid/host-stamped
              span rows when the campaign is traced); remote workers
              add checkpoint_b64 (the completed shard's ``.npz``)
``error``     shard (or null), message (the worker then exits 1)

The pickles only ever travel coordinator -> worker within one
invocation (same code, same interpreter); results come back as
checkpoint archives -- files on a shared filesystem, base64 ``.npz``
bytes over a socket -- never pickled arrays: the merge reads the same
atomic ``.npz`` format crash recovery uses.
"""

from __future__ import annotations

import base64
import json
import pickle
from typing import Dict, Optional


def encode_message(message: Dict[str, object]) -> str:
    """One wire line (no trailing newline)."""
    return json.dumps(message, separators=(",", ":"))


def decode_message(line: str) -> Dict[str, object]:
    """Parse one wire line; raises ``ValueError`` on junk."""
    try:
        message = json.loads(line)
    except json.JSONDecodeError as error:
        raise ValueError(f"undecodable protocol line {line!r}: "
                         f"{error}") from None
    if not isinstance(message, dict) or "type" not in message:
        raise ValueError(f"protocol line without a type: {line!r}")
    return message


def pack_payload(obj: object) -> str:
    """Pickle + base64 an object for the ``init`` message."""
    return base64.b64encode(
        pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    ).decode("ascii")


def unpack_payload(data: str) -> object:
    """Inverse of :func:`pack_payload`."""
    return pickle.loads(base64.b64decode(data.encode("ascii")))


def init_message(config, threshold: Optional[float], fleet,
                 checkpoint_every: int, heartbeat: float,
                 trace: Optional[Dict[str, object]],
                 remote: bool = False) -> Dict[str, object]:
    return {"type": "init", "config_b64": pack_payload(config),
            "threshold": threshold, "fleet_b64": pack_payload(fleet),
            "checkpoint_every": int(checkpoint_every),
            "heartbeat": float(heartbeat), "trace": trace,
            "remote": bool(remote)}


def assign_message(shard_index: int, lo: int, hi: int,
                   checkpoint: str,
                   resume_b64: Optional[str] = None
                   ) -> Dict[str, object]:
    message: Dict[str, object] = {
        "type": "assign", "shard": int(shard_index),
        "lo": int(lo), "hi": int(hi),
        "checkpoint": str(checkpoint)}
    if resume_b64 is not None:
        message["resume_b64"] = str(resume_b64)
    return message


def shutdown_message() -> Dict[str, object]:
    return {"type": "shutdown"}


__all__ = ["assign_message", "decode_message", "encode_message",
           "init_message", "pack_payload", "shutdown_message",
           "unpack_payload"]
