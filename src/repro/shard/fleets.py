"""Shardable fleet descriptions: rebuild any die range on demand.

A sharded campaign cannot ship a materialized population to its
workers -- the whole point is that no process ever holds the fleet.
Instead the coordinator ships a small picklable *fleet* object that
every worker can ask for an arbitrary contiguous die range:
``fleet.chunks(lo, hi)`` yields :class:`SpecPopulation` chunks covering
global dies ``[lo, hi)`` with exactly the seeds and labels the
monolithic builder would have produced for those indices.  That
global-index purity (PR 7's ``seed_children`` /
``stream_montecarlo_dies(start=)`` contract) is what makes the merged
shard results bit-identical to the single-process run.

* :class:`MonteCarloFleet` -- process-spread MC dies, rebuilt from
  ``(golden_spec, seed)``; the payload is a few hundred bytes no
  matter the fleet size.
* :class:`PopulationFleet` -- an already-materialized
  :class:`SpecPopulation` (sweeps, grids) sliced by row range; fine
  for populations that fit in memory anyway.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Union

from repro.campaign.scenarios import (
    SpecPopulation,
    stream_montecarlo_dies,
)
from repro.filters.biquad import BiquadSpec


@dataclass(frozen=True)
class MonteCarloFleet:
    """A Monte Carlo die fleet, described (not materialized).

    Die ``i`` is a pure function of ``(seed, i)``; any worker
    reconstructs any range without communicating with any other.
    """

    golden_spec: BiquadSpec
    count: int
    sigma_f0: float = 0.03
    sigma_q: float = 0.0
    seed: int = 0
    chunk_size: int = 256

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ValueError("count must be non-negative")
        if self.chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")

    def __len__(self) -> int:
        return self.count

    def chunks(self, lo: int, hi: int) -> Iterator[SpecPopulation]:
        """Population chunks covering global dies ``[lo, hi)``."""
        if not 0 <= lo <= hi <= self.count:
            raise ValueError(f"range [{lo}, {hi}) outside fleet of "
                             f"{self.count}")
        return stream_montecarlo_dies(
            self.golden_spec, hi, chunk_size=self.chunk_size,
            sigma_f0=self.sigma_f0, sigma_q=self.sigma_q,
            seed=self.seed, start=lo)


@dataclass(frozen=True)
class PopulationFleet:
    """A materialized :class:`SpecPopulation` sliced by die range.

    Sweeps and grids are small enough to pickle whole; each worker
    slices out its shard's rows.  Row ``i`` of the population is
    global die ``i`` -- slicing preserves per-die metadata, so shard
    results concatenate bit-identical to running the population
    through the engine in one piece.
    """

    population: SpecPopulation
    chunk_size: int = 256

    def __post_init__(self) -> None:
        if self.chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")

    def __len__(self) -> int:
        return len(self.population)

    def chunks(self, lo: int, hi: int) -> Iterator[SpecPopulation]:
        """Population chunks covering global dies ``[lo, hi)``."""
        n = len(self.population)
        if not 0 <= lo <= hi <= n:
            raise ValueError(f"range [{lo}, {hi}) outside fleet of {n}")
        return self._iter_chunks(lo, hi)

    def _iter_chunks(self, lo: int, hi: int) -> Iterator[SpecPopulation]:
        pop = self.population
        for start in range(lo, hi, self.chunk_size):
            stop = min(start + self.chunk_size, hi)
            yield SpecPopulation(
                pop.specs[start:stop],
                pop.f0_deviations[start:stop],
                pop.q_deviations[start:stop],
                pop.labels[start:stop])


ShardFleet = Union[MonteCarloFleet, PopulationFleet]


def as_fleet(obj, chunk_size: int = 256) -> ShardFleet:
    """Coerce ``obj`` into a shardable fleet.

    Fleet objects pass through; a :class:`SpecPopulation` (or a raw
    spec sequence) wraps into a :class:`PopulationFleet`.
    """
    if isinstance(obj, (MonteCarloFleet, PopulationFleet)):
        return obj
    if isinstance(obj, SpecPopulation):
        return PopulationFleet(obj, chunk_size=chunk_size)
    if hasattr(obj, "chunks") and hasattr(obj, "__len__"):
        return obj  # duck-typed custom fleet
    import numpy as np

    specs = list(obj)
    population = SpecPopulation(
        specs, np.full(len(specs), np.nan), np.full(len(specs), np.nan),
        [f"die{i:05d}" for i in range(len(specs))])
    return PopulationFleet(population, chunk_size=chunk_size)


__all__ = ["MonteCarloFleet", "PopulationFleet", "ShardFleet",
           "as_fleet"]
