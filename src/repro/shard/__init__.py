"""repro.shard -- sharded campaigns: split, run, merge bit-identical.

A sharded campaign splits the global die-index range into contiguous
shards (a shard is exactly "a
:class:`~repro.campaign.checkpoint.StreamCheckpoint` whose next index
starts past another's"), dispatches them to workers over a JSON line
protocol, and merges the partial checkpoints in global-index order --
**bit-identical** to the monolithic run, even when a worker is killed
or partitioned mid-shard (the shard reassigns and resumes from its
last checkpoint, never from zero).

Workers reach the coordinator through a
:class:`~repro.shard.transport.Transport`: subprocesses the
coordinator spawned over stdio pipes (the default), or remote
processes that dialed a TCP ``--listen`` endpoint with ``repro
shard-worker --connect HOST:PORT`` -- multi-node campaigns with no
shared filesystem (checkpoints travel inline in protocol messages).

Layers:

* :mod:`repro.shard.planner` -- range tiling with uneven tails, plus
  :class:`ShardAutotuner` feedback sizing from observed die rates.
* :mod:`repro.shard.fleets` -- picklable fleet descriptions that
  rebuild any die range on demand.
* :mod:`repro.shard.protocol` -- the coordinator <-> worker wire.
* :mod:`repro.shard.transport` -- the carriers under the wire (pipe
  and TCP socket), byte accounting, and the network fault points.
* :mod:`repro.shard.worker` -- the ``repro shard-worker`` loop.
* :mod:`repro.shard.coordinator` -- dispatch, accept loop, heartbeat
  watching, reassignment, merge.

Entry points: :meth:`CampaignEngine.run_sharded`, or
``repro campaign --shards N`` (add ``--listen HOST:PORT`` for
multi-node).  See ``docs/sharding.md``.
"""

from repro.shard.coordinator import (
    STARTUP_GRACE,
    ShardCoordinator,
    ShardWorkerError,
    WORKER_FAULTS_ENV,
)
from repro.shard.fleets import (
    MonteCarloFleet,
    PopulationFleet,
    ShardFleet,
    as_fleet,
)
from repro.shard.planner import Shard, ShardAutotuner, plan_shards
from repro.shard.transport import (
    PipeTransport,
    SocketListener,
    SocketTransport,
    Transport,
    TransportClosed,
    dial,
    parse_endpoint,
)
from repro.shard.worker import connect_main, worker_cli, worker_main

__all__ = [
    "MonteCarloFleet",
    "PipeTransport",
    "PopulationFleet",
    "STARTUP_GRACE",
    "Shard",
    "ShardAutotuner",
    "ShardCoordinator",
    "ShardFleet",
    "ShardWorkerError",
    "SocketListener",
    "SocketTransport",
    "Transport",
    "TransportClosed",
    "WORKER_FAULTS_ENV",
    "as_fleet",
    "connect_main",
    "dial",
    "parse_endpoint",
    "plan_shards",
    "worker_cli",
    "worker_main",
]
