"""repro.shard -- sharded campaigns: split, run, merge bit-identical.

A sharded campaign splits the global die-index range into contiguous
shards (a shard is exactly "a
:class:`~repro.campaign.checkpoint.StreamCheckpoint` whose next index
starts past another's"), dispatches them to subprocess workers over a
JSON line protocol, and merges the partial checkpoints in
global-index order -- **bit-identical** to the monolithic run, even
when a worker is killed mid-shard (the shard reassigns and resumes
from its last checkpoint, never from zero).

Layers:

* :mod:`repro.shard.planner` -- range tiling with uneven tails.
* :mod:`repro.shard.fleets` -- picklable fleet descriptions that
  rebuild any die range on demand.
* :mod:`repro.shard.protocol` -- the coordinator <-> worker wire.
* :mod:`repro.shard.worker` -- the ``repro shard-worker`` loop.
* :mod:`repro.shard.coordinator` -- dispatch, heartbeat watching,
  reassignment, merge.

Entry points: :meth:`CampaignEngine.run_sharded`, or
``repro campaign --shards N``.  See ``docs/sharding.md``.
"""

from repro.shard.coordinator import (
    STARTUP_GRACE,
    ShardCoordinator,
    ShardWorkerError,
    WORKER_FAULTS_ENV,
)
from repro.shard.fleets import (
    MonteCarloFleet,
    PopulationFleet,
    ShardFleet,
    as_fleet,
)
from repro.shard.planner import Shard, plan_shards
from repro.shard.worker import worker_main

__all__ = [
    "MonteCarloFleet",
    "PopulationFleet",
    "STARTUP_GRACE",
    "Shard",
    "ShardCoordinator",
    "ShardFleet",
    "ShardWorkerError",
    "WORKER_FAULTS_ENV",
    "as_fleet",
    "plan_shards",
    "worker_main",
]
