"""Coordinator-side worker channels: one line protocol, two carriers.

The coordinator never talks to a subprocess or a socket directly; it
talks to a :class:`Transport` -- send a protocol line, iterate received
lines, ask whether the far side is alive, close or kill the channel.
Two implementations carry the identical :mod:`repro.shard.protocol`
framing:

* :class:`PipeTransport` -- the original mode: the coordinator spawned
  ``repro shard-worker`` itself and owns its stdin/stdout pipes and a
  stderr log file.  "Lost" means the pipe closed or the process
  exited; recovery is respawning into the same slot.
* :class:`SocketTransport` -- a TCP connection a remote worker dialed
  into the coordinator's :class:`SocketListener` (``repro campaign
  --listen HOST:PORT`` accepting ``repro shard-worker --connect``).
  "Lost" means the socket closed or the heartbeat went silent;
  recovery is reassigning to the surviving or late-rejoining workers
  (the coordinator cannot respawn a process on another machine).

Every line through either carrier feeds the ``shard_bytes_total``
counter (labelled by direction and transport), and three fault points
sit on the receive/send seams so the chaos suite can break the network
on demand (``tests/shard/test_network_faults.py``):

==============================  ======================================
``shard.transport.drop``        silently discard one line (sent lines
                                vanish in flight; received lines
                                never reach the coordinator loop)
``shard.transport.delay``       deliver one line late
                                (``REPRO_FAULT_SLOW_S`` seconds) --
                                latency, not loss: nothing may be
                                reassigned for it
``shard.transport.partition``   sever the channel abruptly (socket
                                closed / worker killed mid-line), as
                                a network partition would
==============================  ======================================
"""

from __future__ import annotations

import socket
import subprocess
import time
from typing import Iterator, Optional, Tuple

from repro.obs.metrics import default_registry
from repro.testing.faultinject import should_fail, slow_seconds


class TransportClosed(ConnectionError):
    """The channel to the worker is gone (send failed or severed)."""


def _count_bytes(direction: str, transport: str, line: str) -> None:
    default_registry().counter(
        "shard_bytes_total", direction=direction,
        transport=transport).inc(len(line) + 1)  # +1: the newline


class Transport:
    """One coordinator<->worker channel (see the module docstring).

    Subclasses implement the raw carrier (:meth:`_write_line`,
    :meth:`_iter_lines`, :meth:`alive`, :meth:`close`, :meth:`kill`);
    the base class owns what must behave identically on every
    carrier: byte accounting and the three network fault points.
    """

    kind = "abstract"

    # -- carrier hooks -------------------------------------------------
    def _write_line(self, line: str) -> None:
        raise NotImplementedError

    def _iter_lines(self) -> Iterator[str]:
        raise NotImplementedError

    def alive(self) -> bool:
        """True while the far side could still speak."""
        raise NotImplementedError

    def close(self) -> None:
        """Graceful close (after ``shutdown`` was sent)."""
        raise NotImplementedError

    def kill(self) -> None:
        """Forceful teardown (lost worker, partition drill)."""
        raise NotImplementedError

    def wait(self, timeout: Optional[float] = None) -> None:
        """Wait for the far side to finish (no-op unless owned)."""

    def describe(self) -> str:
        """Human-readable endpoint for logs and errors."""
        return self.kind

    def stderr_tail(self, lines: int = 20) -> str:
        """Last stderr lines when the carrier captures them."""
        return "<no stderr captured: remote worker>"

    # -- the shared wire discipline ------------------------------------
    def send_line(self, line: str) -> None:
        """Send one protocol line; raises :class:`TransportClosed`.

        Runs the fault gate first: a partition severs the channel and
        raises, a delay stalls the send, a drop returns as if the
        line had been delivered (the far side simply never sees it).
        """
        if should_fail("shard.transport.partition"):
            self.kill()
            raise TransportClosed(
                f"injected partition on {self.describe()}")
        if should_fail("shard.transport.delay"):
            time.sleep(slow_seconds())
        if should_fail("shard.transport.drop"):
            return
        _count_bytes("sent", self.kind, line)
        self._write_line(line)

    def lines(self) -> Iterator[str]:
        """Received protocol lines until EOF (reader-thread food).

        The same fault gate runs per received line: a partition kills
        the channel and ends the iteration (the reader reports EOF,
        exactly what a real mid-campaign cable pull produces), a
        delay stalls delivery, a drop skips the line.
        """
        for line in self._iter_lines():
            if should_fail("shard.transport.partition"):
                self.kill()
                return
            if should_fail("shard.transport.delay"):
                time.sleep(slow_seconds())
            if should_fail("shard.transport.drop"):
                continue
            # Received lines keep their newline; sent lines don't --
            # strip before counting so both directions count wire
            # bytes identically.
            _count_bytes("received", self.kind, line.rstrip("\n"))
            yield line


class PipeTransport(Transport):
    """The spawned-subprocess carrier (stdin/stdout text pipes)."""

    kind = "pipe"

    def __init__(self, proc: subprocess.Popen,
                 stderr_path: str) -> None:
        self.proc = proc
        self.stderr_path = stderr_path

    def _write_line(self, line: str) -> None:
        try:
            self.proc.stdin.write(line + "\n")
            self.proc.stdin.flush()
        except (BrokenPipeError, OSError, ValueError) as error:
            raise TransportClosed(
                f"pipe to pid {self.proc.pid} closed: {error}") \
                from None

    def _iter_lines(self) -> Iterator[str]:
        for line in self.proc.stdout:
            yield line

    def alive(self) -> bool:
        return self.proc.poll() is None

    def close(self) -> None:
        try:
            self.proc.stdin.close()
        except (OSError, ValueError):
            pass

    def kill(self) -> None:
        try:
            self.proc.kill()
        except OSError:
            pass
        self.proc.wait()

    def wait(self, timeout: Optional[float] = None) -> None:
        self.proc.wait(timeout=timeout)

    def describe(self) -> str:
        return f"pipe[pid {self.proc.pid}]"

    def stderr_tail(self, lines: int = 20) -> str:
        try:
            with open(self.stderr_path, "r", errors="replace") as fh:
                return "".join(fh.readlines()[-lines:])
        except OSError:
            return "<no stderr captured>"


class SocketTransport(Transport):
    """The dialed-in TCP carrier (one accepted connection)."""

    kind = "socket"

    def __init__(self, sock: socket.socket,
                 peer: Optional[Tuple[str, int]] = None) -> None:
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass  # not a TCP socket (socketpair in tests)
        self._sock = sock
        self._reader = sock.makefile("r", encoding="utf-8",
                                     newline="\n")
        self._writer = sock.makefile("w", encoding="utf-8",
                                     newline="\n")
        if peer is None:
            try:
                peer = sock.getpeername()
            except OSError:
                peer = None
        if not (isinstance(peer, tuple) and len(peer) >= 2):
            peer = None  # AF_UNIX socketpair in tests: no host:port
        self.peer = peer
        self._closed = False

    def _write_line(self, line: str) -> None:
        if self._closed:
            raise TransportClosed(f"{self.describe()} already closed")
        try:
            self._writer.write(line + "\n")
            self._writer.flush()
        except (BrokenPipeError, ConnectionError, OSError,
                ValueError) as error:
            self.kill()
            raise TransportClosed(
                f"{self.describe()} closed: {error}") from None

    def _iter_lines(self) -> Iterator[str]:
        try:
            for line in self._reader:
                yield line
        except (ConnectionError, OSError, ValueError):
            return  # reset mid-read reads as EOF: same loss path

    def alive(self) -> bool:
        return not self._closed

    def close(self) -> None:
        self.kill()

    def kill(self) -> None:
        if self._closed:
            return
        self._closed = True
        for handle in (self._writer, self._reader):
            try:
                handle.close()
            except (OSError, ValueError):
                pass
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def describe(self) -> str:
        if self.peer is None:
            return "socket"
        return f"socket[{self.peer[0]}:{self.peer[1]}]"


class SocketListener:
    """The coordinator's ``--listen`` endpoint.

    Binds eagerly (so :attr:`address` is known before the campaign
    starts -- tests and benchmarks listen on port 0) and hands each
    accepted connection back as a :class:`SocketTransport`.
    """

    def __init__(self, host: str, port: int, backlog: int = 16) -> None:
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET,
                              socket.SO_REUSEADDR, 1)
        self._sock.bind((host, int(port)))
        self._sock.listen(backlog)
        self._closed = False

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (resolved when port was 0)."""
        return self._sock.getsockname()[:2]

    def accept(self, timeout: float = 0.2
               ) -> Optional[SocketTransport]:
        """One accepted worker connection, or None on timeout/close."""
        if self._closed:
            return None
        self._sock.settimeout(timeout)
        try:
            conn, peer = self._sock.accept()
        except socket.timeout:
            return None
        except OSError:
            return None  # listener closed under us: accept loop ends
        return SocketTransport(conn, peer=(peer[0], peer[1]))

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._sock.close()
        except OSError:
            pass


def dial(host: str, port: int, attempts: int = 40,
         delay: float = 0.25) -> socket.socket:
    """Connect a worker to a listening coordinator, with retries.

    Workers routinely start before (or outlive) the coordinator's
    listener -- a late-rejoining worker uses exactly this path -- so
    refusal retries for ``attempts * delay`` seconds before giving up.
    """
    last: Optional[Exception] = None
    for _ in range(max(1, attempts)):
        try:
            return socket.create_connection((host, int(port)),
                                            timeout=10.0)
        except OSError as error:
            last = error
            time.sleep(delay)
    raise ConnectionError(
        f"could not connect to coordinator at {host}:{port}: {last}")


def parse_endpoint(value: str) -> Tuple[str, int]:
    """``"HOST:PORT"`` -> ``(host, port)`` (ValueError on junk)."""
    host, sep, port = value.rpartition(":")
    if not sep or not host:
        raise ValueError(
            f"endpoint {value!r} is not HOST:PORT")
    try:
        return host, int(port)
    except ValueError:
        raise ValueError(
            f"endpoint {value!r} has a non-numeric port") from None


__all__ = ["PipeTransport", "SocketListener", "SocketTransport",
           "Transport", "TransportClosed", "dial", "parse_endpoint"]
