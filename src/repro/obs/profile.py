"""Per-stage profiles out of a recorded trace.

``repro campaign --profile`` runs the campaign under a
:class:`repro.obs.Tracer`, then renders the aggregate below: one row
per pipeline stage (the ``stage.*`` spans the engine opens), with span
counts and total seconds, cross-checked against the coarse
``CampaignResult.timing`` floats.  The span sums and the timing dict
are measured by the same ``perf_counter`` calls at the same nesting
level, so they agree to within bookkeeping noise -- the acceptance
bound is 10%.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.obs.trace import Tracer

#: Engine stage spans share this prefix (``stage.encode`` etc.).
STAGE_PREFIX = "stage."


def stage_profile(tracer: Tracer,
                  prefix: str = STAGE_PREFIX) -> Dict[str, Dict[str, float]]:
    """Aggregate ``prefix``-named spans: ``{stage: {spans, seconds}}``.

    Only spans whose name starts with ``prefix`` count; the stage key
    is the remainder of the name (``stage.encode`` -> ``encode``).
    """
    profile: Dict[str, Dict[str, float]] = {}
    for record in tracer.records():
        if not record.name.startswith(prefix):
            continue
        stage = record.name[len(prefix):]
        row = profile.setdefault(stage, {"spans": 0.0, "seconds": 0.0})
        row["spans"] += 1
        row["seconds"] += record.duration
    return profile


def render_profile(profile: Mapping[str, Mapping[str, float]],
                   timing: Optional[Mapping[str, float]] = None) -> str:
    """Text table of a :func:`stage_profile` (the ``--profile`` output).

    With ``timing`` (the campaign's own stage dict), an extra column
    shows the engine-reported seconds next to the span sums so drift
    is visible at a glance.
    """
    stages = sorted(profile,
                    key=lambda s: -profile[s].get("seconds", 0.0))
    header = f"{'stage':<14} {'spans':>7} {'seconds':>10}"
    if timing is not None:
        header += f" {'timing':>10}"
    lines = [header, "-" * len(header)]
    total = 0.0
    for stage in stages:
        row = profile[stage]
        total += row.get("seconds", 0.0)
        line = (f"{stage:<14} {int(row.get('spans', 0)):>7} "
                f"{row.get('seconds', 0.0):>10.4f}")
        if timing is not None:
            reported = timing.get(stage)
            line += (f" {reported:>10.4f}" if reported is not None
                     else f" {'-':>10}")
        lines.append(line)
    footer = f"{'total':<14} {'':>7} {total:>10.4f}"
    if timing is not None:
        reported_total = timing.get("total")
        footer += (f" {reported_total:>10.4f}"
                   if reported_total is not None else f" {'-':>10}")
    lines.append(footer)
    return "\n".join(lines)


__all__ = ["STAGE_PREFIX", "render_profile", "stage_profile"]
