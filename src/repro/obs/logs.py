"""Structured JSON event logging with request-id stitching.

One function, :func:`log_event`, emits one JSON object per line to the
configured sink (disabled by default -- the library never writes to a
stream nobody asked for).  ``repro serve`` points the sink at stderr,
turning server access lines into machine-parseable records::

    {"ts": "2026-08-08T12:00:00.123Z", "event": "http.request",
     "request_id": "9f0c...", "method": "POST", "path": "/campaign",
     "status": 200, "duration_ms": 41.3}

The ``request_id`` field is attached automatically from the
:mod:`repro.obs.trace` context binding, so every log line inside a
:func:`repro.obs.request_context` block joins the client's
``X-Repro-Request-Id`` without the call site passing it around.
"""

from __future__ import annotations

import datetime
import json
import threading
from typing import IO, Optional

from repro.obs.trace import get_request_id

_SINK_LOCK = threading.Lock()
_SINK: Optional[IO[str]] = None


def set_log_sink(sink: Optional[IO[str]]) -> Optional[IO[str]]:
    """Direct :func:`log_event` lines at a text stream.

    Returns the previous sink; ``set_log_sink(None)`` disables logging
    (the default -- library users opt in, ``repro serve`` opts in for
    them).
    """
    global _SINK
    with _SINK_LOCK:
        previous = _SINK
        _SINK = sink
        return previous


def log_sink() -> Optional[IO[str]]:
    """The current sink (None while logging is disabled)."""
    return _SINK


def log_event(event: str, **fields: object) -> None:
    """Emit one structured JSON log line (no-op when no sink is set).

    ``event`` names the record (``http.request``, ``client.retry``,
    ``idempotent.replay``); keyword fields become JSON keys.  A
    timestamp and the bound request id (if any) are attached
    automatically; an explicit ``request_id=`` keyword wins.
    """
    sink = _SINK
    if sink is None:
        return
    record: dict = {
        "ts": datetime.datetime.now(datetime.timezone.utc)
        .isoformat(timespec="milliseconds").replace("+00:00", "Z"),
        "event": event,
    }
    rid = get_request_id()
    if rid is not None:
        record["request_id"] = rid
    record.update(fields)
    line = json.dumps(record, sort_keys=False, default=repr)
    with _SINK_LOCK:
        sink = _SINK
        if sink is None:
            return
        try:
            sink.write(line + "\n")
            sink.flush()
        except (ValueError, OSError):
            # A closed or broken sink must never take the server down.
            pass


__all__ = ["log_event", "log_sink", "set_log_sink"]
