"""repro.obs -- dependency-free telemetry for the screening stack.

Three small modules:

* :mod:`repro.obs.trace` -- nested tracing spans with a ring buffer,
  JSONL / Chrome ``trace_event`` exports, and request-id context
  propagation (``X-Repro-Request-Id``).
* :mod:`repro.obs.metrics` -- counters / gauges / histograms / rolling
  windows with a Prometheus-style text exposition, plus the
  process-default registry engine-level metrics record into.
* :mod:`repro.obs.logs` -- structured JSON event lines that pick up
  the bound request id automatically.

See ``docs/observability.md`` for the span taxonomy and how to open a
trace in Perfetto.
"""

from repro.obs.logs import log_event, log_sink, set_log_sink
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    RollingWindow,
    default_registry,
    record_engine_timings,
    set_default_registry,
    timed,
)
from repro.obs.profile import STAGE_PREFIX, render_profile, stage_profile
from repro.obs.trace import (
    NULL_SPAN,
    REQUEST_ID_HEADER,
    Span,
    SpanRecord,
    TraceContext,
    Tracer,
    context_tracer,
    current_trace_context,
    current_tracer,
    get_request_id,
    install_tracer,
    new_request_id,
    request_context,
    reset_request_id,
    set_request_id,
    span,
    stamped_records,
    tracing,
    tracing_enabled,
    uninstall_tracer,
)

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "REQUEST_ID_HEADER",
    "RollingWindow",
    "STAGE_PREFIX",
    "Span",
    "SpanRecord",
    "TraceContext",
    "Tracer",
    "context_tracer",
    "current_trace_context",
    "current_tracer",
    "default_registry",
    "get_request_id",
    "install_tracer",
    "log_event",
    "log_sink",
    "new_request_id",
    "record_engine_timings",
    "render_profile",
    "request_context",
    "reset_request_id",
    "set_default_registry",
    "set_log_sink",
    "set_request_id",
    "span",
    "stage_profile",
    "stamped_records",
    "timed",
    "tracing",
    "tracing_enabled",
    "uninstall_tracer",
]
